//! Execution-model substrate: GPU accounting, the GPU cluster model and a
//! worker pool.
//!
//! The paper's two metrics are GPU time: *ingest cost* is the GPU time spent
//! indexing a stream, and *query latency* is the GPU time of a query divided
//! across the GPUs that serve it (§6.1 measures GPU time only and notes the
//! GPU is the bottleneck resource; §5 parallelizes query work across idle
//! worker processes). This crate provides:
//!
//! * [`GpuMeter`] — thread-safe accounting of GPU time per named phase.
//! * [`GpuClusterSpec`] — the provisioned GPU fleet, which converts a
//!   query's total GPU work into wall-clock latency.
//! * [`BatchCostModel`] — the amortized cost of **batched** inference:
//!   per-launch overhead is paid once per batch instead of once per image,
//!   which is what makes the query server's batched GT-CNN path cheaper
//!   than one-at-a-time verification.
//! * [`WorkerPool`] — a real thread pool (crossbeam channels) used to
//!   parallelize query-time classification across workers, mirroring the
//!   paper's worker processes.
//! * [`IoMeter`] / [`SegmentLoadCost`] — storage-I/O accounting and a
//!   latency model for cold index-segment loads, so the segmented query
//!   path can report what paging the index in actually costs.
//! * [`GpuScheduler`] — one metered budget shared by ingest classification
//!   and query-time GT verification, drained in ticks under a configurable
//!   ingest/query priority policy (the paper's §5 tradeoff, live).
//! * [`Clock`] / [`RealClock`] / [`VirtualClock`] — time as a capability,
//!   so the serving layer's admission, batching and shedding decisions are
//!   deterministic under test.
//! * [`LatencyHistogram`] — log-bucketed, exactly-mergeable latency
//!   histograms for p50/p99/p999 SLO reporting.

pub mod clock;
pub mod gpu;
pub mod hist;
pub mod io;
pub mod net;
pub mod sched;
pub mod workers;

pub use clock::{Clock, RealClock, VirtualClock};
pub use gpu::{BatchCostModel, GpuClusterSpec, GpuMeter, PhaseBreakdown};
pub use hist::LatencyHistogram;
pub use io::{IoMeter, IoStats, SegmentLoadCost};
pub use net::{NetCostModel, NetMeter, NetStats};
pub use sched::{GpuPriorityPolicy, GpuScheduler, GpuSchedulerStats, GpuSide, TickReport};
pub use workers::WorkerPool;
