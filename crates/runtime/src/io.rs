//! Storage-I/O accounting for the segmented index store.
//!
//! The paper's cost metrics are GPU time only (§6.1 excludes index I/O),
//! but a production service paging index segments in and out of a durable
//! store needs to see that work to size caches and provision disks. This
//! module mirrors the GPU side's split between *accounting* and *latency
//! modelling*:
//!
//! * [`IoMeter`] — thread-safe counters of segment loads, cache hits and
//!   bytes read (the analogue of [`GpuMeter`](crate::GpuMeter));
//! * [`SegmentLoadCost`] — converts a load count and byte volume into
//!   modelled wall-clock seconds (the analogue of
//!   [`GpuClusterSpec::latency_secs`](crate::GpuClusterSpec::latency_secs)),
//!   so benchmarks can report cold-query latency that includes storage.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Snapshot of storage-I/O activity charged to an [`IoMeter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStats {
    /// Segments read and decoded from disk (cold loads).
    pub segment_loads: usize,
    /// Segment opens served from the decoded-segment cache.
    pub cache_hits: usize,
    /// Bytes read from disk across all cold loads.
    pub bytes_read: u64,
    /// Block fetches that went to disk (binary segments read per-block; a
    /// whole-file JSON read counts as one block).
    #[serde(default)]
    pub block_loads: usize,
    /// Block fetches served by re-decoding bytes held in the raw cache tier.
    #[serde(default)]
    pub block_raw_hits: usize,
    /// Block fetches served from the decoded cache tier.
    #[serde(default)]
    pub block_hits: usize,
}

impl IoStats {
    /// Total segment opens, cold or cached.
    pub fn segments_opened(&self) -> usize {
        self.segment_loads + self.cache_hits
    }

    /// Fraction of segment opens served from the cache (0.0 when nothing
    /// has been opened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.segments_opened();
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Total block fetches, from disk or either cache tier.
    pub fn blocks_fetched(&self) -> usize {
        self.block_loads + self.block_raw_hits + self.block_hits
    }

    /// Fraction of block fetches served off-disk (0.0 when no block has
    /// been fetched yet).
    pub fn block_hit_rate(&self) -> f64 {
        let total = self.blocks_fetched();
        if total == 0 {
            0.0
        } else {
            (self.block_raw_hits + self.block_hits) as f64 / total as f64
        }
    }
}

/// Thread-safe accumulator of storage-I/O work.
///
/// Cloning a meter yields a handle to the same underlying counters, exactly
/// like [`GpuMeter`](crate::GpuMeter), so the query layer can hand one
/// meter to many serving threads.
///
/// # Examples
///
/// ```
/// use focus_runtime::IoMeter;
///
/// let io = IoMeter::new();
/// io.record_loads(2, 4096);
/// io.record_cache_hits(6);
/// let stats = io.snapshot();
/// assert_eq!(stats.segments_opened(), 8);
/// assert_eq!(stats.bytes_read, 4096);
/// assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IoMeter {
    inner: Arc<Mutex<IoStats>>,
}

// The query server charges the meter from worker threads; keep the
// cross-thread shareability an explicit API guarantee.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<IoMeter>();
};

impl IoMeter {
    /// Creates a meter with no charges.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `loads` cold segment loads totalling `bytes` bytes read.
    pub fn record_loads(&self, loads: usize, bytes: u64) {
        let mut inner = self.inner.lock();
        inner.segment_loads += loads;
        inner.bytes_read += bytes;
    }

    /// Records `hits` segment opens served from the cache.
    pub fn record_cache_hits(&self, hits: usize) {
        self.inner.lock().cache_hits += hits;
    }

    /// Records block-level fetch outcomes: `loads` blocks read from disk,
    /// `raw_hits` served from the raw-bytes tier, `hits` from the decoded
    /// tier.
    pub fn record_blocks(&self, loads: usize, raw_hits: usize, hits: usize) {
        let mut inner = self.inner.lock();
        inner.block_loads += loads;
        inner.block_raw_hits += raw_hits;
        inner.block_hits += hits;
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> IoStats {
        *self.inner.lock()
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        *self.inner.lock() = IoStats::default();
    }
}

/// A simple latency model for cold segment loads: a fixed per-load cost
/// (open + seek + decode setup) plus a per-byte cost (read + JSON decode
/// throughput).
///
/// ```text
/// secs(loads, bytes) = loads × secs_per_load + bytes × secs_per_byte
/// ```
///
/// Cache hits are free — the decoded index is already in memory.
///
/// # Examples
///
/// ```
/// use focus_runtime::{IoMeter, SegmentLoadCost};
///
/// let io = IoMeter::new();
/// io.record_loads(4, 1_000_000);
/// let model = SegmentLoadCost::default();
/// let secs = model.stats_secs(&io.snapshot());
/// assert!(secs > 0.0);
/// // More bytes never cost less.
/// assert!(model.load_secs(4, 2_000_000) > secs);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentLoadCost {
    /// Fixed seconds per cold load (open + metadata + decode setup).
    pub secs_per_load: f64,
    /// Seconds per byte read and decoded.
    pub secs_per_byte: f64,
}

impl Default for SegmentLoadCost {
    fn default() -> Self {
        // ~2 ms fixed per segment open and ~500 MB/s sustained read+decode:
        // conservative numbers for JSON segments on local SSD.
        Self {
            secs_per_load: 2e-3,
            secs_per_byte: 2e-9,
        }
    }
}

impl SegmentLoadCost {
    /// Modelled wall-clock seconds for `loads` cold loads totalling
    /// `bytes` bytes.
    pub fn load_secs(&self, loads: usize, bytes: u64) -> f64 {
        loads as f64 * self.secs_per_load + bytes as f64 * self.secs_per_byte
    }

    /// Modelled wall-clock seconds for everything a meter recorded.
    pub fn stats_secs(&self, stats: &IoStats) -> f64 {
        self.load_secs(stats.segment_loads, stats.bytes_read)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_and_resets() {
        let io = IoMeter::new();
        io.record_loads(1, 100);
        io.record_loads(2, 300);
        io.record_cache_hits(5);
        let stats = io.snapshot();
        assert_eq!(stats.segment_loads, 3);
        assert_eq!(stats.cache_hits, 5);
        assert_eq!(stats.bytes_read, 400);
        assert_eq!(stats.segments_opened(), 8);
        assert!((stats.hit_rate() - 5.0 / 8.0).abs() < 1e-12);
        io.reset();
        assert_eq!(io.snapshot(), IoStats::default());
        assert_eq!(io.snapshot().hit_rate(), 0.0);
    }

    #[test]
    fn block_counters_accumulate_and_rate() {
        let io = IoMeter::new();
        assert_eq!(io.snapshot().block_hit_rate(), 0.0);
        io.record_blocks(2, 0, 0);
        io.record_blocks(0, 1, 5);
        let stats = io.snapshot();
        assert_eq!(stats.block_loads, 2);
        assert_eq!(stats.block_raw_hits, 1);
        assert_eq!(stats.block_hits, 5);
        assert_eq!(stats.blocks_fetched(), 8);
        assert!((stats.block_hit_rate() - 6.0 / 8.0).abs() < 1e-12);
        // Block counters ride along segment-level accounting untouched.
        assert_eq!(stats.segments_opened(), 0);
    }

    #[test]
    fn cloned_meters_share_state_across_threads() {
        let io = IoMeter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = io.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        m.record_loads(1, 10);
                        m.record_cache_hits(2);
                    }
                });
            }
        });
        let stats = io.snapshot();
        assert_eq!(stats.segment_loads, 400);
        assert_eq!(stats.cache_hits, 800);
        assert_eq!(stats.bytes_read, 4000);
    }

    #[test]
    fn load_cost_is_linear_in_loads_and_bytes() {
        let model = SegmentLoadCost {
            secs_per_load: 0.5,
            secs_per_byte: 0.001,
        };
        assert_eq!(model.load_secs(0, 0), 0.0);
        assert!((model.load_secs(2, 1000) - 2.0).abs() < 1e-12);
        let stats = IoStats {
            segment_loads: 2,
            cache_hits: 99,
            bytes_read: 1000,
            ..IoStats::default()
        };
        // Cache hits are free.
        assert!((model.stats_secs(&stats) - 2.0).abs() < 1e-12);
    }
}
