//! Time as a capability: every serving-layer decision reads the clock
//! through a trait, so tests can drive it deterministically.
//!
//! Admission control, deadline-aware batching and load shedding are all
//! time-dependent policies. If they read `std::time::Instant` directly,
//! their behaviour under a *specific* arrival schedule cannot be pinned in
//! a test — the schedule would have to be reproduced in real time. The
//! request plane therefore takes an `Arc<dyn Clock>`:
//!
//! * [`RealClock`] — monotonic wall-clock seconds since the clock was
//!   created (production).
//! * [`VirtualClock`] — a shared counter the test (or an event-driven
//!   bench) advances explicitly; reads never block and time never moves on
//!   its own, so a token-bucket refill or a batch close happens at exactly
//!   the instant the schedule says.
//!
//! Cloned [`VirtualClock`] handles share one underlying instant, mirroring
//! [`GpuMeter`](crate::GpuMeter)'s shared-handle idiom, so the driver and
//! the plane observe the same timeline.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// A monotonic source of "now", in seconds from an arbitrary epoch.
///
/// Implementations must be monotone non-decreasing; consumers may cache
/// and difference readings freely.
pub trait Clock: Send + Sync {
    /// Seconds elapsed since this clock's epoch.
    fn now_secs(&self) -> f64;
}

/// Production clock: seconds since the clock was created, from the OS
/// monotonic clock.
#[derive(Debug, Clone)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// A clock whose epoch is the moment of creation.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

/// Test clock: time moves only when the owner advances it.
///
/// # Examples
///
/// ```
/// use focus_runtime::{Clock, VirtualClock};
///
/// let clock = VirtualClock::new();
/// let handle = clock.clone(); // shares the same instant
/// assert_eq!(clock.now_secs(), 0.0);
/// clock.advance(2.5);
/// assert_eq!(handle.now_secs(), 2.5);
/// handle.set(10.0);
/// assert_eq!(clock.now_secs(), 10.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Arc<Mutex<f64>>,
}

impl VirtualClock {
    /// A virtual clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or not finite (virtual time is monotone
    /// by construction).
    pub fn advance(&self, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite(), "time only moves forward");
        *self.now.lock() += dt;
    }

    /// Jumps time to `at` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current instant or not finite.
    pub fn set(&self, at: f64) {
        let mut now = self.now.lock();
        assert!(
            at >= *now && at.is_finite(),
            "time only moves forward ({} -> {at})",
            *now
        );
        *now = at;
    }
}

impl Clock for VirtualClock {
    fn now_secs(&self) -> f64 {
        *self.now.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotone() {
        let clock = RealClock::new();
        let a = clock.now_secs();
        let b = clock.now_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_only_moves_when_told() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_secs(), 0.0);
        assert_eq!(clock.now_secs(), 0.0);
        clock.advance(1.25);
        clock.advance(0.0);
        assert_eq!(clock.now_secs(), 1.25);
    }

    #[test]
    fn cloned_handles_share_the_instant() {
        let clock = VirtualClock::new();
        let handle = clock.clone();
        handle.advance(3.0);
        assert_eq!(clock.now_secs(), 3.0);
        let dynamic: Arc<dyn Clock> = Arc::new(clock.clone());
        clock.set(7.5);
        assert_eq!(dynamic.now_secs(), 7.5);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn negative_advance_panics() {
        VirtualClock::new().advance(-1.0);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backwards_set_panics() {
        let clock = VirtualClock::new();
        clock.advance(5.0);
        clock.set(4.0);
    }
}
