//! The shared GPU scheduler: one metered budget for ingest and query work.
//!
//! The paper's central knob (§5) trades ingest cost against query latency
//! on *one* GPU fleet: the cheap-CNN classification that builds the index
//! and the GT-CNN verification that answers queries compete for the same
//! cards. When the two sides run as separate batch binaries each can assume
//! it owns the hardware; a long-lived service cannot. [`GpuScheduler`]
//! arbitrates:
//!
//! * every unit of GPU work is **submitted** to the scheduler, which
//!   charges it to a shared [`GpuMeter`] (so per-phase accounting stays
//!   bitwise identical to the standalone drivers) and adds it to the
//!   ingest-side or query-side backlog;
//! * a periodic **tick** drains the backlogs against the fleet's capacity
//!   (`num_gpus × tick_secs` GPU-seconds per tick) according to a
//!   configurable [`GpuPriorityPolicy`] — queries first (the paper's
//!   low-latency stance), ingest first (keep the index fresh under load),
//!   or a weighted split with spillover;
//! * [`GpuSchedulerStats`] reports the split, the backlogs and the modelled
//!   utilization, which is what the service folds into its unified stats
//!   snapshot;
//! * the policy can be **retargeted live** ([`GpuScheduler::retarget`],
//!   [`GpuScheduler::set_query_share`]): a workload governor watching the
//!   backlogs can move a `Weighted` split between ticks without losing a
//!   single queued GPU-second — submissions and backlogs are untouched by a
//!   retarget, so budget conservation holds bitwise across policy changes.
//!
//! Scheduling here is an *accounting and latency model*, like
//! [`GpuClusterSpec::latency_secs`]: work is never dropped or reordered —
//! the simulation executes it inline — but the scheduler decides how that
//! work maps onto modelled wall-clock capacity, so the service can report
//! queue depths and per-side latency under any ingest/query mix.

use std::collections::HashMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use focus_cnn::GpuCost;

use crate::gpu::{GpuClusterSpec, GpuMeter};

/// Which side of the system a unit of GPU work belongs to.
///
/// The scheduler's budget arbitration is two-sided; phases map onto sides
/// via [`GpuScheduler::side_of_phase`] (everything except `"query"` is
/// ingest-side work: classification, GT labelling for specialization,
/// maintenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuSide {
    /// Ingest-time work: cheap-CNN classification, specialization
    /// labelling, maintenance.
    Ingest,
    /// Query-time work: ground-truth CNN verification.
    Query,
}

/// How tick capacity is split between the ingest and query backlogs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum GpuPriorityPolicy {
    /// Queries are served first; ingest gets whatever capacity remains.
    /// This is the paper's low-latency stance: a user is waiting on the
    /// query, the index can lag a little.
    #[default]
    QueryFirst,
    /// Ingest is served first; queries get the remainder. Keeps the index
    /// fresh when ingest load approaches fleet capacity.
    IngestFirst,
    /// Queries are guaranteed `query_share` of capacity and ingest the
    /// rest; capacity a side does not use spills over to the other.
    Weighted {
        /// Fraction of tick capacity reserved for query work, in `[0, 1]`.
        query_share: f64,
    },
}

/// What one [`GpuScheduler::tick`] served and what it left behind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TickReport {
    /// GPU-seconds of capacity this tick offered.
    pub capacity_secs: f64,
    /// Ingest-side GPU-seconds served.
    pub ingest_served_secs: f64,
    /// Query-side GPU-seconds served.
    pub query_served_secs: f64,
    /// Ingest-side backlog remaining after the tick.
    pub ingest_backlog_secs: f64,
    /// Query-side backlog remaining after the tick.
    pub query_backlog_secs: f64,
}

impl TickReport {
    /// Fraction of the tick's capacity that was used (0.0 for an idle
    /// tick, 1.0 for a saturated one).
    pub fn utilization(&self) -> f64 {
        if self.capacity_secs <= 0.0 {
            0.0
        } else {
            (self.ingest_served_secs + self.query_served_secs) / self.capacity_secs
        }
    }
}

/// Serializable snapshot of everything the scheduler has seen: per-phase
/// submissions, per-side served/backlog totals, and tick counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GpuSchedulerStats {
    /// GPU-seconds submitted per phase name (mirrors the shared meter).
    pub submitted_by_phase: HashMap<String, f64>,
    /// Total ingest-side GPU-seconds submitted.
    pub ingest_submitted_secs: f64,
    /// Total query-side GPU-seconds submitted.
    pub query_submitted_secs: f64,
    /// Ingest-side GPU-seconds served by ticks so far.
    pub ingest_served_secs: f64,
    /// Query-side GPU-seconds served by ticks so far.
    pub query_served_secs: f64,
    /// Ingest-side backlog currently waiting for capacity.
    pub ingest_backlog_secs: f64,
    /// Query-side backlog currently waiting for capacity.
    pub query_backlog_secs: f64,
    /// Ticks drained so far.
    pub ticks: u64,
    /// GPU-seconds of capacity offered per tick.
    pub capacity_secs_per_tick: f64,
    /// The priority policy currently in force (retargets swap it live).
    pub policy: GpuPriorityPolicy,
    /// Times the policy was retargeted since the scheduler was created.
    pub retargets: u64,
}

impl GpuSchedulerStats {
    /// Fraction of all offered capacity that was used (0.0 before the
    /// first tick).
    pub fn utilization(&self) -> f64 {
        let offered = self.ticks as f64 * self.capacity_secs_per_tick;
        if offered <= 0.0 {
            0.0
        } else {
            (self.ingest_served_secs + self.query_served_secs) / offered
        }
    }
}

/// Mutable scheduling state behind the scheduler's mutex. The policy lives
/// here (not as a per-handle field) so a retarget through any cloned handle
/// is immediately visible to every other handle's next tick.
#[derive(Debug, Default)]
struct SchedState {
    policy: GpuPriorityPolicy,
    ingest_submitted: f64,
    query_submitted: f64,
    ingest_served: f64,
    query_served: f64,
    ingest_backlog: f64,
    query_backlog: f64,
    ticks: u64,
    retargets: u64,
}

/// The shared GPU scheduler (see the module docs).
///
/// Cloned handles share one underlying state, exactly like [`GpuMeter`],
/// so the ingest and query sides of a service can charge the same budget
/// from different call paths.
///
/// # Examples
///
/// ```
/// use focus_cnn::GpuCost;
/// use focus_runtime::{GpuClusterSpec, GpuPriorityPolicy, GpuScheduler};
///
/// // A 2-GPU fleet draining one-second ticks, queries first.
/// let sched = GpuScheduler::new(
///     GpuClusterSpec::new(2),
///     GpuPriorityPolicy::QueryFirst,
///     1.0,
/// );
/// sched.submit("ingest", GpuCost(3.0));
/// sched.submit("query", GpuCost(1.0));
///
/// // The tick offers 2 GPU-seconds: the query second is served first,
/// // ingest gets the remaining one, and two ingest seconds stay queued.
/// let tick = sched.tick();
/// assert_eq!(tick.query_served_secs, 1.0);
/// assert_eq!(tick.ingest_served_secs, 1.0);
/// assert_eq!(tick.ingest_backlog_secs, 2.0);
/// assert_eq!(tick.utilization(), 1.0);
///
/// // The shared meter keeps the ordinary per-phase accounting.
/// assert_eq!(sched.meter().phase("ingest").seconds(), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct GpuScheduler {
    gpus: GpuClusterSpec,
    tick_secs: f64,
    meter: GpuMeter,
    state: std::sync::Arc<Mutex<SchedState>>,
}

// The service charges the scheduler from ingest ticks and serving threads;
// keep the cross-thread shareability an explicit API guarantee.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GpuScheduler>();
};

impl GpuScheduler {
    /// Creates a scheduler for `gpus` draining `tick_secs`-long ticks under
    /// `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `tick_secs` is not positive, or if a `Weighted` policy's
    /// `query_share` is outside `[0, 1]`.
    pub fn new(gpus: GpuClusterSpec, policy: GpuPriorityPolicy, tick_secs: f64) -> Self {
        assert!(
            tick_secs > 0.0 && tick_secs.is_finite(),
            "tick length must be positive"
        );
        Self::validate_policy(policy);
        Self {
            gpus,
            tick_secs,
            meter: GpuMeter::new(),
            state: std::sync::Arc::new(Mutex::new(SchedState {
                policy,
                ..SchedState::default()
            })),
        }
    }

    fn validate_policy(policy: GpuPriorityPolicy) {
        if let GpuPriorityPolicy::Weighted { query_share } = policy {
            assert!(
                (0.0..=1.0).contains(&query_share),
                "query share must be in [0, 1]"
            );
        }
    }

    /// The fleet this scheduler arbitrates.
    pub fn gpus(&self) -> GpuClusterSpec {
        self.gpus
    }

    /// The priority policy currently in force.
    pub fn policy(&self) -> GpuPriorityPolicy {
        self.state.lock().policy
    }

    /// Swaps the priority policy live. Submissions and backlogs are
    /// untouched — queued work is simply drained under the new policy from
    /// the next tick on, so budget conservation holds bitwise across the
    /// retarget (regression-pinned in this module's tests).
    ///
    /// # Panics
    ///
    /// Panics if a `Weighted` policy's `query_share` is outside `[0, 1]`.
    pub fn retarget(&self, policy: GpuPriorityPolicy) {
        Self::validate_policy(policy);
        let mut state = self.state.lock();
        state.policy = policy;
        state.retargets += 1;
    }

    /// Convenience for workload governors:
    /// [`retarget`](Self::retarget) to `Weighted` with the given share.
    pub fn set_query_share(&self, query_share: f64) {
        self.retarget(GpuPriorityPolicy::Weighted { query_share });
    }

    /// GPU-seconds of capacity one tick offers.
    pub fn capacity_secs_per_tick(&self) -> f64 {
        self.gpus.num_gpus as f64 * self.tick_secs
    }

    /// The shared per-phase meter every submission is charged to.
    pub fn meter(&self) -> &GpuMeter {
        &self.meter
    }

    /// Which side of the budget a phase name belongs to: `"query"` and
    /// `"anytime"` (incremental anytime verification rounds) are
    /// query-side, everything else (classification, specialization
    /// labelling, maintenance) is ingest-side.
    pub fn side_of_phase(phase: &str) -> GpuSide {
        if phase == "query" || phase == "anytime" {
            GpuSide::Query
        } else {
            GpuSide::Ingest
        }
    }

    /// Submits `cost` GPU-seconds of `phase` work: charges the shared
    /// meter and queues the work on its side's backlog.
    pub fn submit(&self, phase: &str, cost: GpuCost) {
        if cost.seconds() == 0.0 {
            return;
        }
        self.meter.charge(phase, cost);
        let mut state = self.state.lock();
        match Self::side_of_phase(phase) {
            GpuSide::Ingest => {
                state.ingest_submitted += cost.seconds();
                state.ingest_backlog += cost.seconds();
            }
            GpuSide::Query => {
                state.query_submitted += cost.seconds();
                state.query_backlog += cost.seconds();
            }
        }
    }

    /// Drains one tick of capacity from the backlogs under the priority
    /// policy and returns what was served. Capacity a side does not need
    /// always spills over to the other, so a tick never idles while work
    /// is queued.
    pub fn tick(&self) -> TickReport {
        let capacity = self.capacity_secs_per_tick();
        let mut state = self.state.lock();
        let (query_served, ingest_served) = match state.policy {
            GpuPriorityPolicy::QueryFirst => {
                let q = state.query_backlog.min(capacity);
                let i = state.ingest_backlog.min(capacity - q);
                (q, i)
            }
            GpuPriorityPolicy::IngestFirst => {
                let i = state.ingest_backlog.min(capacity);
                let q = state.query_backlog.min(capacity - i);
                (q, i)
            }
            GpuPriorityPolicy::Weighted { query_share } => {
                let q_reserved = capacity * query_share;
                let i_reserved = capacity - q_reserved;
                let q = state.query_backlog.min(q_reserved);
                let i = state.ingest_backlog.min(i_reserved);
                // Spill unused reservation to whichever side still queues.
                let spare = capacity - q - i;
                let q_extra = (state.query_backlog - q).min(spare);
                let i_extra = (state.ingest_backlog - i).min(spare - q_extra);
                (q + q_extra, i + i_extra)
            }
        };
        state.query_backlog -= query_served;
        state.ingest_backlog -= ingest_served;
        state.query_served += query_served;
        state.ingest_served += ingest_served;
        state.ticks += 1;
        TickReport {
            capacity_secs: capacity,
            ingest_served_secs: ingest_served,
            query_served_secs: query_served,
            ingest_backlog_secs: state.ingest_backlog,
            query_backlog_secs: state.query_backlog,
        }
    }

    /// Snapshot of everything submitted, served and still queued.
    pub fn stats(&self) -> GpuSchedulerStats {
        let state = self.state.lock();
        GpuSchedulerStats {
            submitted_by_phase: self.meter.breakdown().phases,
            ingest_submitted_secs: state.ingest_submitted,
            query_submitted_secs: state.query_submitted,
            ingest_served_secs: state.ingest_served,
            query_served_secs: state.query_served,
            ingest_backlog_secs: state.ingest_backlog,
            query_backlog_secs: state.query_backlog,
            ticks: state.ticks,
            capacity_secs_per_tick: self.capacity_secs_per_tick(),
            policy: state.policy,
            retargets: state.retargets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(policy: GpuPriorityPolicy) -> GpuScheduler {
        GpuScheduler::new(GpuClusterSpec::new(2), policy, 1.0)
    }

    #[test]
    fn submissions_are_conserved_across_ticks() {
        let s = sched(GpuPriorityPolicy::QueryFirst);
        s.submit("ingest", GpuCost(5.0));
        s.submit("query", GpuCost(3.0));
        s.submit("specialization", GpuCost(1.0));
        let mut served = 0.0;
        for _ in 0..10 {
            let tick = s.tick();
            served += tick.ingest_served_secs + tick.query_served_secs;
        }
        let stats = s.stats();
        // served + backlog == submitted, on both sides.
        assert!((stats.ingest_submitted_secs - 6.0).abs() < 1e-12);
        assert!((stats.query_submitted_secs - 3.0).abs() < 1e-12);
        assert!(
            (stats.ingest_served_secs + stats.ingest_backlog_secs - stats.ingest_submitted_secs)
                .abs()
                < 1e-12
        );
        assert!(
            (stats.query_served_secs + stats.query_backlog_secs - stats.query_submitted_secs).abs()
                < 1e-12
        );
        assert!((served - 9.0).abs() < 1e-12);
        assert_eq!(stats.ticks, 10);
        // The shared meter saw the same per-phase charges.
        assert_eq!(s.meter().phase("ingest").seconds(), 5.0);
        assert_eq!(s.meter().phase("query").seconds(), 3.0);
        assert_eq!(s.meter().phase("specialization").seconds(), 1.0);
    }

    #[test]
    fn query_first_starves_ingest_under_saturation() {
        let s = sched(GpuPriorityPolicy::QueryFirst);
        s.submit("ingest", GpuCost(10.0));
        s.submit("query", GpuCost(10.0));
        let tick = s.tick();
        assert_eq!(tick.query_served_secs, 2.0);
        assert_eq!(tick.ingest_served_secs, 0.0);
        assert_eq!(tick.utilization(), 1.0);
    }

    #[test]
    fn ingest_first_starves_queries_under_saturation() {
        let s = sched(GpuPriorityPolicy::IngestFirst);
        s.submit("ingest", GpuCost(10.0));
        s.submit("query", GpuCost(10.0));
        let tick = s.tick();
        assert_eq!(tick.ingest_served_secs, 2.0);
        assert_eq!(tick.query_served_secs, 0.0);
    }

    #[test]
    fn weighted_split_honours_shares_and_spills() {
        let s = sched(GpuPriorityPolicy::Weighted { query_share: 0.25 });
        s.submit("ingest", GpuCost(10.0));
        s.submit("query", GpuCost(10.0));
        let tick = s.tick();
        // 2 GPU-seconds of capacity: 0.5 reserved for queries, 1.5 ingest.
        assert!((tick.query_served_secs - 0.5).abs() < 1e-12);
        assert!((tick.ingest_served_secs - 1.5).abs() < 1e-12);

        // With no query backlog the reservation spills to ingest.
        let s = sched(GpuPriorityPolicy::Weighted { query_share: 0.25 });
        s.submit("ingest", GpuCost(10.0));
        let tick = s.tick();
        assert_eq!(tick.query_served_secs, 0.0);
        assert_eq!(tick.ingest_served_secs, 2.0);

        // And the other way around.
        let s = sched(GpuPriorityPolicy::Weighted { query_share: 0.25 });
        s.submit("query", GpuCost(10.0));
        let tick = s.tick();
        assert_eq!(tick.query_served_secs, 2.0);
        assert_eq!(tick.ingest_served_secs, 0.0);
    }

    #[test]
    fn idle_ticks_report_zero_utilization() {
        let s = sched(GpuPriorityPolicy::QueryFirst);
        let tick = s.tick();
        assert_eq!(tick.utilization(), 0.0);
        assert_eq!(s.stats().utilization(), 0.0);
        assert_eq!(GpuSchedulerStats::default().utilization(), 0.0);
    }

    #[test]
    fn zero_cost_submissions_are_ignored() {
        let s = sched(GpuPriorityPolicy::QueryFirst);
        s.submit("ingest", GpuCost::ZERO);
        let stats = s.stats();
        assert_eq!(stats.ingest_submitted_secs, 0.0);
        assert!(stats.submitted_by_phase.is_empty());
    }

    #[test]
    fn phases_map_onto_sides() {
        assert_eq!(GpuScheduler::side_of_phase("query"), GpuSide::Query);
        assert_eq!(GpuScheduler::side_of_phase("anytime"), GpuSide::Query);
        assert_eq!(GpuScheduler::side_of_phase("ingest"), GpuSide::Ingest);
        assert_eq!(
            GpuScheduler::side_of_phase("specialization"),
            GpuSide::Ingest
        );
        assert_eq!(GpuScheduler::side_of_phase("maintenance"), GpuSide::Ingest);
    }

    #[test]
    fn cloned_handles_share_state() {
        let s = sched(GpuPriorityPolicy::QueryFirst);
        let clone = s.clone();
        clone.submit("query", GpuCost(1.0));
        assert_eq!(s.stats().query_submitted_secs, 1.0);
        s.tick();
        assert_eq!(clone.stats().ticks, 1);
    }

    #[test]
    #[should_panic(expected = "tick length")]
    fn zero_tick_panics() {
        let _ = GpuScheduler::new(GpuClusterSpec::new(1), GpuPriorityPolicy::QueryFirst, 0.0);
    }

    #[test]
    fn weighted_share_zero_and_one_degenerate_to_strict_priorities() {
        // share 0.0: everything is reserved for ingest, but an idle ingest
        // side still spills its reservation to queued query work.
        let s = sched(GpuPriorityPolicy::Weighted { query_share: 0.0 });
        s.submit("ingest", GpuCost(10.0));
        s.submit("query", GpuCost(10.0));
        let tick = s.tick();
        assert_eq!(tick.ingest_served_secs, 2.0);
        assert_eq!(tick.query_served_secs, 0.0);
        let s = sched(GpuPriorityPolicy::Weighted { query_share: 0.0 });
        s.submit("query", GpuCost(10.0));
        let tick = s.tick();
        assert_eq!(tick.query_served_secs, 2.0, "idle reservation spills");
        assert_eq!(tick.utilization(), 1.0);

        // share 1.0: the mirror image.
        let s = sched(GpuPriorityPolicy::Weighted { query_share: 1.0 });
        s.submit("ingest", GpuCost(10.0));
        s.submit("query", GpuCost(10.0));
        let tick = s.tick();
        assert_eq!(tick.query_served_secs, 2.0);
        assert_eq!(tick.ingest_served_secs, 0.0);
        let s = sched(GpuPriorityPolicy::Weighted { query_share: 1.0 });
        s.submit("ingest", GpuCost(10.0));
        let tick = s.tick();
        assert_eq!(tick.ingest_served_secs, 2.0, "idle reservation spills");
    }

    #[test]
    fn retarget_between_drains_conserves_the_budget_bitwise() {
        let s = sched(GpuPriorityPolicy::Weighted { query_share: 0.25 });
        s.submit("ingest", GpuCost(7.5));
        s.submit("query", GpuCost(4.25));
        s.tick();
        // Retarget mid-backlog: nothing queued may be lost or duplicated.
        // All costs and shares are dyadic, so every drain is exact float
        // arithmetic and the bitwise assertion has no rounding slack.
        s.retarget(GpuPriorityPolicy::Weighted { query_share: 0.75 });
        s.tick();
        s.retarget(GpuPriorityPolicy::IngestFirst);
        s.submit("query", GpuCost(1.5));
        for _ in 0..8 {
            s.tick();
        }
        let stats = s.stats();
        assert_eq!(stats.retargets, 2);
        assert_eq!(stats.policy, GpuPriorityPolicy::IngestFirst);
        // Bitwise conservation: served + backlog is exactly the submitted
        // total on each side, with no float drift introduced by retargets.
        assert_eq!(
            (stats.ingest_served_secs + stats.ingest_backlog_secs).to_bits(),
            stats.ingest_submitted_secs.to_bits()
        );
        assert_eq!(
            (stats.query_served_secs + stats.query_backlog_secs).to_bits(),
            stats.query_submitted_secs.to_bits()
        );
        // The backlog fully drained.
        assert_eq!(stats.ingest_backlog_secs, 0.0);
        assert_eq!(stats.query_backlog_secs, 0.0);
    }

    #[test]
    fn retargets_are_visible_through_cloned_handles() {
        let s = sched(GpuPriorityPolicy::QueryFirst);
        let clone = s.clone();
        clone.set_query_share(0.5);
        assert_eq!(s.policy(), GpuPriorityPolicy::Weighted { query_share: 0.5 });
        assert_eq!(s.stats().retargets, 1);
    }

    #[test]
    #[should_panic(expected = "query share")]
    fn out_of_range_retarget_panics() {
        let s = sched(GpuPriorityPolicy::QueryFirst);
        s.set_query_share(-0.1);
    }

    #[test]
    #[should_panic(expected = "query share")]
    fn out_of_range_share_panics() {
        let _ = GpuScheduler::new(
            GpuClusterSpec::new(1),
            GpuPriorityPolicy::Weighted { query_share: 1.5 },
            1.0,
        );
    }
}
