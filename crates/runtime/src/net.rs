//! Simulated network transport accounting: a latency/bandwidth cost model
//! plus a shared-handle meter, mirroring how [`GpuMeter`](crate::GpuMeter)
//! and [`IoMeter`](crate::IoMeter) stand in for compute and storage.
//!
//! A multi-node deployment's distributed behaviour (scatter width, bytes
//! over the wire, failover time) must be provable in CI on any machine, so
//! no real sockets are involved anywhere: every coordinator↔node exchange
//! is an in-process call whose *cost* is recorded here and charged to a
//! [`Clock`](crate::Clock) through [`NetCostModel`]. The numbers are exact
//! and machine-independent — two runs of the same workload produce the
//! same meter snapshot byte-for-byte.

use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// Cumulative network-transport statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Request messages sent coordinator → node.
    pub messages_sent: usize,
    /// Response messages received node → coordinator.
    pub messages_received: usize,
    /// Serialized request bytes coordinator → node.
    pub bytes_sent: u64,
    /// Serialized response bytes node → coordinator.
    pub bytes_received: u64,
    /// Scatter fan-outs recorded (one per scattered query batch).
    pub scatters: usize,
    /// Total nodes contacted across all recorded scatters.
    pub nodes_contacted: usize,
}

impl NetStats {
    /// Total bytes moved in either direction.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Mean nodes contacted per scatter (0 when none were recorded).
    pub fn scatter_width(&self) -> f64 {
        if self.scatters == 0 {
            0.0
        } else {
            self.nodes_contacted as f64 / self.scatters as f64
        }
    }
}

/// Shared-handle meter for simulated network traffic. Clones share state,
/// so the coordinator and its callers observe one account.
#[derive(Debug, Clone, Default)]
pub struct NetMeter {
    stats: Arc<Mutex<NetStats>>,
}

// Shared across worker threads like the other meters.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<NetMeter>();
};

impl NetMeter {
    /// Creates a fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request/response exchange with a node.
    pub fn record_exchange(&self, bytes_sent: u64, bytes_received: u64) {
        let mut stats = self.stats.lock().expect("net meter poisoned");
        stats.messages_sent += 1;
        stats.messages_received += 1;
        stats.bytes_sent += bytes_sent;
        stats.bytes_received += bytes_received;
    }

    /// Records one scatter fan-out of `nodes` contacted nodes.
    pub fn record_scatter(&self, nodes: usize) {
        let mut stats = self.stats.lock().expect("net meter poisoned");
        stats.scatters += 1;
        stats.nodes_contacted += nodes;
    }

    /// A copy of the accumulated statistics.
    pub fn snapshot(&self) -> NetStats {
        *self.stats.lock().expect("net meter poisoned")
    }

    /// Clears the account.
    pub fn reset(&self) {
        *self.stats.lock().expect("net meter poisoned") = NetStats::default();
    }
}

/// Latency/bandwidth cost model for the simulated transport, the network
/// analogue of [`SegmentLoadCost`](crate::SegmentLoadCost): a fixed
/// round-trip charge per exchange plus a size-proportional transfer charge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetCostModel {
    /// Round-trip latency of one request/response exchange, seconds.
    pub rtt_secs: f64,
    /// Transfer time per byte in either direction, seconds (the reciprocal
    /// of link bandwidth).
    pub secs_per_byte: f64,
}

impl Default for NetCostModel {
    /// Datacenter-flavoured defaults: 0.5 ms RTT, ~1 GiB/s links.
    fn default() -> Self {
        Self {
            rtt_secs: 0.5e-3,
            secs_per_byte: 1.0 / (1024.0 * 1024.0 * 1024.0),
        }
    }
}

impl NetCostModel {
    /// A free network (for tests that only care about counts).
    pub fn free() -> Self {
        Self {
            rtt_secs: 0.0,
            secs_per_byte: 0.0,
        }
    }

    /// Wall-clock cost of one request/response exchange moving `bytes`
    /// total across both directions.
    pub fn exchange_secs(&self, bytes: u64) -> f64 {
        self.rtt_secs + bytes as f64 * self.secs_per_byte
    }

    /// Wall-clock cost of a scatter that contacts nodes in parallel: the
    /// slowest exchange bounds the batch, so the cost is the maximum
    /// per-node cost, not the sum.
    pub fn scatter_secs(&self, per_node_bytes: &[u64]) -> f64 {
        per_node_bytes
            .iter()
            .map(|&bytes| self.exchange_secs(bytes))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_and_resets() {
        let meter = NetMeter::new();
        meter.record_exchange(100, 900);
        meter.record_exchange(50, 450);
        meter.record_scatter(3);
        let stats = meter.snapshot();
        assert_eq!(stats.messages_sent, 2);
        assert_eq!(stats.messages_received, 2);
        assert_eq!(stats.bytes_total(), 1500);
        assert_eq!(stats.scatter_width(), 3.0);
        meter.reset();
        assert_eq!(meter.snapshot(), NetStats::default());
    }

    #[test]
    fn clones_share_one_account() {
        let meter = NetMeter::new();
        let clone = meter.clone();
        clone.record_exchange(10, 20);
        assert_eq!(meter.snapshot().bytes_total(), 30);
    }

    #[test]
    fn cost_model_charges_rtt_plus_transfer() {
        let model = NetCostModel {
            rtt_secs: 1.0,
            secs_per_byte: 0.5,
        };
        assert_eq!(model.exchange_secs(4), 3.0);
        // Parallel scatter is bounded by the slowest node, not the sum.
        assert_eq!(model.scatter_secs(&[4, 2, 0]), 3.0);
        assert_eq!(model.scatter_secs(&[]), 0.0);
        assert_eq!(NetCostModel::free().exchange_secs(1 << 30), 0.0);
    }
}
