//! GPU-time accounting and the cluster latency model.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use focus_cnn::GpuCost;

/// Per-phase breakdown of GPU time charged to a meter.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// GPU seconds charged per phase name.
    pub phases: HashMap<String, f64>,
}

impl PhaseBreakdown {
    /// Total GPU seconds across all phases.
    pub fn total(&self) -> GpuCost {
        GpuCost(self.phases.values().sum())
    }

    /// GPU time of one phase (zero if the phase never ran).
    pub fn phase(&self, name: &str) -> GpuCost {
        GpuCost(self.phases.get(name).copied().unwrap_or(0.0))
    }
}

/// Thread-safe accumulator of GPU time.
///
/// Cloning a meter yields a handle to the same underlying counters, so
/// worker threads can charge the meter concurrently.
#[derive(Debug, Clone, Default)]
pub struct GpuMeter {
    inner: Arc<Mutex<PhaseBreakdown>>,
}

// The sharded ingest layer hands meter clones to worker threads; this
// compile-time assertion keeps the meter's cross-thread shareability an
// explicit API guarantee rather than an accident of its field types.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GpuMeter>();
};

impl GpuMeter {
    /// Creates a meter with no charges.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `cost` GPU seconds to the phase `phase`.
    pub fn charge(&self, phase: &str, cost: GpuCost) {
        let mut inner = self.inner.lock();
        *inner.phases.entry(phase.to_string()).or_insert(0.0) += cost.seconds();
    }

    /// Charges the cost of `count` inferences of `per_inference` cost.
    pub fn charge_inferences(&self, phase: &str, per_inference: GpuCost, count: usize) {
        self.charge(phase, per_inference * count);
    }

    /// Total GPU time charged so far.
    pub fn total(&self) -> GpuCost {
        self.inner.lock().total()
    }

    /// GPU time charged to one phase.
    pub fn phase(&self, name: &str) -> GpuCost {
        self.inner.lock().phase(name)
    }

    /// Snapshot of the per-phase breakdown.
    pub fn breakdown(&self) -> PhaseBreakdown {
        self.inner.lock().clone()
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.inner.lock().phases.clear();
    }
}

/// The provisioned GPU fleet that serves queries.
///
/// The paper notes that organisations provision a few tens to hundreds of
/// GPUs and parallelize a query's GT-CNN work across whatever is idle; the
/// resulting wall-clock latency is the GPU work divided by that parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuClusterSpec {
    /// Number of GPUs available to a query.
    pub num_gpus: usize,
}

impl Default for GpuClusterSpec {
    fn default() -> Self {
        // The paper's end-to-end walkthrough uses a 10-GPU cluster ("with a
        // 10-GPU cluster, the query latency on a 24-hour video goes down
        // from one hour to less than two minutes").
        Self { num_gpus: 10 }
    }
}

impl GpuClusterSpec {
    /// A cluster of `num_gpus` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero.
    pub fn new(num_gpus: usize) -> Self {
        assert!(num_gpus > 0, "a GPU cluster needs at least one GPU");
        Self { num_gpus }
    }

    /// Wall-clock latency (seconds) of executing `work` GPU seconds spread
    /// perfectly across the cluster.
    pub fn latency_secs(&self, work: GpuCost) -> f64 {
        work.seconds() / self.num_gpus as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_phases() {
        let meter = GpuMeter::new();
        meter.charge("ingest", GpuCost(1.0));
        meter.charge("ingest", GpuCost(0.5));
        meter.charge("query", GpuCost(2.0));
        assert!((meter.total().seconds() - 3.5).abs() < 1e-12);
        assert!((meter.phase("ingest").seconds() - 1.5).abs() < 1e-12);
        assert!((meter.phase("query").seconds() - 2.0).abs() < 1e-12);
        assert_eq!(meter.phase("other").seconds(), 0.0);
        let breakdown = meter.breakdown();
        assert_eq!(breakdown.phases.len(), 2);
        meter.reset();
        assert_eq!(meter.total().seconds(), 0.0);
    }

    #[test]
    fn charge_inferences_multiplies() {
        let meter = GpuMeter::new();
        meter.charge_inferences("ingest", GpuCost(0.01), 100);
        assert!((meter.total().seconds() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cloned_meters_share_state() {
        let meter = GpuMeter::new();
        let clone = meter.clone();
        clone.charge("x", GpuCost(1.0));
        assert_eq!(meter.total().seconds(), 1.0);
    }

    #[test]
    fn meters_are_thread_safe() {
        let meter = GpuMeter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let m = meter.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.charge("p", GpuCost(0.001));
                    }
                });
            }
        });
        assert!((meter.total().seconds() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn cluster_latency_divides_work() {
        let cluster = GpuClusterSpec::new(10);
        assert!((cluster.latency_secs(GpuCost(100.0)) - 10.0).abs() < 1e-12);
        let single = GpuClusterSpec::new(1);
        assert_eq!(single.latency_secs(GpuCost(7.0)), 7.0);
        assert_eq!(GpuClusterSpec::default().num_gpus, 10);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        let _ = GpuClusterSpec::new(0);
    }
}
