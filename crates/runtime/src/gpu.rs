//! GPU-time accounting and the cluster latency model.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use focus_cnn::GpuCost;

/// Per-phase breakdown of GPU time charged to a meter.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// GPU seconds charged per phase name.
    pub phases: HashMap<String, f64>,
}

impl PhaseBreakdown {
    /// Total GPU seconds across all phases.
    pub fn total(&self) -> GpuCost {
        GpuCost(self.phases.values().sum())
    }

    /// GPU time of one phase (zero if the phase never ran).
    pub fn phase(&self, name: &str) -> GpuCost {
        GpuCost(self.phases.get(name).copied().unwrap_or(0.0))
    }
}

/// Thread-safe accumulator of GPU time.
///
/// Cloning a meter yields a handle to the same underlying counters, so
/// worker threads can charge the meter concurrently.
#[derive(Debug, Clone, Default)]
pub struct GpuMeter {
    inner: Arc<Mutex<PhaseBreakdown>>,
}

// The sharded ingest layer hands meter clones to worker threads; this
// compile-time assertion keeps the meter's cross-thread shareability an
// explicit API guarantee rather than an accident of its field types.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GpuMeter>();
};

impl GpuMeter {
    /// Creates a meter with no charges.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `cost` GPU seconds to the phase `phase`.
    pub fn charge(&self, phase: &str, cost: GpuCost) {
        let mut inner = self.inner.lock();
        *inner.phases.entry(phase.to_string()).or_insert(0.0) += cost.seconds();
    }

    /// Charges the cost of `count` inferences of `per_inference` cost.
    pub fn charge_inferences(&self, phase: &str, per_inference: GpuCost, count: usize) {
        self.charge(phase, per_inference * count);
    }

    /// Total GPU time charged so far.
    pub fn total(&self) -> GpuCost {
        self.inner.lock().total()
    }

    /// GPU time charged to one phase.
    pub fn phase(&self, name: &str) -> GpuCost {
        self.inner.lock().phase(name)
    }

    /// Snapshot of the per-phase breakdown.
    pub fn breakdown(&self) -> PhaseBreakdown {
        self.inner.lock().clone()
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.inner.lock().phases.clear();
    }
}

/// Amortized cost model for **batched** GPU inference.
///
/// Submitting one image at a time pays the full per-launch overhead (kernel
/// launch, weight/activation transfer, pipeline fill) on every inference.
/// Submitting a batch pays that overhead once per launch and the pure
/// compute cost per image, which is how real GPUs reach their published
/// throughput numbers. The model splits a single inference's cost into an
/// `overhead_fraction` that is fixed per launch and a `1 - overhead_fraction`
/// compute part that scales with the number of images:
///
/// ```text
/// cost(n) = per_inference × ((1 − f)·n + f·⌈n / max_batch⌉)
/// ```
///
/// so a lone inference costs exactly `per_inference` (the serial path and
/// the batched path agree at n = 1), and a full batch of `max_batch` images
/// approaches a `1 − f` discount per image.
///
/// # Examples
///
/// ```
/// use focus_runtime::BatchCostModel;
/// use focus_cnn::GpuCost;
///
/// let model = BatchCostModel::default();
/// let per = GpuCost(1.0);
/// // A single inference is not discounted.
/// assert_eq!(model.batch_cost(per, 1), per);
/// // A full batch is strictly cheaper than the same work done serially.
/// let batched = model.batch_cost(per, 64);
/// assert!(batched < per * 64usize);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchCostModel {
    /// Fraction of a single inference's GPU time that is fixed per-launch
    /// overhead, amortized across the images of a batch.
    pub overhead_fraction: f64,
    /// Maximum number of images per GPU launch; larger requests are split
    /// into `⌈n / max_batch⌉` launches.
    pub max_batch: usize,
}

impl Default for BatchCostModel {
    fn default() -> Self {
        // A quarter of a K80 ResNet152 inference is launch/transfer overhead
        // at batch size 1, and 32 images fill the card — conservative
        // numbers in line with published ResNet batching curves.
        Self {
            overhead_fraction: 0.25,
            max_batch: 32,
        }
    }
}

impl BatchCostModel {
    /// Builds a model from an overhead fraction in `[0, 1)` and a positive
    /// maximum batch size.
    ///
    /// # Panics
    ///
    /// Panics if `overhead_fraction` is outside `[0, 1)` or `max_batch` is
    /// zero.
    pub fn new(overhead_fraction: f64, max_batch: usize) -> Self {
        assert!(
            (0.0..1.0).contains(&overhead_fraction),
            "overhead fraction must be in [0, 1)"
        );
        assert!(max_batch > 0, "max batch size must be positive");
        Self {
            overhead_fraction,
            max_batch,
        }
    }

    /// Number of GPU launches needed for `n` images.
    pub fn launches(&self, n: usize) -> usize {
        n.div_ceil(self.max_batch)
    }

    /// Amortized GPU cost of classifying `n` images whose un-batched cost is
    /// `per_inference` each. Zero images cost nothing; one image costs
    /// exactly `per_inference`; larger batches amortize the per-launch
    /// overhead.
    pub fn batch_cost(&self, per_inference: GpuCost, n: usize) -> GpuCost {
        if n == 0 {
            return GpuCost::ZERO;
        }
        let compute = (1.0 - self.overhead_fraction) * n as f64;
        let overhead = self.overhead_fraction * self.launches(n) as f64;
        per_inference * (compute + overhead)
    }

    /// How many times cheaper a batch of `n` is than `n` serial inferences
    /// (1.0 for n ≤ 1, approaching `1 / (1 − overhead_fraction)` for large
    /// full batches).
    pub fn amortization_factor(&self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        let serial = n as f64;
        let batched = (1.0 - self.overhead_fraction) * n as f64
            + self.overhead_fraction * self.launches(n) as f64;
        serial / batched
    }
}

/// The provisioned GPU fleet that serves queries.
///
/// The paper notes that organisations provision a few tens to hundreds of
/// GPUs and parallelize a query's GT-CNN work across whatever is idle; the
/// resulting wall-clock latency is the GPU work divided by that parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuClusterSpec {
    /// Number of GPUs available to a query.
    pub num_gpus: usize,
}

impl Default for GpuClusterSpec {
    fn default() -> Self {
        // The paper's end-to-end walkthrough uses a 10-GPU cluster ("with a
        // 10-GPU cluster, the query latency on a 24-hour video goes down
        // from one hour to less than two minutes").
        Self { num_gpus: 10 }
    }
}

impl GpuClusterSpec {
    /// A cluster of `num_gpus` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero.
    pub fn new(num_gpus: usize) -> Self {
        assert!(num_gpus > 0, "a GPU cluster needs at least one GPU");
        Self { num_gpus }
    }

    /// Wall-clock latency (seconds) of executing `work` GPU seconds spread
    /// perfectly across the cluster.
    pub fn latency_secs(&self, work: GpuCost) -> f64 {
        work.seconds() / self.num_gpus as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_phases() {
        let meter = GpuMeter::new();
        meter.charge("ingest", GpuCost(1.0));
        meter.charge("ingest", GpuCost(0.5));
        meter.charge("query", GpuCost(2.0));
        assert!((meter.total().seconds() - 3.5).abs() < 1e-12);
        assert!((meter.phase("ingest").seconds() - 1.5).abs() < 1e-12);
        assert!((meter.phase("query").seconds() - 2.0).abs() < 1e-12);
        assert_eq!(meter.phase("other").seconds(), 0.0);
        let breakdown = meter.breakdown();
        assert_eq!(breakdown.phases.len(), 2);
        meter.reset();
        assert_eq!(meter.total().seconds(), 0.0);
    }

    #[test]
    fn charge_inferences_multiplies() {
        let meter = GpuMeter::new();
        meter.charge_inferences("ingest", GpuCost(0.01), 100);
        assert!((meter.total().seconds() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cloned_meters_share_state() {
        let meter = GpuMeter::new();
        let clone = meter.clone();
        clone.charge("x", GpuCost(1.0));
        assert_eq!(meter.total().seconds(), 1.0);
    }

    #[test]
    fn meters_are_thread_safe() {
        let meter = GpuMeter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let m = meter.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.charge("p", GpuCost(0.001));
                    }
                });
            }
        });
        assert!((meter.total().seconds() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn cluster_latency_divides_work() {
        let cluster = GpuClusterSpec::new(10);
        assert!((cluster.latency_secs(GpuCost(100.0)) - 10.0).abs() < 1e-12);
        let single = GpuClusterSpec::new(1);
        assert_eq!(single.latency_secs(GpuCost(7.0)), 7.0);
        assert_eq!(GpuClusterSpec::default().num_gpus, 10);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        let _ = GpuClusterSpec::new(0);
    }

    #[test]
    fn batch_cost_amortizes_overhead() {
        let model = BatchCostModel::default();
        let per = GpuCost(1.0);
        assert_eq!(model.batch_cost(per, 0), GpuCost::ZERO);
        assert_eq!(model.batch_cost(per, 1), per);
        // A full launch of 32 pays the overhead once.
        let full = model.batch_cost(per, 32);
        assert!((full.seconds() - (0.75 * 32.0 + 0.25)).abs() < 1e-12);
        assert!(full < per * 32usize);
        // Cost is monotone in n and never beats the pure-compute floor.
        let mut prev = GpuCost::ZERO;
        for n in 1..200 {
            let cost = model.batch_cost(per, n);
            assert!(cost > prev);
            assert!(cost.seconds() >= 0.75 * n as f64);
            prev = cost;
        }
    }

    #[test]
    fn launches_split_oversized_batches() {
        let model = BatchCostModel::new(0.2, 10);
        assert_eq!(model.launches(1), 1);
        assert_eq!(model.launches(10), 1);
        assert_eq!(model.launches(11), 2);
        assert_eq!(model.launches(30), 3);
    }

    #[test]
    fn amortization_factor_grows_toward_limit() {
        let model = BatchCostModel::default();
        assert_eq!(model.amortization_factor(0), 1.0);
        assert_eq!(model.amortization_factor(1), 1.0);
        let half = model.amortization_factor(16);
        let full = model.amortization_factor(32);
        assert!(half > 1.0);
        assert!(half < full);
        assert!(full < 1.0 / (1.0 - model.overhead_fraction));
        // Whole multiples of a full launch amortize exactly as well as one.
        assert!((model.amortization_factor(320) - full).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "overhead fraction")]
    fn out_of_range_overhead_panics() {
        let _ = BatchCostModel::new(1.0, 8);
    }

    #[test]
    #[should_panic(expected = "max batch size")]
    fn zero_max_batch_panics() {
        let _ = BatchCostModel::new(0.2, 0);
    }
}
