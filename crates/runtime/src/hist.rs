//! Log-bucketed latency histograms: constant-space tail-percentile
//! estimates that merge exactly.
//!
//! Serving-layer SLOs are stated as percentiles (p50/p99/p999), and the
//! tail-at-scale literature's first lesson is that means hide the tail. A
//! sorted sample gives exact percentiles but costs O(requests) memory and
//! cannot be combined across shards; [`LatencyHistogram`] instead counts
//! into geometrically spaced buckets:
//!
//! * bucket `i` covers `[MIN·G^i, MIN·G^(i+1))` with `G = 2^(1/4)` — four
//!   buckets per octave, so any percentile estimate is within one bucket
//!   (≤ ~19% relative error) of the exact-sort answer;
//! * values below [`LatencyHistogram::MIN_SECS`] (including the zero
//!   latencies of an instantaneous virtual-clock serve) land in a dedicated
//!   underflow bucket whose representative is `0.0`;
//! * two histograms [`merge`](LatencyHistogram::merge) by elementwise
//!   `u64` addition — exact, associative and commutative, which is what a
//!   future scatter-gather query plane needs to fold per-node histograms
//!   into one service-level tail.
//!
//! Bucket geometry is a crate-level constant rather than a per-histogram
//! parameter: any two histograms are always mergeable.

use serde::{Deserialize, Serialize};

/// Buckets per power of two (`G = 2^(1/4)`).
const BUCKETS_PER_OCTAVE: f64 = 4.0;

/// A mergeable log-bucketed histogram of non-negative latencies, in
/// seconds.
///
/// # Examples
///
/// ```
/// use focus_runtime::LatencyHistogram;
///
/// let mut hist = LatencyHistogram::new();
/// for i in 1..=100 {
///     hist.record(i as f64 * 1e-3); // 1ms..100ms
/// }
/// let p50 = hist.quantile(0.50);
/// let p99 = hist.quantile(0.99);
/// assert!((0.04..=0.06).contains(&p50), "{p50}");
/// assert!((0.08..=0.12).contains(&p99), "{p99}");
///
/// // Merging is exact: two halves fold into the same tail.
/// let mut a = LatencyHistogram::new();
/// let mut b = LatencyHistogram::new();
/// for i in 1..=50 {
///     a.record(i as f64 * 1e-3);
///     b.record((50 + i) as f64 * 1e-3);
/// }
/// a.merge(&b);
/// assert_eq!(a, hist);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Samples below [`Self::MIN_SECS`] (instantaneous serves).
    underflow: u64,
    /// Bucket counts; bucket `i` covers `[MIN·G^i, MIN·G^(i+1))`. The
    /// vector only ever grows to the highest bucket actually hit, and its
    /// last element is always non-zero, so equal sample sets compare equal.
    counts: Vec<u64>,
}

impl LatencyHistogram {
    /// Lower bound of bucket 0: one microsecond. Everything below counts
    /// as "instantaneous" (underflow, representative `0.0`).
    pub const MIN_SECS: f64 = 1e-6;

    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket covering `secs`, or `None` for the underflow
    /// bucket.
    fn bucket_index(secs: f64) -> Option<usize> {
        if secs < Self::MIN_SECS {
            return None;
        }
        let raw = (BUCKETS_PER_OCTAVE * (secs / Self::MIN_SECS).log2()).floor();
        let mut idx = raw.max(0.0) as usize;
        // Float-proof the boundary: the log can land one bucket off for
        // values within an ulp of a bound.
        while Self::bucket_lower_bound(idx + 1) <= secs {
            idx += 1;
        }
        while idx > 0 && Self::bucket_lower_bound(idx) > secs {
            idx -= 1;
        }
        Some(idx)
    }

    /// Inclusive lower bound of bucket `i`.
    fn bucket_lower_bound(i: usize) -> f64 {
        Self::MIN_SECS * (i as f64 / BUCKETS_PER_OCTAVE).exp2()
    }

    /// The value a bucket reports for every sample it holds: the geometric
    /// midpoint of its bounds (`None` = underflow, reported as `0.0`).
    fn bucket_representative(i: Option<usize>) -> f64 {
        match i {
            None => 0.0,
            Some(i) => (Self::bucket_lower_bound(i) * Self::bucket_lower_bound(i + 1)).sqrt(),
        }
    }

    /// Largest ratio between a bucket's representative and any sample in
    /// it: `G^(1/2) = 2^(1/8)`. Percentile estimates are exact-sort
    /// percentiles up to this factor (plus the one-bucket tie rule).
    pub fn relative_error_bound() -> f64 {
        (1.0 / (2.0 * BUCKETS_PER_OCTAVE)).exp2()
    }

    /// Records one latency sample.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn record(&mut self, secs: f64) {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "latencies are non-negative and finite (got {secs})"
        );
        match Self::bucket_index(secs) {
            None => self.underflow += 1,
            Some(idx) => {
                if self.counts.len() <= idx {
                    self.counts.resize(idx + 1, 0);
                }
                self.counts[idx] += 1;
            }
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.underflow + self.counts.iter().sum::<u64>()
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Folds `other` into `self` by exact elementwise addition.
    /// Associative and commutative: any merge tree over the same shards
    /// yields the same histogram.
    pub fn merge(&mut self, other: &Self) {
        self.underflow += other.underflow;
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the representative of the
    /// bucket holding the `ceil(q·count)`-th smallest sample (`0.0` on an
    /// empty histogram). `q = 0` reports the first non-empty bucket,
    /// `q = 1` the last.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= rank {
            return Self::bucket_representative(None);
        }
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_representative(Some(i));
            }
        }
        // Unreachable while counts stay canonical; report the top bucket.
        Self::bucket_representative(Some(self.counts.len().saturating_sub(1)))
    }

    /// Median latency.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact percentile by sorting: the value at rank `ceil(q·n)`.
    fn exact_quantile(samples: &mut [f64], q: f64) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * samples.len() as f64).ceil() as usize).max(1);
        samples[rank - 1]
    }

    /// Asserts the histogram estimate lands within one bucket of the
    /// exact-sort percentile.
    fn assert_within_one_bucket(estimate: f64, exact: f64, context: &str) {
        let est_bucket = LatencyHistogram::bucket_index(estimate);
        let exact_bucket = LatencyHistogram::bucket_index(exact);
        let (a, b) = match (est_bucket, exact_bucket) {
            (None, None) => return,
            (None, Some(b)) | (Some(b), None) => (0usize, b),
            (Some(a), Some(b)) => (a, b),
        };
        assert!(
            a.abs_diff(b) <= 1,
            "{context}: estimate {estimate} (bucket {est_bucket:?}) vs exact {exact} \
             (bucket {exact_bucket:?})"
        );
    }

    fn check_distribution(samples: Vec<f64>, context: &str) {
        let mut hist = LatencyHistogram::new();
        for &s in &samples {
            hist.record(s);
        }
        assert_eq!(hist.count(), samples.len() as u64);
        let mut sorted = samples;
        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&mut sorted, q);
            let estimate = hist.quantile(q);
            assert_within_one_bucket(estimate, exact, &format!("{context} q={q}"));
        }
    }

    #[test]
    fn bimodal_distribution_within_one_bucket() {
        // 95% fast (≈1ms), 5% slow (≈2s): the shape that makes means lie.
        let mut samples = Vec::new();
        for i in 0..950 {
            samples.push(1e-3 * (1.0 + (i % 7) as f64 * 0.01));
        }
        for i in 0..50 {
            samples.push(2.0 * (1.0 + (i % 5) as f64 * 0.02));
        }
        check_distribution(samples, "bimodal");
    }

    #[test]
    fn single_sample_distribution() {
        check_distribution(vec![0.125], "single");
        let mut hist = LatencyHistogram::new();
        hist.record(0.125);
        for q in [0.0, 0.5, 1.0] {
            assert_within_one_bucket(hist.quantile(q), 0.125, "single-direct");
        }
    }

    #[test]
    fn all_equal_distribution() {
        check_distribution(vec![0.031_25; 1000], "all-equal");
    }

    #[test]
    fn uniform_and_heavy_tail_distributions() {
        check_distribution((1..=1000).map(|i| i as f64 * 1e-4).collect(), "uniform");
        // Powers of two: every sample in its own octave region.
        check_distribution(
            (0..30).map(|i| 1e-5 * (i as f64).exp2()).collect(),
            "geometric",
        );
    }

    #[test]
    fn zero_and_underflow_samples_report_zero() {
        let mut hist = LatencyHistogram::new();
        hist.record(0.0);
        hist.record(1e-9);
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.quantile(0.5), 0.0);
        assert_eq!(hist.quantile(1.0), 0.0);
        hist.record(1.0);
        assert_eq!(hist.quantile(0.5), 0.0, "rank 2 of 3 is still underflow");
        assert!(hist.quantile(1.0) > 0.5);
    }

    #[test]
    fn empty_histogram_is_zero_everywhere() {
        let hist = LatencyHistogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.quantile(0.5), 0.0);
        assert_eq!(hist.p50(), 0.0);
        assert_eq!(hist.p99(), 0.0);
        assert_eq!(hist.p999(), 0.0);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        // Three shards with disjoint regimes (scatter-gather shape).
        let shard = |lo: f64, n: usize| {
            let mut h = LatencyHistogram::new();
            for i in 0..n {
                h.record(lo * (1.0 + i as f64 * 0.37));
            }
            h
        };
        let a = shard(1e-4, 100);
        let b = shard(3e-2, 57);
        let c = shard(1.5, 9);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        let mut c_ba = c.clone();
        c_ba.merge(&b);
        c_ba.merge(&a);

        assert_eq!(ab_c, a_bc, "associativity");
        assert_eq!(ab_c, c_ba, "commutativity");
        assert_eq!(ab_c.count(), 166);

        // Merged percentiles match recording everything into one histogram.
        let mut direct = LatencyHistogram::new();
        for h in [&a, &b, &c] {
            direct.merge(h);
        }
        assert_eq!(direct, ab_c);
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let mut a = LatencyHistogram::new();
        a.record(0.5);
        a.record(0.002);
        let mut empty = LatencyHistogram::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        let before = a.clone();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        for i in 0..200 {
            let lo = LatencyHistogram::bucket_lower_bound(i);
            assert_eq!(
                LatencyHistogram::bucket_index(lo),
                Some(i),
                "lower bound of {i}"
            );
            let rep = LatencyHistogram::bucket_representative(Some(i));
            assert_eq!(
                LatencyHistogram::bucket_index(rep),
                Some(i),
                "representative of {i}"
            );
        }
        assert!(LatencyHistogram::relative_error_bound() < 1.2);
    }

    #[test]
    fn serde_round_trip() {
        let mut hist = LatencyHistogram::new();
        for i in 0..100 {
            hist.record(1e-3 * (1.0 + i as f64));
        }
        hist.record(0.0);
        let json = serde_json::to_string(&hist).unwrap();
        let back: LatencyHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, hist);
        assert_eq!(back.p99(), hist.p99());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sample_panics() {
        LatencyHistogram::new().record(-1.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        let _ = LatencyHistogram::new().quantile(1.5);
    }
}
