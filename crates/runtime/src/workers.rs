//! A reusable worker pool for independent jobs.
//!
//! The paper's implementation (§5) runs one ingest worker process per stream
//! and parallelizes a query's GT-CNN work across idle worker processes. The
//! [`WorkerPool`] here reproduces that structure with threads and serves both
//! sides of the system: the query path maps the GT-CNN over cluster
//! centroids with [`map`](WorkerPool::map), and the sharded ingest layer
//! runs one heterogeneous job per stream shard with
//! [`run_jobs`](WorkerPool::run_jobs).
//!
//! Jobs are distributed over crossbeam channels; results are gathered and
//! returned **in submission order** regardless of which worker finished
//! first, so callers stay deterministic under any scheduling. The pool never
//! spawns more threads than there are jobs.

use crossbeam::channel;

/// A job with its submission index, travelling to a worker thread.
type IndexedJob<'scope, R> = (usize, Box<dyn FnOnce() -> R + Send + 'scope>);

/// A fixed-size pool of worker threads executing independent jobs.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// Creates a pool that will use at most `workers` threads per batch.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "worker pool needs at least one worker");
        Self { workers }
    }

    /// Maximum number of worker threads used per batch.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of threads a batch of `jobs` jobs will actually spawn: never
    /// more than there are jobs. This is the capacity rule `run_jobs`
    /// spawns with, exposed so the cap is directly testable.
    pub fn effective_workers(&self, jobs: usize) -> usize {
        self.workers.min(jobs)
    }

    /// Executes a batch of independent jobs across the pool and returns
    /// their results in submission order.
    ///
    /// At most `min(workers, jobs.len())` threads are spawned; a worker that
    /// finishes its job pulls the next unstarted one, so slow jobs never
    /// starve the rest of the batch. Results are reassembled by submission
    /// index, making the output deterministic no matter how jobs were
    /// scheduled.
    pub fn run_jobs<'scope, R>(&self, jobs: Vec<Box<dyn FnOnce() -> R + Send + 'scope>>) -> Vec<R>
    where
        R: Send + 'scope,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        let n = jobs.len();
        let (task_tx, task_rx) = channel::unbounded::<IndexedJob<'scope, R>>();
        let (result_tx, result_rx) = channel::unbounded::<(usize, R)>();
        for pair in jobs.into_iter().enumerate() {
            task_tx.send(pair).expect("task channel open");
        }
        drop(task_tx);
        let workers = self.effective_workers(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let task_rx = task_rx.clone();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok((idx, job)) = task_rx.recv() {
                        let result = job();
                        if result_tx.send((idx, result)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(result_tx);
            drop(task_rx);
        });
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        while let Ok((idx, result)) = result_rx.recv() {
            slots[idx] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job produced a result"))
            .collect()
    }

    /// Executes `job` for every item of `items` across the pool and returns
    /// the results in the original item order.
    ///
    /// The job function must be `Sync` because multiple worker threads call
    /// it concurrently. This is a homogeneous-batch convenience wrapper over
    /// [`run_jobs`](Self::run_jobs).
    pub fn map<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let job = &job;
        self.run_jobs(
            items
                .into_iter()
                .map(|item| Box::new(move || job(&item)) as Box<dyn FnOnce() -> R + Send + '_>)
                .collect(),
        )
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    #[test]
    fn map_preserves_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let results = pool.map(items.clone(), |x| x * 2);
        let expected: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn map_runs_every_job_exactly_once() {
        let pool = WorkerPool::new(8);
        let counter = AtomicUsize::new(0);
        let results = pool.map((0..500).collect::<Vec<_>>(), |_| {
            counter.fetch_add(1, Ordering::SeqCst)
        });
        assert_eq!(results.len(), 500);
        assert_eq!(counter.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn empty_input_is_fine() {
        let pool = WorkerPool::new(2);
        let results: Vec<u64> = pool.map(Vec::<u64>::new(), |x| *x);
        assert!(results.is_empty());
        let no_jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = Vec::new();
        assert!(pool.run_jobs(no_jobs).is_empty());
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let results = pool.map(vec![1, 2, 3], |x| x + 1);
        assert_eq!(results, vec![2, 3, 4]);
    }

    #[test]
    fn default_pool_has_workers() {
        assert!(WorkerPool::default().workers() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn never_spawns_more_threads_than_jobs() {
        // The spawn count is exactly `effective_workers(jobs)`; asserting on
        // that rule guards the cap directly (job-executing thread IDs can't:
        // only threads that receive a job would be observable).
        let pool = WorkerPool::new(64);
        assert_eq!(pool.effective_workers(2), 2);
        assert_eq!(pool.effective_workers(0), 0);
        assert_eq!(pool.effective_workers(64), 64);
        assert_eq!(pool.effective_workers(1000), 64);
        assert_eq!(WorkerPool::new(3).effective_workers(8), 3);

        // And the capped batch still completes correctly.
        let thread_ids = Mutex::new(HashSet::new());
        let results = pool.map(vec![5u64, 6], |x| {
            thread_ids
                .lock()
                .unwrap()
                .insert(std::thread::current().id());
            std::thread::sleep(Duration::from_millis(10));
            x * x
        });
        assert_eq!(results, vec![25, 36]);
        assert!(thread_ids.lock().unwrap().len() <= 2);
    }

    #[test]
    fn run_jobs_supports_heterogeneous_closures() {
        let pool = WorkerPool::new(3);
        let base = 40usize;
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(move || base + 2),
            Box::new(|| "seven".len()),
            Box::new(|| (0..4usize).sum()),
        ];
        assert_eq!(pool.run_jobs(jobs), vec![42, 5, 6]);
    }

    #[test]
    fn results_come_back_in_submission_order_under_adversarial_durations() {
        // The earliest-submitted jobs sleep the longest, so completion order
        // is the reverse of submission order; the pool must still return
        // results by submission index.
        let pool = WorkerPool::new(4);
        let durations: Vec<u64> = vec![40, 30, 20, 10, 0, 0, 0, 0];
        let results = pool.map(durations.clone(), |ms| {
            std::thread::sleep(Duration::from_millis(*ms));
            *ms
        });
        assert_eq!(results, durations);

        // Same property for heterogeneous jobs.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                Box::new(move || {
                    std::thread::sleep(Duration::from_millis(25 - 4 * i as u64));
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        assert_eq!(pool.run_jobs(jobs), vec![0, 1, 2, 3, 4, 5]);
    }
}
