//! A small worker pool used to parallelize query-time classification.
//!
//! The paper's implementation (§5) runs one ingest worker process per stream
//! and parallelizes a query's GT-CNN work across idle worker processes. The
//! [`WorkerPool`] here reproduces that structure with threads: jobs are
//! distributed over crossbeam channels, results are gathered and returned in
//! the original submission order so callers stay deterministic regardless of
//! scheduling.

use crossbeam::channel;

/// A fixed-size pool of worker threads executing independent jobs.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// Creates a pool that will use `workers` threads per batch.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "worker pool needs at least one worker");
        Self { workers }
    }

    /// Number of worker threads used per batch.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes `job` for every item of `items` across the pool and returns
    /// the results in the original item order.
    ///
    /// The job function must be `Sync` because multiple worker threads call
    /// it concurrently.
    pub fn map<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let n = items.len();
        let (task_tx, task_rx) = channel::unbounded::<(usize, T)>();
        let (result_tx, result_rx) = channel::unbounded::<(usize, R)>();
        for pair in items.into_iter().enumerate() {
            task_tx.send(pair).expect("task channel open");
        }
        drop(task_tx);
        let workers = self.workers.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let task_rx = task_rx.clone();
                let result_tx = result_tx.clone();
                let job = &job;
                scope.spawn(move || {
                    while let Ok((idx, item)) = task_rx.recv() {
                        let result = job(&item);
                        if result_tx.send((idx, result)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(result_tx);
            drop(task_rx);
        });
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        while let Ok((idx, result)) = result_rx.recv() {
            slots[idx] = Some(result);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job produced a result"))
            .collect()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..1000).collect();
        let results = pool.map(items.clone(), |x| x * 2);
        let expected: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(results, expected);
    }

    #[test]
    fn map_runs_every_job_exactly_once() {
        let pool = WorkerPool::new(8);
        let counter = AtomicUsize::new(0);
        let results = pool.map((0..500).collect::<Vec<_>>(), |_| {
            counter.fetch_add(1, Ordering::SeqCst)
        });
        assert_eq!(results.len(), 500);
        assert_eq!(counter.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn empty_input_is_fine() {
        let pool = WorkerPool::new(2);
        let results: Vec<u64> = pool.map(Vec::<u64>::new(), |x| *x);
        assert!(results.is_empty());
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let results = pool.map(vec![1, 2, 3], |x| x + 1);
        assert_eq!(results, vec![2, 3, 4]);
    }

    #[test]
    fn default_pool_has_workers() {
        assert!(WorkerPool::default().workers() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = WorkerPool::new(0);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let pool = WorkerPool::new(64);
        let results = pool.map(vec![5, 6], |x| x * x);
        assert_eq!(results, vec![25, 36]);
    }
}
