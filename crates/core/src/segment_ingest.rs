//! Segmented ingest: sealing the pipeline's output into a durable,
//! time-partitioned [`SegmentStore`].
//!
//! The batch and sharded drivers build one in-memory index per run — fine
//! for an experiment, useless for weeks of footage: a restart replays
//! ingest from scratch and every query scans the whole postings map.
//! [`SegmentedIngest`] instead seals the [`FramePipeline`]'s records into an
//! immutable segment whenever a configurable frame or time budget is hit,
//! writing each segment durably (atomic file + crash-safe manifest) as
//! ingest progresses. Time-restricted queries then open only the segments
//! whose bounds intersect (see [`crate::query::segmented`]).
//!
//! Determinism: per-stream pipelines run concurrently on the worker pool
//! (one shard per stream, exactly like [`ShardedIngest`]), but segments are
//! sealed to the store on the caller's thread in workload order, so the
//! resulting store — manifest, ids, file bytes, checksums — is
//! byte-identical for any shard count. `tests/segment_durability.rs` pins
//! this.
//!
//! [`ShardedIngest`]: crate::shard::ShardedIngest
//! [`FramePipeline`]: crate::pipeline::FramePipeline

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use focus_cnn::Classifier;
use focus_index::{SegmentError, SegmentMeta, SegmentStore, TopKIndex};
use focus_runtime::{GpuMeter, WorkerPool};
use focus_video::{Frame, ObjectId, ObjectObservation, StreamId, VideoDataset};

use crate::ingest::{IngestCnn, IngestEngine, IngestOutput, IngestParams};
use crate::pipeline::{FramePipeline, PipelineOutput};

/// When the segmented driver seals the live records into a segment: after
/// `max_frames` frames or `max_secs` of stream time, whichever comes first.
///
/// # Examples
///
/// ```
/// use focus_core::segment_ingest::SealPolicy;
///
/// let by_time = SealPolicy::every_secs(30.0);
/// assert_eq!(by_time.max_secs, 30.0);
/// let by_frames = SealPolicy::every_frames(900);
/// assert_eq!(by_frames.max_frames, 900);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SealPolicy {
    /// Maximum frames per segment (minimum 1 is enforced at ingest time).
    pub max_frames: usize,
    /// Maximum stream seconds per segment.
    pub max_secs: f64,
}

impl Default for SealPolicy {
    fn default() -> Self {
        // One segment per minute of a 30-fps stream: long enough that
        // clustering quality is unaffected, short enough that time-filtered
        // queries prune meaningfully.
        Self {
            max_frames: 1800,
            max_secs: 60.0,
        }
    }
}

impl SealPolicy {
    /// Seals on a frame budget only.
    pub fn every_frames(max_frames: usize) -> Self {
        Self {
            max_frames,
            max_secs: f64::INFINITY,
        }
    }

    /// Seals on a stream-time budget only.
    pub fn every_secs(max_secs: f64) -> Self {
        Self {
            max_frames: usize::MAX,
            max_secs,
        }
    }
}

/// The combined result of a segmented ingest run.
#[derive(Debug)]
pub struct SegmentedIngestOutput {
    /// The whole corpus as one in-memory [`IngestOutput`] (merged across
    /// streams and segments) — the reference the segmented query path is
    /// proven byte-identical against, and what callers use when they want
    /// in-memory serving anyway.
    pub combined: IngestOutput,
    /// The segments sealed to the store, in seal order.
    pub sealed: Vec<SegmentMeta>,
}

/// Multi-stream ingest that seals its output into a durable
/// [`SegmentStore`] as it goes: one [`FramePipeline`] per stream shard on
/// the worker pool, one immutable segment per [`SealPolicy`] budget.
///
/// # Examples
///
/// ```
/// use focus_core::prelude::*;
/// use focus_core::segment_ingest::{SealPolicy, SegmentedIngest};
/// use focus_index::SegmentStore;
/// use focus_video::profile::profile_by_name;
///
/// let ds = focus_video::VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 40.0);
/// let dir = std::env::temp_dir().join("focus_segmented_ingest_doc");
/// let _ = std::fs::remove_dir_all(&dir);
/// let mut store = SegmentStore::create(&dir).unwrap();
///
/// let ingest = SegmentedIngest::new(
///     IngestCnn::generic(focus_cnn::ModelSpec::cheap_cnn_1()),
///     IngestParams { k: 10, ..IngestParams::default() },
///     SealPolicy::every_secs(10.0),
///     2,
/// );
/// let output = ingest
///     .ingest_to_store(std::slice::from_ref(&ds), &mut store, &focus_runtime::GpuMeter::new())
///     .unwrap();
///
/// // 40 seconds at a 10-second budget: four durable segments whose merge
/// // is exactly the in-memory combined index.
/// assert_eq!(output.sealed.len(), 4);
/// assert_eq!(store.merged_index().unwrap().len(), output.combined.index.len());
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug, Clone)]
pub struct SegmentedIngest {
    engine: IngestEngine,
    policy: SealPolicy,
    pool: WorkerPool,
}

impl SegmentedIngest {
    /// Creates a segmented ingest layer running every stream with the same
    /// `model` and `params` on `shards` pool threads, sealing per `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(model: IngestCnn, params: IngestParams, policy: SealPolicy, shards: usize) -> Self {
        Self::with_pool(
            IngestEngine::new(model, params),
            policy,
            WorkerPool::new(shards),
        )
    }

    /// Creates a segmented ingest layer around an existing engine and pool.
    pub fn with_pool(engine: IngestEngine, policy: SealPolicy, pool: WorkerPool) -> Self {
        Self {
            engine,
            policy,
            pool,
        }
    }

    /// The engine each stream shard runs.
    pub fn engine(&self) -> &IngestEngine {
        &self.engine
    }

    /// The seal policy.
    pub fn policy(&self) -> SealPolicy {
        self.policy
    }

    /// Ingests a multi-camera workload, sealing segments into `store` and
    /// returning the sealed metadata plus the merged in-memory reference.
    ///
    /// GPU cost is charged to `meter` under the phase `"ingest"`, one charge
    /// per stream in workload order (the same bitwise-reproducible
    /// discipline as [`ShardedIngest::ingest`]).
    ///
    /// # Panics
    ///
    /// Panics if two datasets share a stream id (a shard is *the* ingest
    /// worker of its stream) or if the workload is empty.
    ///
    /// [`ShardedIngest::ingest`]: crate::shard::ShardedIngest::ingest
    pub fn ingest_to_store(
        &self,
        datasets: &[VideoDataset],
        store: &mut SegmentStore,
        meter: &GpuMeter,
    ) -> Result<SegmentedIngestOutput, SegmentError> {
        let mut streams: Vec<_> = datasets.iter().map(|d| d.profile.stream_id).collect();
        streams.sort();
        streams.dedup();
        assert_eq!(
            streams.len(),
            datasets.len(),
            "each shard must own a distinct stream"
        );
        assert!(
            !datasets.is_empty(),
            "cannot ingest an empty segmented workload"
        );

        // Per-stream pipelines run concurrently; each drains a list of
        // segment-sized indexes at its seal boundaries.
        let engine = &self.engine;
        let policy = self.policy;
        let per_stream: Vec<(Vec<TopKIndex>, PipelineOutput)> =
            self.pool.map(datasets.iter().collect(), |dataset| {
                ingest_stream_segmented(engine, policy, dataset)
            });

        // Seal to the store on this thread, in workload order: the store
        // contents are deterministic for any shard count.
        let mut sealed = Vec::new();
        let mut index = TopKIndex::new();
        let mut centroids: HashMap<ObjectId, ObjectObservation> = HashMap::new();
        let mut combined: Option<IngestOutput> = None;
        for (parts, output) in per_stream {
            meter.charge("ingest", output.gpu_cost);
            for part in &parts {
                if let Some(meta) = store.seal(part)? {
                    sealed.push(meta);
                }
                let replaced = index.merge_from(part);
                assert_eq!(replaced, 0, "drained segments must be key-disjoint");
            }
            let mut stream_output =
                IngestOutput::from_pipeline(output, self.engine.model().clone());
            let stream_centroids = std::mem::take(&mut stream_output.centroids);
            let expected = centroids.len() + stream_centroids.len();
            centroids.extend(stream_centroids);
            assert_eq!(
                centroids.len(),
                expected,
                "cross-stream ObjectId collision: centroid observations would be clobbered"
            );
            combined = Some(match combined {
                None => stream_output,
                Some(mut acc) => {
                    acc.gpu_cost += stream_output.gpu_cost;
                    acc.frames_total += stream_output.frames_total;
                    acc.frames_with_motion += stream_output.frames_with_motion;
                    acc.objects_total += stream_output.objects_total;
                    acc.objects_classified += stream_output.objects_classified;
                    acc
                }
            });
        }
        let mut combined = combined.expect("non-empty workload");
        combined.index = index;
        combined.centroids = centroids;
        combined.clusters = combined.index.len();
        Ok(SegmentedIngestOutput { combined, sealed })
    }
}

/// Incremental seal/advance over one stream: a [`FramePipeline`] plus the
/// [`SealPolicy`] bookkeeping that decides, frame by frame, when the
/// pending records become an immutable segment.
///
/// This is the unit the one-shot [`SegmentedIngest::ingest_to_store`]
/// driver loops over a recorded dataset, and the unit the live
/// [`FocusService`](crate::service::FocusService) advances continuously —
/// both produce the exact same segment partitioning for the same frame
/// sequence.
///
/// **Boundary semantics** (regression-pinned in
/// `tests/segment_durability.rs`): segment time is derived from the frame
/// id (`frame_id / fps`), a segment's start is the time of its *first*
/// frame, and a frame landing exactly on a [`SealPolicy::every_secs`]
/// boundary seals the pending segment and becomes the first frame of the
/// next one — every frame lands in exactly one segment, never zero, never
/// two.
#[derive(Debug)]
pub struct StreamSegmenter {
    pipeline: FramePipeline,
    policy: SealPolicy,
    frames_in_segment: usize,
    segment_start_secs: f64,
    last_frame_secs: f64,
}

impl StreamSegmenter {
    /// Creates a segmenter for one stream.
    pub fn new(stream: StreamId, fps: u32, params: IngestParams, policy: SealPolicy) -> Self {
        Self::from_pipeline(FramePipeline::new(stream, fps, params), policy)
    }

    /// Wraps an existing pipeline (the recovery path: the pipeline may have
    /// had its cluster-key counter resumed past the sealed segments).
    pub fn from_pipeline(pipeline: FramePipeline, policy: SealPolicy) -> Self {
        Self {
            pipeline,
            policy,
            frames_in_segment: 0,
            segment_start_secs: 0.0,
            last_frame_secs: 0.0,
        }
    }

    /// The underlying pipeline.
    pub fn pipeline(&self) -> &FramePipeline {
        &self.pipeline
    }

    /// Mutable access to the underlying pipeline (the service seals model
    /// epochs through this on retrain).
    pub fn pipeline_mut(&mut self) -> &mut FramePipeline {
        &mut self.pipeline
    }

    /// The seal policy.
    pub fn policy(&self) -> SealPolicy {
        self.policy
    }

    /// Frames pushed since the last seal (the pending tail of this stream).
    pub fn pending_frames(&self) -> usize {
        self.frames_in_segment
    }

    /// Stream time of `frame`, derived from its id so a resumed stream
    /// keeps a consistent clock.
    fn now_secs(&self, frame: &Frame) -> f64 {
        frame.frame_id.0 as f64 / self.pipeline.fps() as f64
    }

    /// The single seal predicate both the push path and the maintenance
    /// path evaluate: would a frame arriving at `at_secs` seal the pending
    /// records? Keeping this in one place is what guarantees maintenance
    /// seals exactly the segments the next push would have sealed.
    fn seal_due(&self, at_secs: f64) -> bool {
        self.frames_in_segment > 0
            && (self.frames_in_segment >= self.policy.max_frames.max(1)
                || at_secs - self.segment_start_secs >= self.policy.max_secs)
    }

    /// Whether the pending records have hit a seal budget — true exactly
    /// when the *next* frame push would seal them, so a maintenance tick
    /// that seals on `should_seal` never changes the segment partitioning
    /// relative to a purely push-driven run.
    pub fn should_seal(&self) -> bool {
        self.seal_due(self.last_frame_secs + 1.0 / self.pipeline.fps() as f64)
    }

    /// Pushes one frame; returns the drained segment index when the push
    /// crossed a seal boundary (the boundary frame itself starts the new
    /// segment). Empty drains are swallowed.
    pub fn push_frame(&mut self, frame: &Frame, classifier: &dyn Classifier) -> Option<TopKIndex> {
        self.push_frame_observed(frame, classifier, |_, _| {})
    }

    /// Like [`push_frame`](Self::push_frame), with the pipeline's observer
    /// hook (the service maintains its GT-labelled retraining sample
    /// through this).
    pub fn push_frame_observed(
        &mut self,
        frame: &Frame,
        classifier: &dyn Classifier,
        observer: impl FnMut(&ObjectObservation, usize),
    ) -> Option<TopKIndex> {
        let now_secs = self.now_secs(frame);
        let mut part = None;
        if self.seal_due(now_secs) {
            let drained = self.pipeline.seal_segment();
            if !drained.is_empty() {
                part = Some(drained);
            }
            self.frames_in_segment = 0;
        }
        if self.frames_in_segment == 0 {
            // A segment's clock starts at its first frame, which also makes
            // a segmenter resumed mid-stream (recovery) start its first
            // segment at the resume point instead of spuriously sealing.
            self.segment_start_secs = now_secs;
        }
        self.pipeline
            .push_frame_observed(frame, classifier, observer);
        self.frames_in_segment += 1;
        self.last_frame_secs = now_secs;
        part
    }

    /// Unconditionally drains everything pending into a segment index
    /// (empty if nothing is pending) — the flush path for shutdown,
    /// `seal_all`, and maintenance ticks.
    pub fn seal_pending(&mut self) -> TopKIndex {
        self.frames_in_segment = 0;
        self.pipeline.seal_segment()
    }

    /// Drains the final pending segment and finishes the pipeline,
    /// consuming the segmenter. The output's own index is empty by
    /// construction (every record was drained into a part).
    pub fn finish(mut self) -> (Option<TopKIndex>, PipelineOutput) {
        let part = self.seal_pending();
        let part = (!part.is_empty()).then_some(part);
        let output = self.pipeline.finish();
        debug_assert!(
            output.index.is_empty(),
            "pipeline was drained before finish"
        );
        (part, output)
    }
}

/// Runs one stream through a segmenter, draining a segment index at every
/// seal boundary. The final partial segment is drained too, so the
/// pipeline's own output index comes back empty and `parts` holds every
/// record of the stream.
fn ingest_stream_segmented(
    engine: &IngestEngine,
    policy: SealPolicy,
    dataset: &VideoDataset,
) -> (Vec<TopKIndex>, PipelineOutput) {
    let classifier = engine.model().classifier.as_ref();
    let mut segmenter = StreamSegmenter::new(
        dataset.profile.stream_id,
        dataset.profile.fps,
        engine.params(),
        policy,
    );
    let mut parts = Vec::new();
    for frame in &dataset.frames {
        if let Some(part) = segmenter.push_frame(frame, classifier) {
            parts.push(part);
        }
    }
    let (final_part, output) = segmenter.finish();
    parts.extend(final_part);
    (parts, output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_cnn::ModelSpec;
    use focus_index::persist;
    use focus_video::profile::profile_by_name;
    use std::path::PathBuf;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("focus_segment_ingest_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn workload(names: &[&str], secs: f64) -> Vec<VideoDataset> {
        names
            .iter()
            .map(|n| VideoDataset::generate(profile_by_name(n).unwrap(), secs))
            .collect()
    }

    fn ingest(shards: usize) -> SegmentedIngest {
        SegmentedIngest::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams {
                k: 10,
                ..IngestParams::default()
            },
            SealPolicy::every_secs(15.0),
            shards,
        )
    }

    #[test]
    fn store_merge_equals_combined_index() {
        let datasets = workload(&["auburn_c", "lausanne"], 45.0);
        let dir = test_dir("merge_equals");
        let mut store = SegmentStore::create(&dir).unwrap();
        let meter = GpuMeter::new();
        let output = ingest(2)
            .ingest_to_store(&datasets, &mut store, &meter)
            .unwrap();
        // 45 s at a 15-s budget: 3 segments per stream.
        assert_eq!(output.sealed.len(), 6);
        assert_eq!(store.len(), 6);
        assert_eq!(
            persist::to_json(&store.merged_index().unwrap()).unwrap(),
            persist::to_json(&output.combined.index).unwrap()
        );
        // Bookkeeping is whole-run: every object indexed exactly once, every
        // centroid retained, the meter charged the full cost.
        let indexed: usize = output.combined.index.clusters().map(|c| c.len()).sum();
        assert_eq!(indexed, output.combined.objects_total);
        assert_eq!(
            output.combined.objects_total,
            datasets.iter().map(|d| d.object_count()).sum::<usize>()
        );
        for record in output.combined.index.clusters() {
            assert!(output
                .combined
                .centroids
                .contains_key(&record.centroid_object));
        }
        assert!(
            (meter.phase("ingest").seconds() - output.combined.gpu_cost.seconds()).abs() < 1e-12
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_bounds_partition_stream_time() {
        let datasets = workload(&["auburn_c"], 60.0);
        let dir = test_dir("bounds");
        let mut store = SegmentStore::create(&dir).unwrap();
        let output = ingest(1)
            .ingest_to_store(&datasets, &mut store, &GpuMeter::new())
            .unwrap();
        assert_eq!(output.sealed.len(), 4);
        for window in output.sealed.windows(2) {
            // Consecutive segments of one stream cover later and later time.
            assert!(window[0].t_start <= window[1].t_start);
            assert!(window[0].t_end <= window[1].t_end);
        }
        for (i, meta) in output.sealed.iter().enumerate() {
            assert!(meta.t_end >= meta.t_start);
            // Each 15-second budget window stays within its slice of the
            // stream (clusters can't span a seal boundary).
            assert!(meta.t_start >= i as f64 * 15.0 - 1e-9);
            assert!(meta.t_end <= (i + 1) as f64 * 15.0 + 1e-9);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frame_budget_seals_too() {
        let datasets = workload(&["bend"], 30.0);
        let fps = datasets[0].profile.fps as usize;
        let dir = test_dir("frame_budget");
        let mut store = SegmentStore::create(&dir).unwrap();
        let ingest = SegmentedIngest::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams::default(),
            SealPolicy::every_frames(fps * 10),
            1,
        );
        let output = ingest
            .ingest_to_store(&datasets, &mut store, &GpuMeter::new())
            .unwrap();
        // 30 s at a 10-s-of-frames budget: up to 3 segments (sparse streams
        // may seal empty windows, which are skipped).
        assert!(!output.sealed.is_empty());
        assert!(output.sealed.len() <= 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_contents_are_identical_for_any_shard_count() {
        let datasets = workload(&["auburn_c", "lausanne", "bend"], 30.0);
        let mut manifests = Vec::new();
        for shards in [1usize, 2, 4] {
            let dir = test_dir(&format!("shards_{shards}"));
            let mut store = SegmentStore::create(&dir).unwrap();
            ingest(shards)
                .ingest_to_store(&datasets, &mut store, &GpuMeter::new())
                .unwrap();
            let manifest_json =
                std::fs::read_to_string(dir.join(focus_index::manifest::MANIFEST_FILE)).unwrap();
            let segment_bytes: Vec<Vec<u8>> = store
                .segments()
                .iter()
                .map(|m| std::fs::read(dir.join(&m.file)).unwrap())
                .collect();
            manifests.push((manifest_json, segment_bytes));
            std::fs::remove_dir_all(&dir).ok();
        }
        assert_eq!(manifests[0], manifests[1]);
        assert_eq!(manifests[0], manifests[2]);
    }

    #[test]
    #[should_panic(expected = "distinct stream")]
    fn duplicate_streams_are_rejected() {
        let mut datasets = workload(&["auburn_c"], 10.0);
        datasets.push(datasets[0].clone());
        let dir = test_dir("duplicate");
        let mut store = SegmentStore::create(&dir).unwrap();
        let _ = ingest(2).ingest_to_store(&datasets, &mut store, &GpuMeter::new());
    }

    #[test]
    fn policy_constructors() {
        assert_eq!(SealPolicy::default().max_frames, 1800);
        assert_eq!(SealPolicy::every_frames(5).max_secs, f64::INFINITY);
        assert_eq!(SealPolicy::every_secs(5.0).max_frames, usize::MAX);
    }
}
