//! The end-to-end experiment runner used by every table and figure of the
//! evaluation (§6 of the paper).
//!
//! For one stream the runner: generates (or accepts) a recorded dataset,
//! selects parameters on a sampled slice, ingests the full recording with
//! the chosen configuration, runs queries for the stream's dominant classes,
//! evaluates precision/recall against the ground-truth CNN, and reports the
//! ingest-cost and query-latency factors against the Ingest-all and
//! Query-all baselines.

use serde::{Deserialize, Serialize};

use focus_cnn::GroundTruthCnn;
use focus_index::QueryFilter;
use focus_runtime::{GpuClusterSpec, GpuMeter, WorkerPool};
use focus_video::sampling::sample_dataset;
use focus_video::{ClassId, StreamProfile, VideoDataset};

use crate::accuracy::GroundTruthLabels;
use crate::baselines::{AllQueriedComparison, BaselineCosts, QueryTimeOnlyComparison};
use crate::config::{AblationMode, AccuracyTarget, TradeoffPolicy};
use crate::ingest::IngestEngine;
use crate::params::{ParameterSelector, SelectedConfiguration, SelectionResult, SweepSpace};
use crate::query::QueryEngine;

/// Configuration of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Length of the recorded video analysed per stream, in seconds. The
    /// paper uses 12-hour recordings; the default here is a 10-minute slice,
    /// which preserves all the distributional properties the techniques
    /// depend on while keeping the harness runnable on a laptop.
    pub duration_secs: f64,
    /// Length of the sampled slice used for parameter selection, in seconds.
    pub sample_secs: f64,
    /// Accuracy targets (precision, recall).
    pub target: AccuracyTarget,
    /// Trade-off policy used to pick the configuration.
    pub policy: TradeoffPolicy,
    /// GPU cluster serving queries.
    pub gpus: GpuClusterSpec,
    /// Candidate space swept during parameter selection.
    pub sweep: SweepSpace,
    /// Which Focus components are enabled (Figure-8 ablation).
    pub ablation: AblationMode,
    /// How many of the stream's dominant classes are queried and averaged.
    pub query_classes: usize,
    /// If set, the dataset is subsampled to this frame rate before any
    /// processing (§6.6).
    pub frame_rate: Option<u32>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            duration_secs: 600.0,
            sample_secs: 90.0,
            target: AccuracyTarget::default(),
            policy: TradeoffPolicy::Balance,
            gpus: GpuClusterSpec::default(),
            sweep: SweepSpace::full(),
            ablation: AblationMode::Full,
            query_classes: 5,
            frame_rate: None,
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for tests: shorter videos, smaller sweep.
    pub fn quick() -> Self {
        Self {
            duration_secs: 180.0,
            sample_secs: 60.0,
            sweep: SweepSpace::quick(),
            query_classes: 3,
            ..Self::default()
        }
    }
}

/// Per-class query measurements within a stream report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryReportEntry {
    /// The queried class.
    pub class: ClassId,
    /// GPU time of the query.
    pub gpu_secs: f64,
    /// Wall-clock latency on the configured GPU cluster.
    pub latency_secs: f64,
    /// Precision against the ground truth.
    pub precision: f64,
    /// Recall against the ground truth.
    pub recall: f64,
    /// Frames returned.
    pub frames_returned: usize,
    /// Clusters whose top-K matched (each costs one GT-CNN inference).
    pub matched_clusters: usize,
}

/// The end-to-end measurements for one stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamExperimentReport {
    /// Stream name.
    pub stream: String,
    /// Policy used.
    pub policy: TradeoffPolicy,
    /// Ablation mode used.
    pub ablation: AblationMode,
    /// Display name of the chosen ingest model.
    pub chosen_model: String,
    /// Chosen top-K width.
    pub chosen_k: usize,
    /// Chosen clustering threshold.
    pub chosen_threshold: f32,
    /// Whether the chosen configuration met the accuracy targets during
    /// parameter selection (`false` for best-effort fall-backs).
    pub met_accuracy_targets: bool,
    /// Frames analysed.
    pub frames: usize,
    /// Object observations analysed.
    pub objects: usize,
    /// Clusters in the index.
    pub clusters: usize,
    /// Focus ingest GPU seconds.
    pub ingest_gpu_secs: f64,
    /// Ingest-all baseline GPU seconds.
    pub ingest_all_gpu_secs: f64,
    /// How many times cheaper Focus's ingest is than Ingest-all (Figure 7,
    /// top).
    pub ingest_cheaper_factor: f64,
    /// Mean Focus query latency over the queried classes, seconds.
    pub mean_query_latency_secs: f64,
    /// Query-all baseline latency, seconds.
    pub query_all_latency_secs: f64,
    /// How many times faster Focus's queries are than Query-all (Figure 7,
    /// bottom).
    pub query_faster_factor: f64,
    /// Mean precision over the queried classes.
    pub mean_precision: f64,
    /// Mean recall over the queried classes.
    pub mean_recall: f64,
    /// §6.7 extreme: total-cost comparison when everything is queried.
    pub all_queried_cheaper_factor: f64,
    /// §6.7 extreme: latency comparison when Focus runs entirely at query
    /// time.
    pub query_time_only_faster_factor: f64,
    /// Per-class query details.
    pub queries: Vec<QueryReportEntry>,
}

/// Errors produced by the experiment runner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExperimentError {
    /// Parameter selection found no configuration meeting the accuracy
    /// targets.
    NoViableConfiguration {
        /// The stream that failed.
        stream: String,
        /// Number of configurations evaluated.
        evaluated: usize,
    },
    /// The dataset contained no objects to analyse.
    EmptyDataset {
        /// The stream that failed.
        stream: String,
    },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::NoViableConfiguration { stream, evaluated } => write!(
                f,
                "no configuration met the accuracy targets for stream {stream} \
                 ({evaluated} evaluated)"
            ),
            ExperimentError::EmptyDataset { stream } => {
                write!(f, "stream {stream} produced no objects to analyse")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// The experiment runner.
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    config: ExperimentConfig,
}

impl ExperimentRunner {
    /// Creates a runner for `config`.
    pub fn new(config: ExperimentConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Generates the dataset for a profile according to the configuration
    /// (duration and optional frame-rate subsampling).
    pub fn dataset_for(&self, profile: &StreamProfile) -> VideoDataset {
        let dataset = VideoDataset::generate(profile.clone(), self.config.duration_secs);
        match self.config.frame_rate {
            Some(fps) if fps < profile.fps => sample_dataset(&dataset, fps),
            _ => dataset,
        }
    }

    /// The representative sample of a dataset used for parameter selection.
    ///
    /// The paper "samples a representative fraction of frames of the video
    /// stream" (§4.4); taking only the leading seconds would bias the
    /// selection towards whatever happened first (a busy rush hour makes
    /// every configuration look accurate, a quiet night the opposite), so
    /// whole one-second chunks are taken evenly across the recording until
    /// `sample_secs` of video are collected. One-second granularity keeps
    /// the ground-truth segment rule meaningful on the sample.
    fn sample_of(&self, dataset: &VideoDataset) -> VideoDataset {
        if dataset.frames.is_empty() {
            return dataset.clone();
        }
        let fps = dataset.profile.fps.max(1) as u64;
        let total_seconds = (dataset.frames.len() as u64).div_ceil(fps).max(1);
        let wanted_seconds = (self.config.sample_secs.max(1.0) as u64).max(1);
        let stride = (total_seconds / wanted_seconds.min(total_seconds)).max(1);
        let frames: Vec<_> = dataset
            .frames
            .iter()
            .filter(|f| (f.frame_id.0 / fps).is_multiple_of(stride))
            .cloned()
            .collect();
        let sampled_secs = frames.len() as f64 / fps as f64;
        VideoDataset::from_frames(dataset.profile.clone(), sampled_secs, frames)
    }

    /// Runs parameter selection for a dataset, returning both the full
    /// selection result (for Figures 1 and 6) and the configuration chosen
    /// by the configured policy.
    pub fn select_parameters(
        &self,
        dataset: &VideoDataset,
        gt: &GroundTruthCnn,
    ) -> (SelectionResult, Option<SelectedConfiguration>) {
        let sweep = self.config.sweep.clone().for_ablation(self.config.ablation);
        let selector = ParameterSelector::new(sweep, self.config.target);
        let sample = self.sample_of(dataset);
        let result = selector.select(&sample, gt);
        let chosen = result.choose(self.config.policy);
        (result, chosen)
    }

    /// Runs the full experiment for one stream profile.
    pub fn run_stream(
        &self,
        profile: &StreamProfile,
    ) -> Result<StreamExperimentReport, ExperimentError> {
        let dataset = self.dataset_for(profile);
        self.run_dataset(&dataset)
    }

    /// Runs the full experiment on an already-materialized dataset.
    pub fn run_dataset(
        &self,
        dataset: &VideoDataset,
    ) -> Result<StreamExperimentReport, ExperimentError> {
        let stream_name = dataset.profile.name.clone();
        if dataset.object_count() == 0 {
            return Err(ExperimentError::EmptyDataset {
                stream: stream_name,
            });
        }
        let gt = GroundTruthCnn::resnet152();

        // 1. Parameter selection on the sampled slice. If nothing meets the
        //    targets (which does not happen on the paper's streams, but can
        //    with unusually strict targets or sparse streams), fall back to
        //    the most accurate configuration and record the shortfall.
        let (selection, chosen) = self.select_parameters(dataset, &gt);
        let chosen = match chosen {
            Some(chosen) => chosen,
            None => selection.choose_or_best_effort(self.config.policy).ok_or(
                ExperimentError::NoViableConfiguration {
                    stream: stream_name.clone(),
                    evaluated: selection.evaluated.len(),
                },
            )?,
        };

        // 2. Ingest the full recording with the chosen configuration.
        let meter = GpuMeter::new();
        let ingest_engine = IngestEngine::new(chosen.model.clone(), chosen.params);
        let ingest = ingest_engine.ingest(dataset, &meter);

        // 3. Baselines.
        let baselines = BaselineCosts::compute(dataset, &gt, self.config.gpus);

        // 4. Ground truth and dominant classes for querying.
        let labels = GroundTruthLabels::compute(dataset, &gt);
        let classes = labels.dominant_classes(self.config.query_classes);

        // 5. Queries.
        let query_engine = QueryEngine::new(GroundTruthCnn::resnet152(), self.config.gpus);
        let mut queries = Vec::new();
        let mut query_gpu_total = 0.0;
        for class in &classes {
            let outcome = query_engine.query(&ingest, *class, &QueryFilter::any(), &meter);
            let accuracy = labels.evaluate(*class, &outcome.frames);
            query_gpu_total += outcome.gpu_cost.seconds();
            queries.push(QueryReportEntry {
                class: *class,
                gpu_secs: outcome.gpu_cost.seconds(),
                latency_secs: outcome.latency_secs,
                precision: accuracy.precision,
                recall: accuracy.recall,
                frames_returned: outcome.frames.len(),
                matched_clusters: outcome.matched_clusters,
            });
        }
        let n = queries.len().max(1) as f64;
        let mean_latency = queries.iter().map(|q| q.latency_secs).sum::<f64>() / n;
        let mean_precision = queries.iter().map(|q| q.precision).sum::<f64>() / n;
        let mean_recall = queries.iter().map(|q| q.recall).sum::<f64>() / n;
        let mean_query_gpu = query_gpu_total / n;

        // 6. §6.7 extremes.
        let all_queried =
            AllQueriedComparison::compute(ingest.gpu_cost, ingest.clusters, &gt, &baselines);
        let query_time_only = QueryTimeOnlyComparison::compute(
            ingest.gpu_cost,
            focus_cnn::GpuCost(mean_query_gpu),
            self.config.gpus,
            &baselines,
        );

        Ok(StreamExperimentReport {
            stream: stream_name,
            policy: self.config.policy,
            ablation: self.config.ablation,
            chosen_model: chosen.point.model.display_name(),
            chosen_k: chosen.point.k,
            chosen_threshold: chosen.point.threshold,
            met_accuracy_targets: chosen.met_targets,
            frames: dataset.frames.len(),
            objects: ingest.objects_total,
            clusters: ingest.clusters,
            ingest_gpu_secs: ingest.gpu_cost.seconds(),
            ingest_all_gpu_secs: baselines.ingest_all_gpu.seconds(),
            ingest_cheaper_factor: baselines.ingest_cheaper_factor(ingest.gpu_cost),
            mean_query_latency_secs: mean_latency,
            query_all_latency_secs: baselines.query_all_latency_secs,
            query_faster_factor: baselines.query_faster_factor(mean_latency),
            mean_precision,
            mean_recall,
            all_queried_cheaper_factor: all_queried.focus_cheaper_factor,
            query_time_only_faster_factor: query_time_only.focus_faster_factor,
            queries,
        })
    }

    /// Runs the experiment for several streams, skipping streams for which
    /// no viable configuration exists (and reporting them).
    pub fn run_streams(
        &self,
        profiles: &[StreamProfile],
    ) -> Vec<Result<StreamExperimentReport, ExperimentError>> {
        profiles.iter().map(|p| self.run_stream(p)).collect()
    }

    /// Like [`run_streams`](Self::run_streams), but runs the per-stream
    /// experiments concurrently on `pool` (each stream's experiment is
    /// independent: its own dataset, parameter selection, ingest and
    /// queries). Results come back in profile order regardless of
    /// scheduling.
    pub fn run_streams_parallel(
        &self,
        profiles: &[StreamProfile],
        pool: &WorkerPool,
    ) -> Vec<Result<StreamExperimentReport, ExperimentError>> {
        pool.map(profiles.iter().collect(), |profile| {
            self.run_stream(profile)
        })
    }
}

/// Averages the headline factors over a set of stream reports (the "Avg"
/// bars in Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct AggregateFactors {
    /// Number of streams aggregated.
    pub streams: usize,
    /// Mean ingest-cheaper factor.
    pub mean_ingest_cheaper: f64,
    /// Maximum ingest-cheaper factor.
    pub max_ingest_cheaper: f64,
    /// Mean query-faster factor.
    pub mean_query_faster: f64,
    /// Maximum query-faster factor.
    pub max_query_faster: f64,
    /// Mean precision across streams.
    pub mean_precision: f64,
    /// Mean recall across streams.
    pub mean_recall: f64,
}

impl AggregateFactors {
    /// Aggregates a set of reports.
    pub fn from_reports(reports: &[StreamExperimentReport]) -> Self {
        if reports.is_empty() {
            return Self::default();
        }
        let n = reports.len() as f64;
        Self {
            streams: reports.len(),
            mean_ingest_cheaper: reports.iter().map(|r| r.ingest_cheaper_factor).sum::<f64>() / n,
            max_ingest_cheaper: reports
                .iter()
                .map(|r| r.ingest_cheaper_factor)
                .fold(0.0, f64::max),
            mean_query_faster: reports.iter().map(|r| r.query_faster_factor).sum::<f64>() / n,
            max_query_faster: reports
                .iter()
                .map(|r| r.query_faster_factor)
                .fold(0.0, f64::max),
            mean_precision: reports.iter().map(|r| r.mean_precision).sum::<f64>() / n,
            mean_recall: reports.iter().map(|r| r.mean_recall).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_video::profile::profile_by_name;

    fn quick_runner(policy: TradeoffPolicy) -> ExperimentRunner {
        ExperimentRunner::new(ExperimentConfig {
            policy,
            target: AccuracyTarget::both(0.9),
            ..ExperimentConfig::quick()
        })
    }

    #[test]
    fn end_to_end_beats_both_baselines() {
        let profile = profile_by_name("auburn_c").unwrap();
        let report = quick_runner(TradeoffPolicy::Balance)
            .run_stream(&profile)
            .unwrap();
        assert!(
            report.ingest_cheaper_factor > 5.0,
            "ingest factor = {}",
            report.ingest_cheaper_factor
        );
        assert!(
            report.query_faster_factor > 3.0,
            "query factor = {}",
            report.query_faster_factor
        );
        assert!(report.mean_precision > 0.8, "{}", report.mean_precision);
        assert!(report.mean_recall > 0.8, "{}", report.mean_recall);
        assert!(report.clusters > 0 && report.clusters < report.objects);
        assert_eq!(report.queries.len(), 3);
        assert!(report.all_queried_cheaper_factor > 1.0);
        assert!(report.query_time_only_faster_factor > 1.0);
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let profile = profile_by_name("bend").unwrap();
        let runner = quick_runner(TradeoffPolicy::Balance);
        let empty = VideoDataset::from_frames(profile, 0.0, vec![]);
        let err = runner.run_dataset(&empty).unwrap_err();
        assert!(matches!(err, ExperimentError::EmptyDataset { .. }));
        assert!(err.to_string().contains("bend"));
    }

    #[test]
    fn aggregate_factors_average_reports() {
        let profile = profile_by_name("auburn_c").unwrap();
        let report = quick_runner(TradeoffPolicy::Balance)
            .run_stream(&profile)
            .unwrap();
        let agg = AggregateFactors::from_reports(&[report.clone(), report.clone()]);
        assert_eq!(agg.streams, 2);
        assert!((agg.mean_ingest_cheaper - report.ingest_cheaper_factor).abs() < 1e-9);
        assert!((agg.max_query_faster - report.query_faster_factor).abs() < 1e-9);
        assert_eq!(AggregateFactors::from_reports(&[]).streams, 0);
    }

    #[test]
    fn frame_rate_subsampling_reduces_work() {
        let profile = profile_by_name("auburn_c").unwrap();
        let full = quick_runner(TradeoffPolicy::Balance);
        let sampled = ExperimentRunner::new(ExperimentConfig {
            frame_rate: Some(5),
            target: AccuracyTarget::both(0.9),
            ..ExperimentConfig::quick()
        });
        let full_ds = full.dataset_for(&profile);
        let sampled_ds = sampled.dataset_for(&profile);
        assert!(sampled_ds.frames.len() < full_ds.frames.len());
        assert!(sampled_ds.object_count() < full_ds.object_count());
    }

    #[test]
    fn report_serializes_to_json() {
        let profile = profile_by_name("auburn_c").unwrap();
        let report = quick_runner(TradeoffPolicy::Balance)
            .run_stream(&profile)
            .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("auburn_c"));
        let back: StreamExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.stream, report.stream);
    }
}
