//! Focus: low-latency, low-cost querying on large video datasets.
//!
//! This crate is the reproduction of the system described in *"Focus:
//! Querying Large Video Datasets with Low Latency and Low Cost"* (Hsieh et
//! al., OSDI 2018). It ties the workspace's substrates together into the
//! paper's architecture (Figure 4):
//!
//! * **Ingest time** ([`ingest`]): motion filtering, pixel differencing,
//!   classification with a cheap (compressed + per-stream specialized) CNN,
//!   single-pass clustering of the CNN feature vectors, and construction of
//!   the approximate top-K index.
//! * **Query time** ([`query`], [`query_server`]): index lookup for the
//!   queried class, ground-truth-CNN verification of only the cluster
//!   centroids, and return of all frames of the confirmed clusters. The
//!   [`query_server::QueryServer`] serves many queries concurrently,
//!   deduplicating and batching the centroid verifications and memoizing
//!   verdicts in a cross-query cache (see `docs/query-path.md`).
//! * **Durable storage** ([`segment_ingest`], [`query::segmented`]):
//!   ingest seals the index into immutable time-partitioned segments under
//!   a crash-safe manifest, and time/camera-restricted queries open only
//!   the segments whose bounds intersect (see `docs/storage.md`).
//! * **Live serving** ([`service`]): the long-lived
//!   [`service::FocusService`] interleaves ingest ticks with
//!   query waves — queries see a snapshot-consistent union of sealed
//!   segments and the in-memory hot tail, specialization retrains bump the
//!   verdict-cache epoch automatically, and all GPU work shares one
//!   scheduled budget (see `docs/service.md`).
//! * **Parameter selection** ([`params`]): the sweep over (cheap CNN, K,
//!   Ls, T) on a GT-labelled sample, the Pareto frontier of ingest cost vs
//!   query latency, and the Opt-Ingest / Balance / Opt-Query policies.
//! * **Evaluation machinery** ([`accuracy`], [`baselines`],
//!   [`experiment`]): the paper's one-second-segment ground-truth rule, the
//!   Ingest-all and Query-all baselines, and the end-to-end experiment
//!   runner every table and figure is regenerated from.
//!
//! # Quick start
//!
//! ```
//! use focus_core::prelude::*;
//! use focus_video::profile::profile_by_name;
//!
//! // A one-minute recording of a busy traffic camera.
//! let dataset = focus_video::VideoDataset::generate(
//!     profile_by_name("auburn_c").unwrap(),
//!     60.0,
//! );
//!
//! // Ingest it with a generic compressed CNN and a top-10 index.
//! let model = IngestCnn::generic(focus_cnn::ModelSpec::cheap_cnn_1());
//! let params = IngestParams { k: 10, ..IngestParams::default() };
//! let meter = focus_runtime::GpuMeter::new();
//! let ingested = IngestEngine::new(model, params).ingest(&dataset, &meter);
//!
//! // Query for the dominant class and check the result is non-empty.
//! let class = dataset.dominant_classes(1)[0];
//! let engine = QueryEngine::new(
//!     focus_cnn::GroundTruthCnn::resnet152(),
//!     focus_runtime::GpuClusterSpec::new(10),
//! );
//! let outcome = engine.query(&ingested, class, &focus_index::QueryFilter::any(), &meter);
//! assert!(!outcome.frames.is_empty());
//! ```

pub mod accuracy;
pub mod adapt;
pub mod baselines;
pub mod config;
pub mod experiment;
pub mod fleet;
pub mod ingest;
pub mod params;
pub mod pipeline;
pub mod query;
pub mod query_server;
pub mod segment_ingest;
pub mod service;
pub mod serving;
pub mod shard;
pub mod worker;

pub use accuracy::{AccuracyReport, GroundTruthLabels};
pub use adapt::{
    AdaptationConfig, DriftDetector, GovernorConfig, Reconfiguration, StreamController,
    WorkloadGovernor,
};
pub use baselines::{AllQueriedComparison, BaselineCosts, QueryTimeOnlyComparison};
pub use config::{AblationMode, AccuracyTarget, TradeoffPolicy};
pub use experiment::{
    AggregateFactors, ExperimentConfig, ExperimentError, ExperimentRunner, QueryReportEntry,
    StreamExperimentReport,
};
pub use fleet::{
    ClusterManifest, FailoverReport, FleetConfig, FleetCoordinator, FleetError, FleetStats,
    ShardAssignment,
};
pub use ingest::{IngestCnn, IngestEngine, IngestModelDescriptor, IngestOutput, IngestParams};
pub use params::{
    pareto_boundary, ConfigurationPoint, ModelChoice, ParameterSelector, SelectedConfiguration,
    SelectionResult, SweepSpace,
};
pub use pipeline::{FramePipeline, PipelineOutput, PipelineStats};
pub use query::{QueryEngine, QueryOutcome, QueryPlan, QueryRequest, SegmentedCorpus, TailOverlay};
pub use query_server::{CacheStats, QueryServer};
pub use segment_ingest::{SealPolicy, SegmentedIngest, SegmentedIngestOutput, StreamSegmenter};
pub use service::{AdvanceReport, FocusService, MaintenanceReport, ServiceConfig, ServiceStats};
pub use serving::{
    Completed, Overloaded, RequestPlane, Response, ServingConfig, ServingStats, ShedReason,
    TenantConfig, TenantId, Ticket,
};
pub use shard::{ingest_serial, MultiIngestOutput, ShardedIngest};
pub use worker::{SpecializationLifecycle, StreamWorker, StreamWorkerConfig, StreamWorkerStats};

/// Convenience prelude re-exporting the types most applications need.
pub mod prelude {
    pub use crate::accuracy::GroundTruthLabels;
    pub use crate::adapt::{AdaptationConfig, DriftDetector, GovernorConfig, WorkloadGovernor};
    pub use crate::config::{AblationMode, AccuracyTarget, TradeoffPolicy};
    pub use crate::experiment::{ExperimentConfig, ExperimentRunner, StreamExperimentReport};
    pub use crate::fleet::{FleetConfig, FleetCoordinator};
    pub use crate::ingest::{IngestCnn, IngestEngine, IngestParams};
    pub use crate::params::{ParameterSelector, SweepSpace};
    pub use crate::pipeline::FramePipeline;
    pub use crate::query::{QueryEngine, QueryOutcome, QueryRequest, SegmentedCorpus};
    pub use crate::query_server::{CacheStats, QueryServer};
    pub use crate::segment_ingest::{SealPolicy, SegmentedIngest};
    pub use crate::service::{FocusService, ServiceConfig, ServiceStats};
    pub use crate::serving::{RequestPlane, ServingConfig, TenantConfig, TenantId};
    pub use crate::shard::{MultiIngestOutput, ShardedIngest};
    pub use crate::worker::{StreamWorker, StreamWorkerConfig};
}
