//! Live, frame-by-frame stream ingestion: the per-stream worker process of
//! §5 of the paper, including bootstrap specialization and periodic
//! retraining (§4.3).
//!
//! [`StreamWorker`] is the streaming driver of the shared
//! [`FramePipeline`]:
//! [`IngestEngine`](crate::ingest::IngestEngine) replays a recorded dataset
//! through one pipeline in a single call, while the worker pushes live
//! frames through one pipeline and layers model lifecycle management on top:
//!
//! 1. **Bootstrap** — the first `bootstrap_secs` of video are indexed with a
//!    generic compressed CNN while a ground-truth-labelled sample is
//!    collected.
//! 2. **Specialize** — once enough labelled objects exist, a per-stream
//!    specialized model is trained and becomes the ingest CNN.
//! 3. **Steady state** — frames are indexed with the specialized model;
//!    a small fraction of objects keeps being GT-labelled so the model can
//!    be **retrained periodically** (the paper retrains every few days; the
//!    interval here is configurable in stream-seconds).
//!
//! Each model epoch uses its own clusterer (feature spaces of different
//! models are not comparable) — the worker seals the pipeline's epoch on
//! every model switch — and sealed epochs accumulate in one top-K index, so
//! queries spanning epochs behave exactly like queries over a
//! batch-ingested recording.

use serde::{Deserialize, Serialize};

use focus_cnn::specialize::SpecializationLevel;
use focus_cnn::{Classifier, GroundTruthCnn, ModelSpec, SpecializedCnn};
use focus_runtime::GpuMeter;
use focus_video::{ClassId, Frame, ObjectObservation, StreamId};

use crate::ingest::{IngestCnn, IngestOutput, IngestParams};
use crate::pipeline::FramePipeline;

/// Configuration of a live stream worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamWorkerConfig {
    /// Ingest parameters (K, clustering threshold, pixel differencing, ...).
    pub params: IngestParams,
    /// Generic compressed model used before the first specialization.
    pub bootstrap_model: ModelSpec,
    /// Seconds of video to observe before training the first specialized
    /// model.
    pub bootstrap_secs: f64,
    /// How often (in stream-seconds) the specialized model is retrained.
    pub retrain_interval_secs: f64,
    /// Fraction of objects sent to the ground-truth CNN to maintain the
    /// labelled sample used for (re)training.
    pub gt_label_fraction: f64,
    /// Specialization compression level.
    pub level: SpecializationLevel,
    /// Number of specialized classes.
    pub ls: usize,
}

impl Default for StreamWorkerConfig {
    fn default() -> Self {
        Self {
            params: IngestParams {
                k: 2,
                ..IngestParams::default()
            },
            bootstrap_model: ModelSpec::cheap_cnn_1(),
            bootstrap_secs: 60.0,
            retrain_interval_secs: 600.0,
            gt_label_fraction: 0.02,
            level: SpecializationLevel::Medium,
            ls: 20,
        }
    }
}

/// Counters describing the worker's activity so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamWorkerStats {
    /// Frames pushed to the worker.
    pub frames: usize,
    /// Frames with at least one moving object.
    pub frames_with_motion: usize,
    /// Object observations seen.
    pub objects: usize,
    /// Objects classified by the ingest CNN (after pixel differencing).
    pub objects_classified: usize,
    /// Objects additionally labelled by the ground-truth CNN for
    /// (re)training.
    pub objects_gt_labelled: usize,
    /// Number of times a specialized model was (re)trained.
    pub retrains: usize,
    /// Model epochs sealed into the index so far (excluding the live one).
    pub sealed_epochs: usize,
}

/// The per-stream model lifecycle of §4.3/§5, factored out of the live
/// worker so any driver — the standalone [`StreamWorker`] or the unified
/// [`FocusService`](crate::service::FocusService) — can run bootstrap →
/// specialize → periodic retrain over its own pipeline:
///
/// * [`observe`](Self::observe) maintains the ground-truth-labelled sample
///   (a small fraction of objects goes through the GT-CNN, charged to the
///   caller's meter under `"specialization"`);
/// * [`maybe_retrain`](Self::maybe_retrain) trains a specialized model once
///   the schedule and the sample allow, returning the new ingest CNN; the
///   caller seals its pipeline's epoch and swaps models (and, in the
///   service, bumps the query server's verdict-cache epoch).
#[derive(Debug)]
pub struct SpecializationLifecycle {
    stream_id: StreamId,
    config: StreamWorkerConfig,
    gt: GroundTruthCnn,
    labelled_sample: Vec<(ObjectObservation, ClassId)>,
    objects_gt_labelled: usize,
    retrains: usize,
    next_retrain_at_secs: f64,
}

impl SpecializationLifecycle {
    /// Creates the lifecycle for one stream; the first (re)train fires
    /// after `config.bootstrap_secs` of stream time.
    pub fn new(stream_id: StreamId, config: StreamWorkerConfig, gt: GroundTruthCnn) -> Self {
        Self {
            stream_id,
            next_retrain_at_secs: config.bootstrap_secs,
            config,
            gt,
            labelled_sample: Vec::new(),
            objects_gt_labelled: 0,
            retrains: 0,
        }
    }

    /// The ground-truth CNN labelling the retraining sample.
    pub fn ground_truth(&self) -> &GroundTruthCnn {
        &self.gt
    }

    /// Replaces the ground-truth CNN (the service propagates a GT retrain
    /// to every stream's labeller).
    pub fn set_ground_truth(&mut self, gt: GroundTruthCnn) {
        self.gt = gt;
    }

    /// Objects labelled by the ground-truth CNN so far.
    pub fn objects_gt_labelled(&self) -> usize {
        self.objects_gt_labelled
    }

    /// Class histogram of the ground-truth-labelled sample accumulated so
    /// far — the reference distribution the drift detector
    /// ([`crate::adapt::DriftDetector`]) compares live audit labels
    /// against: a configuration chosen from this sample is only as good as
    /// the sample's class mix, so drift is measured relative to it.
    pub fn sample_class_histogram(&self) -> std::collections::HashMap<ClassId, usize> {
        let mut hist = std::collections::HashMap::new();
        for (_, class) in &self.labelled_sample {
            *hist.entry(*class).or_insert(0) += 1;
        }
        hist
    }

    /// Number of times a specialized model was (re)trained.
    pub fn retrains(&self) -> usize {
        self.retrains
    }

    /// Feeds one object observation: sends it through the ground-truth CNN
    /// for the labelled sample when the configured fraction is due
    /// (charging `meter` under `"specialization"`). `objects_seen` is the
    /// running 1-based count of observed objects, as delivered by
    /// [`FramePipeline::push_frame_observed`]. Returns whether the object
    /// was labelled.
    pub fn observe(
        &mut self,
        obj: &ObjectObservation,
        objects_seen: usize,
        meter: &GpuMeter,
    ) -> bool {
        let labelling_due = (objects_seen as f64 * self.config.gt_label_fraction).floor()
            > self.objects_gt_labelled as f64;
        if !labelling_due {
            return false;
        }
        self.objects_gt_labelled += 1;
        meter.charge("specialization", self.gt.cost_per_inference());
        let label = self.gt.classify_top1(obj);
        self.labelled_sample.push((obj.clone(), label));
        true
    }

    /// Trains a specialized model when the retrain schedule has come due
    /// and the labelled sample is non-empty. The caller must seal its
    /// pipeline's epoch before switching to the returned model (feature
    /// spaces of different models are not comparable).
    pub fn maybe_retrain(&mut self, now_secs: f64) -> Option<IngestCnn> {
        if now_secs < self.next_retrain_at_secs {
            return None;
        }
        if self.labelled_sample.is_empty() {
            // Nothing to train on yet (the stream may have been quiet since
            // start-up); retry shortly instead of waiting a full interval.
            self.next_retrain_at_secs = now_secs + 10.0;
            return None;
        }
        self.next_retrain_at_secs = now_secs + self.config.retrain_interval_secs;
        let specialized = SpecializedCnn::train(
            &format!("stream-{}", self.stream_id.0),
            self.config.level,
            &self.labelled_sample,
            self.config.ls,
        )?;
        self.retrains += 1;
        Some(IngestCnn::specialized(specialized))
    }
}

/// A live ingestion worker for one video stream.
pub struct StreamWorker {
    stream_id: StreamId,
    model: IngestCnn,
    pipeline: FramePipeline,
    lifecycle: SpecializationLifecycle,
    meter: GpuMeter,
    /// Classifications already surfaced on `meter` (the pipeline accrues
    /// cost lock-free; the worker forwards per-frame charges so the meter
    /// stays live for external observers). The authoritative run total is
    /// [`IngestOutput::gpu_cost`], taken from the pipeline itself.
    inferences_metered: usize,
}

impl std::fmt::Debug for StreamWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamWorker")
            .field("stream_id", &self.stream_id)
            .field("model", &self.model.descriptor)
            .field("stats", &self.stats())
            .finish()
    }
}

impl StreamWorker {
    /// Creates a worker for one stream.
    pub fn new(
        stream_id: StreamId,
        fps: u32,
        config: StreamWorkerConfig,
        gt: GroundTruthCnn,
        meter: GpuMeter,
    ) -> Self {
        let model = IngestCnn::generic(config.bootstrap_model);
        let pipeline = FramePipeline::new(stream_id, fps, config.params);
        Self {
            stream_id,
            model,
            pipeline,
            lifecycle: SpecializationLifecycle::new(stream_id, config, gt),
            meter,
            inferences_metered: 0,
        }
    }

    /// The model currently used for ingestion.
    pub fn current_model(&self) -> &IngestCnn {
        &self.model
    }

    /// Activity counters.
    pub fn stats(&self) -> StreamWorkerStats {
        let pipeline = self.pipeline.stats();
        StreamWorkerStats {
            frames: pipeline.frames,
            frames_with_motion: pipeline.frames_with_motion,
            objects: pipeline.objects,
            objects_classified: pipeline.objects_classified,
            objects_gt_labelled: self.lifecycle.objects_gt_labelled(),
            retrains: self.lifecycle.retrains(),
            sealed_epochs: pipeline.epochs_sealed,
        }
    }

    /// The GPU meter charged by this worker (`ingest` and `specialization`
    /// phases).
    pub fn meter(&self) -> &GpuMeter {
        &self.meter
    }

    /// Pushes one live frame into the worker.
    pub fn push_frame(&mut self, frame: &Frame) {
        // Destructure so the observer closure can borrow the lifecycle
        // while the pipeline is borrowed mutably.
        let Self {
            pipeline,
            model,
            lifecycle,
            meter,
            inferences_metered,
            ..
        } = self;
        pipeline.push_frame_observed(frame, model.classifier.as_ref(), |obj, objects_seen| {
            // Maintain the labelled sample used for (re)training by sending
            // a small fraction of objects through the ground-truth CNN.
            lifecycle.observe(obj, objects_seen, meter);
        });
        // Surface the frame's ingest cost on the live meter: the number of
        // new classifications times the current model's per-inference cost
        // (the model cannot change mid-frame — retraining runs below).
        // Counting inferences keeps the charge exact, with no floating-point
        // subtraction of running totals.
        let classified = pipeline.stats().objects_classified;
        let new_inferences = classified - *inferences_metered;
        if new_inferences > 0 {
            meter.charge_inferences(
                "ingest",
                model.classifier.cost_per_inference(),
                new_inferences,
            );
            *inferences_metered = classified;
        }
        self.maybe_retrain(frame.timestamp_secs);
    }

    fn maybe_retrain(&mut self, now_secs: f64) {
        if let Some(model) = self.lifecycle.maybe_retrain(now_secs) {
            // Seal the clusters built with the previous model before
            // switching: feature vectors of different models are not
            // comparable.
            self.pipeline.seal_epoch();
            self.model = model;
        }
    }

    /// Seals the live epoch and returns the accumulated index and
    /// statistics, consuming the worker.
    pub fn finalize(self) -> IngestOutput {
        IngestOutput::from_pipeline(self.pipeline.finish(), self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_index::QueryFilter;
    use focus_video::profile::profile_by_name;
    use focus_video::VideoDataset;

    fn run_worker(duration_secs: f64, config: StreamWorkerConfig) -> (VideoDataset, IngestOutput) {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), duration_secs);
        let mut worker = StreamWorker::new(
            profile.stream_id,
            profile.fps,
            config,
            GroundTruthCnn::resnet152(),
            GpuMeter::new(),
        );
        for frame in &dataset.frames {
            worker.push_frame(frame);
        }
        (dataset, worker.finalize())
    }

    #[test]
    fn worker_specializes_after_bootstrap() {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 150.0);
        let mut worker = StreamWorker::new(
            profile.stream_id,
            profile.fps,
            StreamWorkerConfig {
                bootstrap_secs: 30.0,
                retrain_interval_secs: 60.0,
                ..StreamWorkerConfig::default()
            },
            GroundTruthCnn::resnet152(),
            GpuMeter::new(),
        );
        assert!(!worker.current_model().descriptor.is_specialized());
        for frame in &dataset.frames {
            worker.push_frame(frame);
        }
        assert!(worker.current_model().descriptor.is_specialized());
        let stats = worker.stats();
        assert!(stats.retrains >= 2, "retrains = {}", stats.retrains);
        assert!(stats.objects_gt_labelled > 0);
        assert!(stats.objects_gt_labelled < stats.objects / 10);
        assert!(worker.meter().phase("specialization").seconds() > 0.0);
    }

    #[test]
    fn finalized_index_covers_every_object_and_answers_queries() {
        let (dataset, output) = run_worker(120.0, StreamWorkerConfig::default());
        assert_eq!(output.objects_total, dataset.object_count());
        let indexed: usize = output.index.clusters().map(|c| c.len()).sum();
        assert_eq!(indexed, output.objects_total);
        // Querying the dominant class through the index finds clusters.
        let class = dataset.dominant_classes(1)[0];
        let lookup_class = output.model.effective_query_class(class);
        assert!(!output
            .index
            .lookup(lookup_class, &QueryFilter::any())
            .is_empty());
        // Every centroid observation was retained for query-time
        // verification.
        for record in output.index.clusters() {
            assert!(output.centroids.contains_key(&record.centroid_object));
        }
    }

    #[test]
    fn streaming_matches_batch_ingest_for_a_fixed_model() {
        // With retraining disabled (interval beyond the recording) and the
        // same generic model, the streaming worker and the batch engine run
        // the identical shared pipeline, so their indexes are byte-identical
        // and their GPU costs bitwise equal.
        let profile = profile_by_name("lausanne").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 90.0);
        let params = IngestParams {
            k: 10,
            ..IngestParams::default()
        };
        let batch =
            crate::ingest::IngestEngine::new(IngestCnn::generic(ModelSpec::cheap_cnn_1()), params)
                .ingest(&dataset, &GpuMeter::new());

        let mut worker = StreamWorker::new(
            profile.stream_id,
            profile.fps,
            StreamWorkerConfig {
                params,
                bootstrap_model: ModelSpec::cheap_cnn_1(),
                bootstrap_secs: 1e9,
                retrain_interval_secs: 1e9,
                gt_label_fraction: 0.0,
                ..StreamWorkerConfig::default()
            },
            GroundTruthCnn::resnet152(),
            GpuMeter::new(),
        );
        for frame in &dataset.frames {
            worker.push_frame(frame);
        }
        let streamed = worker.finalize();
        assert_eq!(streamed.objects_total, batch.objects_total);
        assert_eq!(streamed.objects_classified, batch.objects_classified);
        assert_eq!(streamed.index.len(), batch.index.len());
        assert_eq!(
            streamed.gpu_cost.seconds().to_bits(),
            batch.gpu_cost.seconds().to_bits()
        );
        assert_eq!(
            focus_index::persist::to_json(&streamed.index).unwrap(),
            focus_index::persist::to_json(&batch.index).unwrap()
        );
    }

    #[test]
    fn clusters_counter_matches_index() {
        let (_, output) = run_worker(60.0, StreamWorkerConfig::default());
        assert_eq!(output.clusters, output.index.len());
        assert!(output.clusters > 0);
    }
}
