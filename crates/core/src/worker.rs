//! Live, frame-by-frame stream ingestion: the per-stream worker process of
//! §5 of the paper, including bootstrap specialization and periodic
//! retraining (§4.3).
//!
//! [`IngestEngine`](crate::ingest::IngestEngine) processes an
//! already-recorded dataset in one call; [`StreamWorker`] is its streaming
//! counterpart for live cameras:
//!
//! 1. **Bootstrap** — the first `bootstrap_secs` of video are indexed with a
//!    generic compressed CNN while a ground-truth-labelled sample is
//!    collected.
//! 2. **Specialize** — once enough labelled objects exist, a per-stream
//!    specialized model is trained and becomes the ingest CNN.
//! 3. **Steady state** — frames are indexed with the specialized model;
//!    a small fraction of objects keeps being GT-labelled so the model can
//!    be **retrained periodically** (the paper retrains every few days; the
//!    interval here is configurable in stream-seconds).
//!
//! Each model epoch uses its own clusterer (feature spaces of different
//! models are not comparable), and sealed epochs are merged into one top-K
//! index, so queries spanning epochs behave exactly like queries over a
//! batch-ingested recording.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use focus_cluster::IncrementalClusterer;
use focus_cnn::specialize::SpecializationLevel;
use focus_cnn::{Classifier, GroundTruthCnn, ModelSpec, SpecializedCnn};
use focus_index::{ClusterKey, ClusterRecord, MemberRef, TopKIndex};
use focus_runtime::GpuMeter;
use focus_video::motion::PixelDiffOutcome;
use focus_video::{
    ClassId, Frame, MotionFilter, ObjectId, ObjectObservation, PixelDiff, StreamId,
};

use crate::ingest::{IngestCnn, IngestOutput, IngestParams};

/// Configuration of a live stream worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamWorkerConfig {
    /// Ingest parameters (K, clustering threshold, pixel differencing, ...).
    pub params: IngestParams,
    /// Generic compressed model used before the first specialization.
    pub bootstrap_model: ModelSpec,
    /// Seconds of video to observe before training the first specialized
    /// model.
    pub bootstrap_secs: f64,
    /// How often (in stream-seconds) the specialized model is retrained.
    pub retrain_interval_secs: f64,
    /// Fraction of objects sent to the ground-truth CNN to maintain the
    /// labelled sample used for (re)training.
    pub gt_label_fraction: f64,
    /// Specialization compression level.
    pub level: SpecializationLevel,
    /// Number of specialized classes.
    pub ls: usize,
}

impl Default for StreamWorkerConfig {
    fn default() -> Self {
        Self {
            params: IngestParams {
                k: 2,
                ..IngestParams::default()
            },
            bootstrap_model: ModelSpec::cheap_cnn_1(),
            bootstrap_secs: 60.0,
            retrain_interval_secs: 600.0,
            gt_label_fraction: 0.02,
            level: SpecializationLevel::Medium,
            ls: 20,
        }
    }
}

/// Counters describing the worker's activity so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamWorkerStats {
    /// Frames pushed to the worker.
    pub frames: usize,
    /// Frames with at least one moving object.
    pub frames_with_motion: usize,
    /// Object observations seen.
    pub objects: usize,
    /// Objects classified by the ingest CNN (after pixel differencing).
    pub objects_classified: usize,
    /// Objects additionally labelled by the ground-truth CNN for
    /// (re)training.
    pub objects_gt_labelled: usize,
    /// Number of times a specialized model was (re)trained.
    pub retrains: usize,
    /// Model epochs sealed into the index so far (excluding the live one).
    pub sealed_epochs: usize,
}

/// Per-epoch streaming state: the clusterer plus the classification caches
/// for the objects ingested during the epoch.
struct Epoch {
    clusterer: IncrementalClusterer,
    top_k: HashMap<ObjectId, Vec<ClassId>>,
    observations: HashMap<ObjectId, ObjectObservation>,
}

impl Epoch {
    fn new(params: &IngestParams) -> Self {
        Self {
            clusterer: IncrementalClusterer::new(
                params.cluster_threshold.max(f32::EPSILON),
                params.max_active_clusters,
            ),
            top_k: HashMap::new(),
            observations: HashMap::new(),
        }
    }
}

/// A live ingestion worker for one video stream.
pub struct StreamWorker {
    stream_id: StreamId,
    fps: u32,
    config: StreamWorkerConfig,
    gt: GroundTruthCnn,
    model: IngestCnn,
    epoch: Epoch,
    motion: MotionFilter,
    pixel_diff: PixelDiff,
    index: TopKIndex,
    centroids: HashMap<ObjectId, ObjectObservation>,
    labelled_sample: Vec<(ObjectObservation, ClassId)>,
    next_cluster_key: u64,
    next_retrain_at_secs: f64,
    specialized_once: bool,
    meter: GpuMeter,
    stats: StreamWorkerStats,
}

impl std::fmt::Debug for StreamWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamWorker")
            .field("stream_id", &self.stream_id)
            .field("model", &self.model.descriptor)
            .field("stats", &self.stats)
            .finish()
    }
}

impl StreamWorker {
    /// Creates a worker for one stream.
    pub fn new(
        stream_id: StreamId,
        fps: u32,
        config: StreamWorkerConfig,
        gt: GroundTruthCnn,
        meter: GpuMeter,
    ) -> Self {
        let model = IngestCnn::generic(config.bootstrap_model);
        let epoch = Epoch::new(&config.params);
        Self {
            stream_id,
            fps: fps.max(1),
            next_retrain_at_secs: config.bootstrap_secs,
            config,
            gt,
            model,
            epoch,
            motion: MotionFilter::new(),
            pixel_diff: PixelDiff::new(),
            index: TopKIndex::new(),
            centroids: HashMap::new(),
            labelled_sample: Vec::new(),
            next_cluster_key: 0,
            specialized_once: false,
            meter,
            stats: StreamWorkerStats::default(),
        }
    }

    /// The model currently used for ingestion.
    pub fn current_model(&self) -> &IngestCnn {
        &self.model
    }

    /// Activity counters.
    pub fn stats(&self) -> StreamWorkerStats {
        self.stats
    }

    /// The GPU meter charged by this worker (`ingest` and `specialization`
    /// phases).
    pub fn meter(&self) -> &GpuMeter {
        &self.meter
    }

    /// Pushes one live frame into the worker.
    pub fn push_frame(&mut self, frame: &Frame) {
        self.stats.frames += 1;
        if !self.motion.admit(frame) {
            self.maybe_retrain(frame.timestamp_secs);
            return;
        }
        self.stats.frames_with_motion += 1;
        for obj in &frame.objects {
            self.ingest_object(obj);
        }
        self.maybe_retrain(frame.timestamp_secs);
    }

    fn ingest_object(&mut self, obj: &ObjectObservation) {
        self.stats.objects += 1;
        let source = if self.config.params.pixel_differencing {
            match self.pixel_diff.check(obj) {
                PixelDiffOutcome::DuplicateOf(original)
                    if self.epoch.top_k.contains_key(&original) =>
                {
                    Some(original)
                }
                _ => None,
            }
        } else {
            None
        };
        let classifier = self.model.classifier.as_ref();
        let (classes, features) = match source {
            Some(original) => (
                self.epoch.top_k[&original].clone(),
                classifier.extract_features(&self.epoch.observations[&original]),
            ),
            None => {
                self.stats.objects_classified += 1;
                self.meter
                    .charge("ingest", classifier.cost_per_inference());
                let ranked = classifier.classify_top_k(obj, self.config.params.k);
                (ranked.classes(), classifier.extract_features(obj))
            }
        };
        self.epoch.top_k.insert(obj.object_id, classes);
        self.epoch.observations.insert(obj.object_id, obj.clone());
        if self.config.params.enable_clustering {
            self.epoch
                .clusterer
                .add(obj.object_id.0, obj.frame_id.0, &features.0);
        } else {
            // Without clustering, objects are sealed immediately as
            // singleton clusters.
            let record = self.record_for(
                obj.object_id,
                vec![MemberRef {
                    object: obj.object_id,
                    frame: obj.frame_id,
                }],
            );
            self.index.insert(record);
        }

        // Maintain the labelled sample used for (re)training by sending a
        // small fraction of objects through the ground-truth CNN.
        let labelling_due = (self.stats.objects as f64 * self.config.gt_label_fraction).floor()
            > self.stats.objects_gt_labelled as f64;
        if labelling_due {
            self.stats.objects_gt_labelled += 1;
            self.meter
                .charge("specialization", self.gt.cost_per_inference());
            let label = self.gt.classify_top1(obj);
            self.labelled_sample.push((obj.clone(), label));
        }
    }

    fn record_for(&mut self, representative: ObjectId, members: Vec<MemberRef>) -> ClusterRecord {
        let classes = self
            .epoch
            .top_k
            .get(&representative)
            .cloned()
            .unwrap_or_default();
        let start = members.iter().map(|m| m.frame.0).min().unwrap_or(0) as f64 / self.fps as f64;
        let end = members.iter().map(|m| m.frame.0).max().unwrap_or(0) as f64 / self.fps as f64;
        let centroid_frame = self.epoch.observations[&representative].frame_id;
        self.centroids.insert(
            representative,
            self.epoch.observations[&representative].clone(),
        );
        let key = ClusterKey::new(self.stream_id, self.next_cluster_key);
        self.next_cluster_key += 1;
        ClusterRecord {
            key,
            centroid_object: representative,
            centroid_frame,
            top_k_classes: classes,
            members,
            start_secs: start,
            end_secs: end,
        }
    }

    /// Seals the current epoch's clusters into the index and starts a new
    /// epoch (used when the model changes and at finalize).
    fn seal_epoch(&mut self) {
        let finished = std::mem::replace(&mut self.epoch, Epoch::new(&self.config.params));
        let Epoch {
            clusterer,
            top_k,
            observations,
        } = finished;
        // Re-attach the caches the record builder needs.
        self.epoch.top_k = top_k;
        self.epoch.observations = observations;
        if self.config.params.enable_clustering {
            let (clusters, _) = clusterer.finish();
            for cluster in clusters {
                let representative = ObjectId(cluster.representative().item);
                let members: Vec<MemberRef> = cluster
                    .members
                    .iter()
                    .map(|m| MemberRef {
                        object: ObjectId(m.item),
                        frame: focus_video::FrameId(m.tag),
                    })
                    .collect();
                let record = self.record_for(representative, members);
                self.index.insert(record);
            }
        }
        // The caches belong to the sealed epoch; the fresh epoch starts
        // empty.
        self.epoch.top_k = HashMap::new();
        self.epoch.observations = HashMap::new();
        self.stats.sealed_epochs += 1;
    }

    fn maybe_retrain(&mut self, now_secs: f64) {
        if now_secs < self.next_retrain_at_secs {
            return;
        }
        if self.labelled_sample.is_empty() {
            // Nothing to train on yet (the stream may have been quiet since
            // start-up); retry shortly instead of waiting a full interval.
            self.next_retrain_at_secs = now_secs + 10.0;
            return;
        }
        self.next_retrain_at_secs = now_secs + self.config.retrain_interval_secs;
        let Some(specialized) = SpecializedCnn::train(
            &format!("stream-{}", self.stream_id.0),
            self.config.level,
            &self.labelled_sample,
            self.config.ls,
        ) else {
            return;
        };
        // Seal the clusters built with the previous model before switching:
        // feature vectors of different models are not comparable.
        self.seal_epoch();
        self.model = IngestCnn::specialized(specialized);
        self.specialized_once = true;
        self.stats.retrains += 1;
    }

    /// Seals the live epoch and returns the accumulated index and
    /// statistics, consuming the worker.
    pub fn finalize(mut self) -> IngestOutput {
        self.seal_epoch();
        let motion_stats = self.motion.stats();
        let clusters = self.index.len();
        IngestOutput {
            index: self.index,
            centroids: self.centroids,
            model: self.model,
            params: self.config.params,
            gpu_cost: self.meter.phase("ingest"),
            frames_total: motion_stats.total_frames,
            frames_with_motion: motion_stats.frames_with_motion,
            objects_total: self.stats.objects,
            objects_classified: self.stats.objects_classified,
            clusters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_index::QueryFilter;
    use focus_video::profile::profile_by_name;
    use focus_video::VideoDataset;

    fn run_worker(duration_secs: f64, config: StreamWorkerConfig) -> (VideoDataset, IngestOutput) {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), duration_secs);
        let mut worker = StreamWorker::new(
            profile.stream_id,
            profile.fps,
            config,
            GroundTruthCnn::resnet152(),
            GpuMeter::new(),
        );
        for frame in &dataset.frames {
            worker.push_frame(frame);
        }
        (dataset, worker.finalize())
    }

    #[test]
    fn worker_specializes_after_bootstrap() {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 150.0);
        let mut worker = StreamWorker::new(
            profile.stream_id,
            profile.fps,
            StreamWorkerConfig {
                bootstrap_secs: 30.0,
                retrain_interval_secs: 60.0,
                ..StreamWorkerConfig::default()
            },
            GroundTruthCnn::resnet152(),
            GpuMeter::new(),
        );
        assert!(!worker.current_model().descriptor.is_specialized());
        for frame in &dataset.frames {
            worker.push_frame(frame);
        }
        assert!(worker.current_model().descriptor.is_specialized());
        let stats = worker.stats();
        assert!(stats.retrains >= 2, "retrains = {}", stats.retrains);
        assert!(stats.objects_gt_labelled > 0);
        assert!(stats.objects_gt_labelled < stats.objects / 10);
        assert!(worker.meter().phase("specialization").seconds() > 0.0);
    }

    #[test]
    fn finalized_index_covers_every_object_and_answers_queries() {
        let (dataset, output) = run_worker(120.0, StreamWorkerConfig::default());
        assert_eq!(output.objects_total, dataset.object_count());
        let indexed: usize = output.index.clusters().map(|c| c.len()).sum();
        assert_eq!(indexed, output.objects_total);
        // Querying the dominant class through the index finds clusters.
        let class = dataset.dominant_classes(1)[0];
        let lookup_class = output.model.effective_query_class(class);
        assert!(!output.index.lookup(lookup_class, &QueryFilter::any()).is_empty());
        // Every centroid observation was retained for query-time
        // verification.
        for record in output.index.clusters() {
            assert!(output.centroids.contains_key(&record.centroid_object));
        }
    }

    #[test]
    fn streaming_matches_batch_ingest_for_a_fixed_model() {
        // With retraining disabled (interval beyond the recording) and the
        // same generic model, the streaming worker and the batch engine
        // produce indexes of identical size and cost.
        let profile = profile_by_name("lausanne").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 90.0);
        let params = IngestParams {
            k: 10,
            ..IngestParams::default()
        };
        let batch = crate::ingest::IngestEngine::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            params,
        )
        .ingest(&dataset, &GpuMeter::new());

        let mut worker = StreamWorker::new(
            profile.stream_id,
            profile.fps,
            StreamWorkerConfig {
                params,
                bootstrap_model: ModelSpec::cheap_cnn_1(),
                bootstrap_secs: 1e9,
                retrain_interval_secs: 1e9,
                gt_label_fraction: 0.0,
                ..StreamWorkerConfig::default()
            },
            GroundTruthCnn::resnet152(),
            GpuMeter::new(),
        );
        for frame in &dataset.frames {
            worker.push_frame(frame);
        }
        let streamed = worker.finalize();
        assert_eq!(streamed.objects_total, batch.objects_total);
        assert_eq!(streamed.objects_classified, batch.objects_classified);
        assert_eq!(streamed.index.len(), batch.index.len());
        assert!((streamed.gpu_cost.seconds() - batch.gpu_cost.seconds()).abs() < 1e-9);
    }

    #[test]
    fn clusters_counter_matches_index() {
        let (_, output) = run_worker(60.0, StreamWorkerConfig::default());
        assert_eq!(output.clusters, output.index.len());
        assert!(output.clusters > 0);
    }
}
