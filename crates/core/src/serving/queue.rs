//! Weighted fair dequeue: per-tenant FIFO lanes drained by start-time
//! fair queueing.
//!
//! Each tenant owns a FIFO lane and a *virtual progress* counter; picking
//! a request from a lane advances its counter by `1 / weight`. The next
//! request always comes from the non-empty lane with the smallest counter
//! (ties break to the lowest tenant id), so over any sustained-overload
//! window tenants are served in proportion to their weights, within one
//! pick per lane — the classic start-time-fair-queueing bound.
//!
//! Two details keep the textbook algorithm honest in a live plane:
//!
//! * a lane that goes idle has its counter caught up to the queue's
//!   virtual now when it reactivates, so saved-up credit cannot let a
//!   returning tenant monopolize a batch;
//! * weights are clamped to [`MIN_WEIGHT`]: a tenant whose configured
//!   weight is zero (or collapses to zero for a moment) drains slowly
//!   instead of starving forever — its requests still expire against
//!   their own deadlines, not against the scheduler.

use std::collections::{BTreeMap, VecDeque};

use crate::query::QueryRequest;
use crate::serving::TenantId;

/// Smallest effective fair-share weight. A zero-weight tenant is clamped
/// here instead of being starved outright.
pub const MIN_WEIGHT: f64 = 1e-6;

/// One admitted request waiting for a batch slot.
#[derive(Debug, Clone)]
pub(crate) struct Queued {
    /// Ticket number handed back at submit time.
    pub ticket: u64,
    /// Owning tenant.
    pub tenant: TenantId,
    /// The query to serve.
    pub request: QueryRequest,
    /// Clock reading at admission.
    pub arrival_secs: f64,
    /// Absolute deadline: arrival plus the tenant's latency budget.
    pub deadline_secs: f64,
}

#[derive(Debug)]
struct TenantLane {
    queue: VecDeque<Queued>,
    /// Effective (clamped) fair-share weight, refreshed on every push.
    weight: f64,
    /// Virtual work consumed: advances by `1 / weight` per pick.
    progress: f64,
}

/// The multi-tenant queue behind the request plane (see the module docs).
#[derive(Debug, Default)]
pub(crate) struct FairQueue {
    lanes: BTreeMap<TenantId, TenantLane>,
    len: usize,
    /// Progress of the lane the most recent pick came from; reactivating
    /// lanes catch up to this.
    virtual_now: f64,
}

impl FairQueue {
    /// Requests currently queued across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no request is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `queued` to its tenant's lane. `weight` is the tenant's
    /// configured fair-share weight (clamped to [`MIN_WEIGHT`]).
    pub fn push(&mut self, queued: Queued, weight: f64) {
        let lane = self
            .lanes
            .entry(queued.tenant)
            .or_insert_with(|| TenantLane {
                queue: VecDeque::new(),
                weight: MIN_WEIGHT,
                progress: 0.0,
            });
        lane.weight = weight.max(MIN_WEIGHT);
        if lane.queue.is_empty() {
            // No banked credit for idle time: rejoin at the current
            // virtual instant.
            lane.progress = lane.progress.max(self.virtual_now);
        }
        lane.queue.push_back(queued);
        self.len += 1;
    }

    /// Removes and returns the fair-share pick: the front of the non-empty
    /// lane with the least virtual progress (ties to the lowest tenant
    /// id), charging that lane `1 / weight`.
    pub fn pop(&mut self) -> Option<Queued> {
        let (&tenant, _) = self
            .lanes
            .iter()
            .filter(|(_, lane)| !lane.queue.is_empty())
            .min_by(|(a_id, a), (b_id, b)| {
                a.progress
                    .partial_cmp(&b.progress)
                    .expect("progress is finite")
                    .then(a_id.cmp(b_id))
            })?;
        let lane = self.lanes.get_mut(&tenant).expect("chosen lane exists");
        let queued = lane.queue.pop_front().expect("chosen lane is non-empty");
        self.virtual_now = lane.progress;
        lane.progress += 1.0 / lane.weight;
        self.len -= 1;
        Some(queued)
    }

    /// Puts a popped request back at the front of its lane and refunds the
    /// pick's progress charge — the error path when a backend call fails
    /// after the batch was formed.
    pub fn requeue_front(&mut self, queued: Queued) {
        let lane = self
            .lanes
            .get_mut(&queued.tenant)
            .expect("requeued requests come from an existing lane");
        lane.progress -= 1.0 / lane.weight;
        lane.queue.push_front(queued);
        self.len += 1;
    }

    /// The earliest deadline among queued requests (`None` when empty).
    /// Within a lane arrivals are FIFO under one latency budget, so only
    /// lane fronts need inspecting.
    pub fn oldest_deadline_secs(&self) -> Option<f64> {
        self.lanes
            .values()
            .filter_map(|lane| lane.queue.front())
            .map(|q| q.deadline_secs)
            .min_by(|a, b| a.partial_cmp(b).expect("deadlines are finite"))
    }

    /// Queued requests of one tenant (test observability).
    #[cfg(test)]
    pub fn tenant_len(&self, tenant: TenantId) -> usize {
        self.lanes.get(&tenant).map_or(0, |lane| lane.queue.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_video::ClassId;

    fn queued(ticket: u64, tenant: u32) -> Queued {
        Queued {
            ticket,
            tenant: TenantId(tenant),
            request: QueryRequest::new(ClassId(1)),
            arrival_secs: 0.0,
            deadline_secs: 1.0,
        }
    }

    /// Fills lanes for the given `(tenant, weight)` pairs with `n`
    /// requests each, then drains `picks` requests and counts per tenant.
    fn drain_counts(tenants: &[(u32, f64)], n: usize, picks: usize) -> BTreeMap<u32, usize> {
        let mut queue = FairQueue::default();
        let mut ticket = 0;
        for &(tenant, weight) in tenants {
            for _ in 0..n {
                queue.push(queued(ticket, tenant), weight);
                ticket += 1;
            }
        }
        let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
        for _ in 0..picks {
            let q = queue.pop().expect("enough queued");
            *counts.entry(q.tenant.0).or_default() += 1;
        }
        counts
    }

    #[test]
    fn equal_weights_round_robin() {
        let counts = drain_counts(&[(1, 1.0), (2, 1.0), (3, 1.0)], 30, 30);
        assert_eq!(counts[&1], 10);
        assert_eq!(counts[&2], 10);
        assert_eq!(counts[&3], 10);
    }

    #[test]
    fn weighted_service_within_one_pick_of_the_ratio() {
        // Sustained overload: every lane always has work. A 3:1 weight
        // ratio must show up as a 3:1 service ratio, within one pick.
        for picks in [4, 8, 20, 40, 100] {
            let counts = drain_counts(&[(1, 3.0), (2, 1.0)], 200, picks);
            let expected_heavy = picks as f64 * 3.0 / 4.0;
            let got = *counts.get(&1).unwrap_or(&0) as f64;
            assert!(
                (got - expected_heavy).abs() <= 1.0,
                "picks={picks}: heavy tenant got {got}, expected ≈{expected_heavy}"
            );
        }
    }

    #[test]
    fn zero_weight_tenant_is_not_starved() {
        // The starvation regression: a tenant whose weight is zero at the
        // moment it queues must still be served eventually — the clamp
        // makes its lane progress finite instead of infinite.
        let mut queue = FairQueue::default();
        queue.push(queued(0, 7), 0.0);
        for t in 1..=50 {
            queue.push(queued(t, 1), 1.0);
        }
        let mut served_zero_weight = false;
        while let Some(q) = queue.pop() {
            if q.tenant.0 == 7 {
                served_zero_weight = true;
            }
        }
        assert!(served_zero_weight, "the zero-weight request drained");

        // And once served, its huge 1/MIN_WEIGHT charge keeps it from
        // being picked again ahead of weighted tenants.
        let counts = drain_counts(&[(7, 0.0), (1, 1.0)], 100, 50);
        assert!(counts[&1] >= 49, "{counts:?}");
    }

    #[test]
    fn idle_lane_rejoins_without_banked_credit() {
        let mut queue = FairQueue::default();
        // Tenant 1 does a lot of early work while tenant 2 is idle.
        for t in 0..20 {
            queue.push(queued(t, 1), 1.0);
        }
        for _ in 0..20 {
            assert_eq!(queue.pop().unwrap().tenant, TenantId(1));
        }
        // Tenant 2 shows up late: it must share from now on, not claim 20
        // catch-up picks.
        for t in 20..40 {
            queue.push(queued(t, 1), 1.0);
            queue.push(queued(t + 100, 2), 1.0);
        }
        let mut first_ten = Vec::new();
        for _ in 0..10 {
            first_ten.push(queue.pop().unwrap().tenant.0);
        }
        let late_share = first_ten.iter().filter(|&&t| t == 2).count();
        assert!(
            (4..=6).contains(&late_share),
            "late tenant shares instead of monopolizing: {first_ten:?}"
        );
    }

    #[test]
    fn fifo_order_within_a_tenant() {
        let mut queue = FairQueue::default();
        for t in 0..10 {
            queue.push(queued(t, 3), 2.0);
        }
        let mut tickets = Vec::new();
        while let Some(q) = queue.pop() {
            tickets.push(q.ticket);
        }
        assert_eq!(tickets, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn requeue_front_restores_order_and_progress() {
        let mut queue = FairQueue::default();
        for t in 0..3 {
            queue.push(queued(t, 1), 1.0);
            queue.push(queued(t + 10, 2), 1.0);
        }
        let first = queue.pop().unwrap();
        assert_eq!(first.ticket, 0);
        queue.requeue_front(first);
        assert_eq!(queue.len(), 6);
        // The same request comes back first and fairness is undisturbed:
        // a full drain alternates tenants exactly as if nothing happened.
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop().map(|q| q.ticket)).collect();
        assert_eq!(order, vec![0, 10, 1, 11, 2, 12]);
    }

    #[test]
    fn oldest_deadline_scans_lane_fronts() {
        let mut queue = FairQueue::default();
        assert_eq!(queue.oldest_deadline_secs(), None);
        let mut a = queued(0, 1);
        a.deadline_secs = 5.0;
        let mut b = queued(1, 2);
        b.deadline_secs = 3.0;
        let mut c = queued(2, 2);
        c.deadline_secs = 9.0;
        queue.push(a, 1.0);
        queue.push(b, 1.0);
        queue.push(c, 1.0);
        assert_eq!(queue.oldest_deadline_secs(), Some(3.0));
        // Popping tenant 1's request leaves tenant 2's front in charge;
        // popping that exposes the next deadline in its lane.
        assert_eq!(queue.pop().unwrap().tenant, TenantId(1));
        assert_eq!(queue.oldest_deadline_secs(), Some(3.0));
        assert_eq!(queue.pop().unwrap().deadline_secs, 3.0);
        assert_eq!(queue.oldest_deadline_secs(), Some(9.0));
        assert_eq!(queue.tenant_len(TenantId(2)), 1);
    }
}
