//! Per-tenant token buckets: the admission-control half of the request
//! plane.
//!
//! A bucket holds at most `burst` tokens and refills continuously at
//! `rate_per_sec`. Every admitted request spends one token; a submit that
//! finds less than one token is shed with the exact time until a full
//! token will have accrued, so clients can honour `retry_after` instead of
//! hammering the queue. All time comes from the caller (the plane reads
//! its [`Clock`](focus_runtime::Clock) once per operation), which is what
//! makes refill behaviour exactly `rate × dt` under a virtual clock.

/// A continuously refilling token bucket (see the module docs).
///
/// Invariants, pinned by this module's tests:
///
/// * the token level never goes negative and never exceeds `burst`;
/// * between two operations at `t0 < t1` with no grants, the level rises
///   by exactly `rate_per_sec × (t1 - t0)` (one multiplication and one
///   addition — bitwise reproducible for dyadic inputs) until the cap;
/// * a denied admission leaves the level untouched.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens: f64,
    burst: f64,
    rate_per_sec: f64,
    last_refill_secs: f64,
}

impl TokenBucket {
    /// A full bucket observed first at `now_secs`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not positive or `burst < 1` (a bucket
    /// that can never hold a whole token would shed everything).
    pub fn new(rate_per_sec: f64, burst: f64, now_secs: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "token rate must be positive"
        );
        assert!(
            burst >= 1.0 && burst.is_finite(),
            "burst must be at least 1"
        );
        Self {
            tokens: burst,
            burst,
            rate_per_sec,
            last_refill_secs: now_secs,
        }
    }

    /// Brings the level up to date: adds `rate × dt` tokens, capped at
    /// `burst`. A caller whose clock has not moved (or that replays the
    /// same instant) adds exactly zero.
    pub fn refill(&mut self, now_secs: f64) {
        let dt = now_secs - self.last_refill_secs;
        assert!(dt >= 0.0, "the admission clock is monotone");
        self.tokens = (self.tokens + self.rate_per_sec * dt).min(self.burst);
        self.last_refill_secs = now_secs;
    }

    /// Tries to spend one token at `now_secs`. On refusal, returns the
    /// seconds until a full token will have accrued — the `retry_after` an
    /// [`Overloaded`](crate::serving::Overloaded) response carries.
    pub fn try_admit(&mut self, now_secs: f64) -> Result<(), f64> {
        self.refill(now_secs);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            Err((1.0 - self.tokens) / self.rate_per_sec)
        }
    }

    /// The current token level (diagnostics and tests).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refill_is_exactly_rate_times_dt() {
        // Dyadic rate and instants: every refill is exact float
        // arithmetic, so the equalities below are bitwise.
        let mut bucket = TokenBucket::new(4.0, 8.0, 0.0);
        for _ in 0..8 {
            bucket.try_admit(0.0).unwrap();
        }
        assert_eq!(bucket.tokens(), 0.0);
        bucket.refill(0.25);
        assert_eq!(bucket.tokens().to_bits(), 1.0f64.to_bits(), "4/s × 0.25s");
        bucket.refill(0.75);
        assert_eq!(bucket.tokens().to_bits(), 3.0f64.to_bits(), "+4/s × 0.5s");
        // Refill past the cap clamps to burst.
        bucket.refill(100.0);
        assert_eq!(bucket.tokens(), 8.0);
    }

    #[test]
    fn tokens_never_go_negative() {
        let mut bucket = TokenBucket::new(2.0, 1.0, 0.0);
        bucket.try_admit(0.0).unwrap();
        assert_eq!(bucket.tokens(), 0.0);
        for i in 0..100 {
            // Denials at a standstill clock must not drive the level below
            // zero no matter how often they are retried.
            let retry = bucket.try_admit(0.0).unwrap_err();
            assert!(bucket.tokens() >= 0.0, "retry {i}");
            assert_eq!(retry, 0.5, "a whole token at 2/s is half a second away");
        }
    }

    #[test]
    fn denial_leaves_the_level_untouched() {
        let mut bucket = TokenBucket::new(1.0, 1.0, 0.0);
        bucket.try_admit(0.0).unwrap();
        bucket.refill(0.25);
        let before = bucket.tokens();
        let retry = bucket.try_admit(0.25).unwrap_err();
        assert_eq!(bucket.tokens().to_bits(), before.to_bits());
        assert_eq!(retry, 0.75, "0.75 tokens missing at 1/s");
    }

    #[test]
    fn retry_after_is_honest() {
        let mut bucket = TokenBucket::new(8.0, 2.0, 0.0);
        bucket.try_admit(0.0).unwrap();
        bucket.try_admit(0.0).unwrap();
        let retry = bucket.try_admit(0.0).unwrap_err();
        assert_eq!(retry, 0.125, "a whole token at 8/s");
        // Waiting less than retry_after still sheds…
        assert!(bucket.try_admit(retry / 2.0).is_err());
        // …and at exactly retry_after past the denial, the admit succeeds.
        bucket.try_admit(retry).unwrap();
    }

    #[test]
    fn burst_bounds_an_idle_tenant() {
        let mut bucket = TokenBucket::new(1000.0, 4.0, 0.0);
        // A long idle period accrues only `burst` tokens.
        bucket.refill(3600.0);
        assert_eq!(bucket.tokens(), 4.0);
        for _ in 0..4 {
            bucket.try_admit(3600.0).unwrap();
        }
        assert!(bucket.try_admit(3600.0).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = TokenBucket::new(0.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "burst")]
    fn sub_token_burst_panics() {
        let _ = TokenBucket::new(1.0, 0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn backwards_clock_panics() {
        let mut bucket = TokenBucket::new(1.0, 1.0, 5.0);
        bucket.refill(4.0);
    }
}
