//! The multi-tenant request plane in front of [`FocusService`]: admission
//! control, deadline-aware batching and tail-latency SLO accounting.
//!
//! [`FocusService::serve`](crate::service::FocusService::serve) is a
//! synchronous batch seam: hand it a slice of requests, get one outcome
//! per request. That is the right substrate, but a shared deployment needs
//! a front door that decides *which* requests reach a batch and *when* the
//! batch closes. [`RequestPlane`] is that door:
//!
//! * **Admission** ([`TokenBucket`]): each tenant owns a token bucket
//!   (`rate_per_sec`, `burst`). A submit that finds the bucket empty is
//!   shed immediately with [`Overloaded`] carrying an honest
//!   `retry_after_secs` — the plane never queues work it already knows it
//!   cannot afford.
//! * **Bounded queue + weighted fair order** (`FairQueue`): the
//!   global queue holds at most `queue_bound` requests; when it is full,
//!   submits are shed with [`ShedReason::QueueFull`] *without* spending
//!   the tenant's token. Dequeue order is start-time fair queueing over
//!   per-tenant FIFO lanes, so under overload tenants are served in
//!   proportion to their configured weights (within one pick), and a
//!   zero-weight tenant is clamped rather than starved.
//! * **Deadline-aware batching**: a batch closes when it reaches
//!   `batch_max_requests` *or* when the oldest queued request's latency
//!   budget says it must (`now ≥ deadline − dispatch_margin_secs`).
//!   Requests whose deadline has already passed at batch formation are
//!   answered [`Response::DeadlineExpired`] and never reach the backend —
//!   an expired request costs zero GT-CNN inferences.
//! * **SLO accounting** ([`ServingStats`]): log-bucketed, exactly
//!   mergeable latency histograms ([`LatencyHistogram`]) per plane and per
//!   tenant, plus admitted/shed/expired counters, folded into
//!   [`ServiceStats`](crate::service::ServiceStats) as the `serving`
//!   field.
//!
//! All time comes from a [`Clock`](focus_runtime::Clock) capability; under
//! a [`VirtualClock`](focus_runtime::VirtualClock) every admission,
//! shedding and batching decision is deterministic, which is what lets
//! `tests/serving_plane.rs` prove byte-identity between plane-served and
//! directly-served answers over arbitrary arrival schedules. See
//! `docs/serving.md` for the request lifecycle and tenant configuration
//! guide.
//!
//! [`FocusService`]: crate::service::FocusService

mod bucket;
mod plane;
mod queue;

use serde::{Deserialize, Serialize};

use focus_runtime::LatencyHistogram;

pub use bucket::TokenBucket;
pub use plane::{AnytimeCompleted, AnytimeResponse, Completed, RequestPlane, Ticket};
pub use queue::MIN_WEIGHT;

use crate::query::QueryOutcome;

/// Identifies a tenant of the request plane.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TenantId(pub u32);

/// Per-tenant admission and SLO knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantConfig {
    /// Fair-share weight against other tenants under overload. Clamped to
    /// [`MIN_WEIGHT`]; a zero weight means "lowest priority", not "never
    /// served".
    pub weight: f64,
    /// Token-bucket refill rate: sustained admitted requests per second.
    pub rate_per_sec: f64,
    /// Token-bucket capacity: how large a burst is admitted at once.
    pub burst: f64,
    /// Per-request latency budget. A request admitted at `t` must be
    /// answered by `t + deadline_secs`; past that it expires unserved.
    pub deadline_secs: f64,
}

impl Default for TenantConfig {
    fn default() -> Self {
        Self {
            weight: 1.0,
            rate_per_sec: 64.0,
            burst: 16.0,
            deadline_secs: 1.0,
        }
    }
}

/// Plane-wide configuration: the queue bound, batch-closing rule and the
/// tenant table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Global bound on queued (admitted, not yet dispatched) requests.
    /// Submits beyond it are shed with [`ShedReason::QueueFull`].
    pub queue_bound: usize,
    /// A batch closes as soon as it can take this many requests.
    pub batch_max_requests: usize,
    /// A batch also closes when the oldest queued request is within this
    /// margin of its deadline — the time reserved for the backend call.
    pub dispatch_margin_secs: f64,
    /// Configuration applied to tenants absent from [`tenants`].
    ///
    /// [`tenants`]: ServingConfig::tenants
    pub default_tenant: TenantConfig,
    /// Per-tenant overrides.
    pub tenants: Vec<(TenantId, TenantConfig)>,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            queue_bound: 256,
            batch_max_requests: 16,
            dispatch_margin_secs: 0.05,
            default_tenant: TenantConfig::default(),
            tenants: Vec::new(),
        }
    }
}

impl ServingConfig {
    /// The configuration governing `tenant`.
    pub fn tenant(&self, tenant: TenantId) -> &TenantConfig {
        self.tenants
            .iter()
            .find(|(id, _)| *id == tenant)
            .map(|(_, cfg)| cfg)
            .unwrap_or(&self.default_tenant)
    }

    /// Replaces or inserts the override for `tenant` (builder-style).
    pub fn with_tenant(mut self, tenant: TenantId, config: TenantConfig) -> Self {
        if let Some(slot) = self.tenants.iter_mut().find(|(id, _)| *id == tenant) {
            slot.1 = config;
        } else {
            self.tenants.push((tenant, config));
        }
        self
    }
}

/// Why a submit was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The tenant's token bucket had less than one token.
    RateLimited,
    /// The global queue was at its bound (the tenant's token was *not*
    /// spent).
    QueueFull,
}

/// Explicit backpressure: the plane refused a submit and tells the client
/// when trying again is worthwhile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Overloaded {
    /// Seconds until the shedding condition clears, assuming no
    /// competing traffic: a full token accrues ([`ShedReason::RateLimited`])
    /// or the next batch close drains the queue ([`ShedReason::QueueFull`]).
    pub retry_after_secs: f64,
    /// Which admission gate refused.
    pub reason: ShedReason,
}

/// The terminal answer of an admitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The backend served the request.
    Answered(QueryOutcome),
    /// The request's deadline passed while it was queued; it was dropped
    /// at batch formation without consuming any GT-CNN inference.
    DeadlineExpired,
}

/// Per-tenant slice of [`ServingStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TenantServingStats {
    /// The tenant these counters belong to.
    pub tenant: TenantId,
    /// Requests offered via `submit`.
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Submits shed by the tenant's token bucket.
    pub shed_rate_limited: u64,
    /// Submits shed by the global queue bound.
    pub shed_queue_full: u64,
    /// Requests answered by the backend.
    pub answered: u64,
    /// Requests dropped unserved because their deadline passed in queue.
    pub expired: u64,
    /// Answered requests whose completion beat their deadline.
    pub deadline_misses: u64,
    /// Submit-to-answer latency of answered requests.
    pub latency: LatencyHistogram,
}

/// SLO snapshot of the request plane, embedded in
/// [`ServiceStats`](crate::service::ServiceStats) as `serving`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ServingStats {
    /// Requests offered across all tenants.
    pub submitted: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Submits shed by token buckets.
    pub shed_rate_limited: u64,
    /// Submits shed by the global queue bound.
    pub shed_queue_full: u64,
    /// Requests answered by the backend.
    pub answered: u64,
    /// Requests dropped unserved (deadline passed while queued).
    pub expired: u64,
    /// Answered requests that finished after their deadline. Zero under a
    /// virtual clock that only advances between plane operations.
    pub deadline_misses: u64,
    /// Batches dispatched to the backend.
    pub batches: u64,
    /// High-water mark of the queue length (never exceeds the bound).
    pub max_queue_len: u64,
    /// Submit-to-answer latency across all tenants (log-bucketed,
    /// exactly mergeable).
    pub latency: LatencyHistogram,
    /// Submit-to-first-result latency of anytime requests: the GPU time
    /// accumulated up to the first round that surfaced a new distinct
    /// result (queue wait included). Empty unless anytime requests were
    /// dispatched through the plane.
    #[serde(default)]
    pub first_result_latency: LatencyHistogram,
    /// Per-tenant breakdown, ordered by tenant id.
    pub per_tenant: Vec<TenantServingStats>,
}

impl ServingStats {
    /// Requests shed for any reason.
    pub fn shed(&self) -> u64 {
        self.shed_rate_limited + self.shed_queue_full
    }

    /// Fraction of submits that were shed (0.0 before any submit).
    pub fn shed_fraction(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed() as f64 / self.submitted as f64
        }
    }

    /// The per-tenant slice for `tenant`, if it ever submitted.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantServingStats> {
        self.per_tenant.iter().find(|t| t.tenant == tenant)
    }

    pub(crate) fn tenant_mut(&mut self, tenant: TenantId) -> &mut TenantServingStats {
        if let Some(pos) = self.per_tenant.iter().position(|t| t.tenant == tenant) {
            return &mut self.per_tenant[pos];
        }
        let pos = self
            .per_tenant
            .iter()
            .position(|t| t.tenant > tenant)
            .unwrap_or(self.per_tenant.len());
        self.per_tenant.insert(
            pos,
            TenantServingStats {
                tenant,
                ..TenantServingStats::default()
            },
        );
        &mut self.per_tenant[pos]
    }

    /// Conservation check used by tests: every submitted request is
    /// accounted for exactly once across admitted/shed, and every admitted
    /// request across answered/expired/still-queued.
    pub fn conserves(&self, queued_now: u64) -> bool {
        self.submitted == self.admitted + self.shed()
            && self.admitted == self.answered + self.expired + queued_now
    }
}

impl ServingStats {
    /// Folds another snapshot into this one — counters add, histograms
    /// merge exactly, per-tenant slices align by tenant id. Used to
    /// aggregate stats across planes (e.g. replicas) or windows.
    pub fn merge(&mut self, other: &ServingStats) {
        self.submitted += other.submitted;
        self.admitted += other.admitted;
        self.shed_rate_limited += other.shed_rate_limited;
        self.shed_queue_full += other.shed_queue_full;
        self.answered += other.answered;
        self.expired += other.expired;
        self.deadline_misses += other.deadline_misses;
        self.batches += other.batches;
        self.max_queue_len = self.max_queue_len.max(other.max_queue_len);
        self.latency.merge(&other.latency);
        self.first_result_latency.merge(&other.first_result_latency);
        for theirs in &other.per_tenant {
            let mine = self.tenant_mut(theirs.tenant);
            mine.submitted += theirs.submitted;
            mine.admitted += theirs.admitted;
            mine.shed_rate_limited += theirs.shed_rate_limited;
            mine.shed_queue_full += theirs.shed_queue_full;
            mine.answered += theirs.answered;
            mine.expired += theirs.expired;
            mine.deadline_misses += theirs.deadline_misses;
            mine.latency.merge(&theirs.latency);
        }
    }
}

pub(crate) use queue::{FairQueue, Queued};
