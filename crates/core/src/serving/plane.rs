//! [`RequestPlane`]: the front door that turns individual tenant submits
//! into deadline-respecting [`FocusService::serve`] batches.
//!
//! [`FocusService::serve`]: crate::service::FocusService::serve

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use focus_index::SegmentError;
use focus_runtime::Clock;

use crate::query::anytime::{AnytimeOutcome, AnytimePartial};
use crate::query::{QueryOutcome, QueryRequest};
use crate::service::{FocusService, ServiceStats};
use crate::serving::{
    FairQueue, Overloaded, Queued, Response, ServingConfig, ServingStats, ShedReason, TenantId,
    TokenBucket,
};

/// Handle for one admitted request, matched against
/// [`Completed::ticket`] when the answer comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(pub u64);

/// One finished request: either the backend's answer or an expiry notice.
#[derive(Debug, Clone, PartialEq)]
pub struct Completed {
    /// The ticket handed back by [`RequestPlane::submit`].
    pub ticket: Ticket,
    /// The tenant that submitted the request.
    pub tenant: TenantId,
    /// The answer (or the expiry).
    pub response: Response,
    /// Submit-to-completion time as seen by the plane's clock.
    pub latency_secs: f64,
    /// Whether completion happened after the request's deadline. Always
    /// `true` for [`Response::DeadlineExpired`]; for answered requests it
    /// can only be `true` when the clock advanced during the backend call.
    pub deadline_missed: bool,
}

/// The terminal answer of an admitted anytime request.
#[derive(Debug, Clone, PartialEq)]
pub enum AnytimeResponse {
    /// The backend ran the anytime loop; the outcome carries the partial
    /// trail and the termination reason.
    Answered(AnytimeOutcome),
    /// The request's deadline passed while it was queued; no round ran.
    DeadlineExpired,
}

/// One finished anytime request, with first-result timing alongside the
/// terminal answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AnytimeCompleted {
    /// The ticket handed back by [`RequestPlane::submit`].
    pub ticket: Ticket,
    /// The tenant that submitted the request.
    pub tenant: TenantId,
    /// The answer (or the expiry).
    pub response: AnytimeResponse,
    /// Submit-to-completion time as seen by the plane's clock.
    pub latency_secs: f64,
    /// Queue wait plus GPU time up to the end of the first round that
    /// surfaced a new distinct result; `f64::INFINITY` when no round did
    /// (nothing matched, or the request expired). Finite values land in
    /// [`ServingStats::first_result_latency`].
    pub first_result_latency_secs: f64,
    /// Whether completion happened after the request's deadline.
    pub deadline_missed: bool,
}

/// Everything behind one lock: queue order, bucket levels, ticket counter
/// and the stats they feed. Kept together so a submit that reads the queue
/// length and a dispatch that drains it can never interleave inconsistently.
#[derive(Debug)]
struct PlaneState {
    queue: FairQueue,
    buckets: BTreeMap<TenantId, TokenBucket>,
    next_ticket: u64,
    stats: ServingStats,
}

/// The multi-tenant request plane (see the [module docs](crate::serving)).
///
/// Shared by reference from any number of submitting threads; batch
/// dispatch calls the backend *outside* the plane lock, so slow GT-CNN
/// work never blocks admission.
pub struct RequestPlane {
    config: ServingConfig,
    clock: Arc<dyn Clock>,
    inner: Mutex<PlaneState>,
}

impl RequestPlane {
    /// A plane reading time from `clock`.
    ///
    /// # Panics
    ///
    /// Panics if the queue bound or batch size is zero, or the dispatch
    /// margin is negative.
    pub fn new(config: ServingConfig, clock: Arc<dyn Clock>) -> Self {
        assert!(config.queue_bound > 0, "queue bound must be positive");
        assert!(config.batch_max_requests > 0, "batch size must be positive");
        assert!(
            config.dispatch_margin_secs >= 0.0 && config.dispatch_margin_secs.is_finite(),
            "dispatch margin must be non-negative"
        );
        Self {
            config,
            clock,
            inner: Mutex::new(PlaneState {
                queue: FairQueue::default(),
                buckets: BTreeMap::new(),
                next_ticket: 0,
                stats: ServingStats::default(),
            }),
        }
    }

    /// The plane's configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Offers one request on behalf of `tenant`.
    ///
    /// Admission runs two gates in order: the tenant's token bucket
    /// (sheds [`ShedReason::RateLimited`]), then the global queue bound
    /// (sheds [`ShedReason::QueueFull`] *without* spending the token a
    /// rate-check would have granted). An admitted request is stamped with
    /// `now + deadline_secs` and queued; its answer arrives from a later
    /// [`dispatch`](Self::dispatch) call, matched by the returned ticket.
    pub fn submit(&self, tenant: TenantId, request: QueryRequest) -> Result<Ticket, Overloaded> {
        let now = self.clock.now_secs();
        let tenant_cfg = self.config.tenant(tenant).clone();
        let mut state = self.inner.lock();
        state.stats.submitted += 1;
        state.stats.tenant_mut(tenant).submitted += 1;

        let tokens = {
            let bucket = state.buckets.entry(tenant).or_insert_with(|| {
                TokenBucket::new(tenant_cfg.rate_per_sec, tenant_cfg.burst, now)
            });
            bucket.refill(now);
            bucket.tokens()
        };
        if tokens < 1.0 {
            let retry_after_secs = (1.0 - tokens) / tenant_cfg.rate_per_sec;
            state.stats.shed_rate_limited += 1;
            state.stats.tenant_mut(tenant).shed_rate_limited += 1;
            return Err(Overloaded {
                retry_after_secs,
                reason: ShedReason::RateLimited,
            });
        }
        if state.queue.len() >= self.config.queue_bound {
            // Queue-full sheds do not spend the token: the tenant did
            // nothing wrong, the plane is the bottleneck. Retry when the
            // batch now forming will have drained.
            let next_close = state
                .queue
                .oldest_deadline_secs()
                .map(|d| d - self.config.dispatch_margin_secs)
                .unwrap_or(now);
            let retry_after_secs = (next_close - now).max(self.config.dispatch_margin_secs);
            state.stats.shed_queue_full += 1;
            state.stats.tenant_mut(tenant).shed_queue_full += 1;
            return Err(Overloaded {
                retry_after_secs,
                reason: ShedReason::QueueFull,
            });
        }
        state
            .buckets
            .get_mut(&tenant)
            .expect("bucket created above")
            .try_admit(now)
            .expect("a bucket holding a whole token admits");

        let ticket = Ticket(state.next_ticket);
        state.next_ticket += 1;
        state.queue.push(
            Queued {
                ticket: ticket.0,
                tenant,
                request,
                arrival_secs: now,
                deadline_secs: now + tenant_cfg.deadline_secs,
            },
            tenant_cfg.weight,
        );
        state.stats.admitted += 1;
        state.stats.tenant_mut(tenant).admitted += 1;
        let depth = state.queue.len() as u64;
        state.stats.max_queue_len = state.stats.max_queue_len.max(depth);
        Ok(ticket)
    }

    /// Requests admitted but not yet dispatched.
    pub fn queue_len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether a batch should close right now: the queue can fill one, or
    /// the oldest queued request's budget leaves only the dispatch margin.
    pub fn batch_ready(&self) -> bool {
        let now = self.clock.now_secs();
        let state = self.inner.lock();
        if state.queue.is_empty() {
            return false;
        }
        state.queue.len() >= self.config.batch_max_requests
            || state
                .queue
                .oldest_deadline_secs()
                .is_some_and(|d| now >= d - self.config.dispatch_margin_secs)
    }

    /// When the batch now forming will close by deadline pressure alone
    /// (`None` when nothing is queued). A driver loop sleeps (or a virtual
    /// clock advances) to `min(next_dispatch_at, next arrival)`.
    pub fn next_dispatch_at(&self) -> Option<f64> {
        let state = self.inner.lock();
        if state.queue.len() >= self.config.batch_max_requests {
            return Some(self.clock.now_secs());
        }
        state
            .queue
            .oldest_deadline_secs()
            .map(|d| d - self.config.dispatch_margin_secs)
    }

    /// Closes one batch and serves it through `serve`, returning every
    /// request completed by the call (answers and expiries, in fair-queue
    /// order). Returns an empty vec when nothing is due.
    ///
    /// Batch formation pops up to `batch_max_requests` requests; any whose
    /// deadline has already passed complete as
    /// [`Response::DeadlineExpired`] without occupying a batch slot or
    /// touching the backend. The backend runs *outside* the plane lock; if
    /// it fails, the popped requests are restored to the queue front (in
    /// order) and the error is returned.
    pub fn dispatch_with<F>(&self, serve: F) -> Result<Vec<Completed>, SegmentError>
    where
        F: FnOnce(&[QueryRequest]) -> Result<Vec<QueryOutcome>, SegmentError>,
    {
        let now = self.clock.now_secs();
        let mut completed = Vec::new();
        let mut batch: Vec<Queued> = Vec::new();
        {
            let mut state = self.inner.lock();
            if state.queue.is_empty() {
                return Ok(completed);
            }
            while batch.len() < self.config.batch_max_requests {
                let Some(queued) = state.queue.pop() else {
                    break;
                };
                if now > queued.deadline_secs {
                    state.stats.expired += 1;
                    let tenant = state.stats.tenant_mut(queued.tenant);
                    tenant.expired += 1;
                    completed.push(Completed {
                        ticket: Ticket(queued.ticket),
                        tenant: queued.tenant,
                        response: Response::DeadlineExpired,
                        latency_secs: now - queued.arrival_secs,
                        deadline_missed: true,
                    });
                } else {
                    batch.push(queued);
                }
            }
            if batch.is_empty() {
                return Ok(completed);
            }
            state.stats.batches += 1;
        }

        let requests: Vec<QueryRequest> = batch.iter().map(|q| q.request.clone()).collect();
        let outcomes = match serve(&requests) {
            Ok(outcomes) => outcomes,
            Err(err) => {
                let mut state = self.inner.lock();
                state.stats.batches -= 1;
                for queued in batch.into_iter().rev() {
                    state.queue.requeue_front(queued);
                }
                return Err(err);
            }
        };
        debug_assert_eq!(outcomes.len(), batch.len(), "serve answers 1:1 in order");

        let finished = self.clock.now_secs();
        let mut state = self.inner.lock();
        for (queued, outcome) in batch.into_iter().zip(outcomes) {
            let latency_secs = finished - queued.arrival_secs;
            let deadline_missed = finished > queued.deadline_secs;
            state.stats.answered += 1;
            state.stats.deadline_misses += u64::from(deadline_missed);
            state.stats.latency.record(latency_secs);
            let tenant = state.stats.tenant_mut(queued.tenant);
            tenant.answered += 1;
            tenant.deadline_misses += u64::from(deadline_missed);
            tenant.latency.record(latency_secs);
            completed.push(Completed {
                ticket: Ticket(queued.ticket),
                tenant: queued.tenant,
                response: Response::Answered(outcome),
                latency_secs,
                deadline_missed,
            });
        }
        Ok(completed)
    }

    /// [`dispatch_with`](Self::dispatch_with) against a live service's
    /// [`serve`](FocusService::serve) seam.
    pub fn dispatch(&self, service: &FocusService) -> Result<Vec<Completed>, SegmentError> {
        self.dispatch_with(|batch| service.serve(batch))
    }

    /// Closes one batch and serves each request through the anytime loop,
    /// streaming every round's [`AnytimePartial`] to `on_partial` (tagged
    /// with the request's ticket) as it is produced, and returning one
    /// [`AnytimeCompleted`] per finished request.
    ///
    /// Admission is unchanged: an anytime request spent exactly one token
    /// at [`submit`](Self::submit) time, and its partials cost the tenant
    /// nothing more — the admission fee covers the whole stream. Batch
    /// formation and expiry follow [`dispatch_with`](Self::dispatch_with);
    /// requests are then served *sequentially* outside the plane lock
    /// (the anytime loop batches internally per round). If the backend
    /// fails, the failing request and every not-yet-served one are
    /// restored to the queue front; requests already served stay
    /// completed (their partials were already streamed).
    ///
    /// Each answered request whose rounds surfaced at least one result
    /// records queue-wait-plus-GPU-time-to-that-round into
    /// [`ServingStats::first_result_latency`].
    pub fn dispatch_anytime_with<F>(
        &self,
        mut serve: F,
        mut on_partial: impl FnMut(Ticket, &AnytimePartial),
    ) -> Result<Vec<AnytimeCompleted>, SegmentError>
    where
        F: FnMut(
            &QueryRequest,
            &mut dyn FnMut(&AnytimePartial),
        ) -> Result<AnytimeOutcome, SegmentError>,
    {
        let now = self.clock.now_secs();
        let mut completed = Vec::new();
        let mut batch: Vec<Queued> = Vec::new();
        {
            let mut state = self.inner.lock();
            if state.queue.is_empty() {
                return Ok(completed);
            }
            while batch.len() < self.config.batch_max_requests {
                let Some(queued) = state.queue.pop() else {
                    break;
                };
                if now > queued.deadline_secs {
                    state.stats.expired += 1;
                    let tenant = state.stats.tenant_mut(queued.tenant);
                    tenant.expired += 1;
                    completed.push(AnytimeCompleted {
                        ticket: Ticket(queued.ticket),
                        tenant: queued.tenant,
                        response: AnytimeResponse::DeadlineExpired,
                        latency_secs: now - queued.arrival_secs,
                        first_result_latency_secs: f64::INFINITY,
                        deadline_missed: true,
                    });
                } else {
                    batch.push(queued);
                }
            }
            if batch.is_empty() {
                return Ok(completed);
            }
            state.stats.batches += 1;
        }

        let mut answered: Vec<(Queued, AnytimeOutcome, f64)> = Vec::new();
        let mut iter = batch.into_iter();
        while let Some(queued) = iter.next() {
            let ticket = Ticket(queued.ticket);
            // GPU time accumulated up to (and including) the first round
            // that surfaced a new distinct result.
            let mut gpu_latency = 0.0f64;
            let mut to_first_result = f64::INFINITY;
            let result = serve(&queued.request, &mut |partial: &AnytimePartial| {
                gpu_latency += partial.latency_secs;
                if !partial.new_results.is_empty() && to_first_result.is_infinite() {
                    to_first_result = gpu_latency;
                }
                on_partial(ticket, partial);
            });
            match result {
                Ok(outcome) => answered.push((queued, outcome, to_first_result)),
                Err(err) => {
                    // Restore the failing request ahead of the untouched
                    // tail; the already-served prefix stays completed.
                    let mut state = self.inner.lock();
                    if answered.is_empty() {
                        state.stats.batches -= 1;
                    }
                    let mut restore = vec![queued];
                    restore.extend(iter);
                    for q in restore.into_iter().rev() {
                        state.queue.requeue_front(q);
                    }
                    return Err(err);
                }
            }
        }

        let finished = self.clock.now_secs();
        let mut state = self.inner.lock();
        for (queued, outcome, to_first) in answered {
            let latency_secs = finished - queued.arrival_secs;
            let deadline_missed = finished > queued.deadline_secs;
            let queue_wait = now - queued.arrival_secs;
            let first_result_latency_secs = if to_first.is_finite() {
                let total = queue_wait + to_first;
                state.stats.first_result_latency.record(total);
                total
            } else {
                f64::INFINITY
            };
            state.stats.answered += 1;
            state.stats.deadline_misses += u64::from(deadline_missed);
            state.stats.latency.record(latency_secs);
            let tenant = state.stats.tenant_mut(queued.tenant);
            tenant.answered += 1;
            tenant.deadline_misses += u64::from(deadline_missed);
            tenant.latency.record(latency_secs);
            completed.push(AnytimeCompleted {
                ticket: Ticket(queued.ticket),
                tenant: queued.tenant,
                response: AnytimeResponse::Answered(outcome),
                latency_secs,
                first_result_latency_secs,
                deadline_missed,
            });
        }
        Ok(completed)
    }

    /// [`dispatch_anytime_with`](Self::dispatch_anytime_with) against a
    /// live service's [`serve_anytime_with`](FocusService::serve_anytime_with)
    /// seam.
    pub fn dispatch_anytime(
        &self,
        service: &FocusService,
        on_partial: impl FnMut(Ticket, &AnytimePartial),
    ) -> Result<Vec<AnytimeCompleted>, SegmentError> {
        self.dispatch_anytime_with(
            |request, stream| service.serve_anytime_with(request, stream),
            on_partial,
        )
    }

    /// Drains the queue completely (repeated dispatches), regardless of
    /// the batch-closing rule — shutdown and test teardown.
    pub fn flush_with<F>(&self, mut serve: F) -> Result<Vec<Completed>, SegmentError>
    where
        F: FnMut(&[QueryRequest]) -> Result<Vec<QueryOutcome>, SegmentError>,
    {
        let mut all = Vec::new();
        while self.queue_len() > 0 {
            all.extend(self.dispatch_with(&mut serve)?);
        }
        Ok(all)
    }

    /// Snapshot of the plane's SLO counters and histograms.
    pub fn serving_stats(&self) -> ServingStats {
        self.inner.lock().stats.clone()
    }

    /// The service's unified stats with this plane's [`ServingStats`]
    /// folded in as [`ServiceStats::serving`].
    pub fn stats(&self, service: &FocusService) -> ServiceStats {
        let mut stats = service.stats();
        stats.serving = self.serving_stats();
        stats
    }
}

impl std::fmt::Debug for RequestPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.lock();
        f.debug_struct("RequestPlane")
            .field("config", &self.config)
            .field("queued", &state.queue.len())
            .field("stats", &state.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::TenantConfig;
    use focus_runtime::VirtualClock;
    use focus_video::ClassId;

    fn plane(config: ServingConfig) -> (RequestPlane, VirtualClock) {
        let clock = VirtualClock::new();
        let plane = RequestPlane::new(config, Arc::new(clock.clone()));
        (plane, clock)
    }

    fn request() -> QueryRequest {
        QueryRequest::new(ClassId(1))
    }

    /// A backend that answers with empty outcomes and counts invocations.
    fn echo(
        calls: &std::cell::Cell<usize>,
    ) -> impl FnMut(&[QueryRequest]) -> Result<Vec<QueryOutcome>, SegmentError> + '_ {
        move |batch| {
            calls.set(calls.get() + 1);
            Ok(batch
                .iter()
                .map(|req| QueryOutcome {
                    class: req.class,
                    frames: Vec::new(),
                    objects: Vec::new(),
                    matched_clusters: 0,
                    confirmed_clusters: 0,
                    centroid_inferences: 0,
                    gpu_cost: focus_cnn::GpuCost::default(),
                    latency_secs: 0.0,
                })
                .collect())
        }
    }

    #[test]
    fn rate_limit_sheds_with_honest_retry_after() {
        let config = ServingConfig {
            default_tenant: TenantConfig {
                rate_per_sec: 2.0,
                burst: 1.0,
                ..TenantConfig::default()
            },
            ..ServingConfig::default()
        };
        let (plane, clock) = plane(config);
        let tenant = TenantId(0);
        plane.submit(tenant, request()).unwrap();
        let shed = plane.submit(tenant, request()).unwrap_err();
        assert_eq!(shed.reason, ShedReason::RateLimited);
        assert_eq!(shed.retry_after_secs, 0.5, "a whole token at 2/s");
        // Waiting exactly retry_after admits again.
        clock.advance(shed.retry_after_secs);
        plane.submit(tenant, request()).unwrap();
        let stats = plane.serving_stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.shed_rate_limited, 1);
        assert!(stats.conserves(2));
    }

    #[test]
    fn queue_full_sheds_without_spending_the_token() {
        let config = ServingConfig {
            queue_bound: 2,
            default_tenant: TenantConfig {
                rate_per_sec: 1.0,
                burst: 3.0,
                ..TenantConfig::default()
            },
            ..ServingConfig::default()
        };
        let (plane, _clock) = plane(config);
        let tenant = TenantId(0);
        plane.submit(tenant, request()).unwrap();
        plane.submit(tenant, request()).unwrap();
        let shed = plane.submit(tenant, request()).unwrap_err();
        assert_eq!(shed.reason, ShedReason::QueueFull);
        assert!(shed.retry_after_secs > 0.0);
        // The third token was not spent: drain the queue and the same
        // tenant admits immediately at the same instant.
        let calls = std::cell::Cell::new(0);
        plane.flush_with(echo(&calls)).unwrap();
        plane.submit(tenant, request()).unwrap();
        let stats = plane.serving_stats();
        assert_eq!(stats.shed_queue_full, 1);
        assert_eq!(stats.max_queue_len, 2, "bound respected");
        assert!(stats.conserves(1));
    }

    #[test]
    fn batch_closes_on_size_or_deadline() {
        let config = ServingConfig {
            batch_max_requests: 3,
            dispatch_margin_secs: 0.1,
            default_tenant: TenantConfig {
                deadline_secs: 1.0,
                rate_per_sec: 100.0,
                burst: 10.0,
                ..TenantConfig::default()
            },
            ..ServingConfig::default()
        };
        let (plane, clock) = plane(config);
        let tenant = TenantId(0);
        plane.submit(tenant, request()).unwrap();
        assert!(
            !plane.batch_ready(),
            "one fresh request: neither rule fires"
        );
        assert_eq!(plane.next_dispatch_at(), Some(0.9), "deadline − margin");
        plane.submit(tenant, request()).unwrap();
        plane.submit(tenant, request()).unwrap();
        assert!(plane.batch_ready(), "size rule");
        let calls = std::cell::Cell::new(0);
        let completed = plane.dispatch_with(echo(&calls)).unwrap();
        assert_eq!(completed.len(), 3);

        plane.submit(tenant, request()).unwrap();
        clock.advance(0.95);
        assert!(plane.batch_ready(), "deadline rule: within the margin");
    }

    #[test]
    fn expired_requests_never_reach_the_backend() {
        let config = ServingConfig {
            dispatch_margin_secs: 0.0,
            default_tenant: TenantConfig {
                deadline_secs: 0.5,
                ..TenantConfig::default()
            },
            ..ServingConfig::default()
        };
        let (plane, clock) = plane(config);
        let ticket = plane.submit(TenantId(3), request()).unwrap();
        clock.advance(10.0);
        let calls = std::cell::Cell::new(0);
        let completed = plane.dispatch_with(echo(&calls)).unwrap();
        assert_eq!(calls.get(), 0, "no backend call for an all-expired batch");
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].ticket, ticket);
        assert_eq!(completed[0].response, Response::DeadlineExpired);
        assert!(completed[0].deadline_missed);
        let stats = plane.serving_stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.answered, 0);
        assert_eq!(stats.batches, 0);
        assert!(stats.conserves(0));
    }

    #[test]
    fn backend_error_restores_the_queue() {
        let (plane, _clock) = plane(ServingConfig::default());
        let t0 = plane.submit(TenantId(0), request()).unwrap();
        let t1 = plane.submit(TenantId(1), request()).unwrap();
        let err = plane
            .dispatch_with(|_| {
                Err(SegmentError::Corrupt {
                    path: std::path::PathBuf::from("backend-down"),
                    expected: 0,
                    found: 1,
                })
            })
            .unwrap_err();
        assert!(matches!(err, SegmentError::Corrupt { .. }));
        assert_eq!(plane.queue_len(), 2, "both requests restored");
        let stats = plane.serving_stats();
        assert_eq!(stats.batches, 0, "failed batch not counted");
        // A retry serves the same requests in the same order.
        let calls = std::cell::Cell::new(0);
        let completed = plane.dispatch_with(echo(&calls)).unwrap();
        let tickets: Vec<Ticket> = completed.iter().map(|c| c.ticket).collect();
        assert_eq!(tickets, vec![t0, t1]);
    }

    #[test]
    fn latency_lands_in_the_histogram_per_tenant() {
        let config = ServingConfig {
            dispatch_margin_secs: 0.0,
            ..ServingConfig::default()
        };
        let (plane, clock) = plane(config);
        plane.submit(TenantId(1), request()).unwrap();
        plane.submit(TenantId(2), request()).unwrap();
        clock.advance(0.25);
        let calls = std::cell::Cell::new(0);
        let completed = plane.dispatch_with(echo(&calls)).unwrap();
        assert_eq!(completed.len(), 2);
        for c in &completed {
            assert_eq!(c.latency_secs, 0.25);
            assert!(!c.deadline_missed);
        }
        let stats = plane.serving_stats();
        assert_eq!(stats.latency.count(), 2);
        assert_eq!(stats.deadline_misses, 0);
        let bound = focus_runtime::LatencyHistogram::relative_error_bound();
        for tenant in [TenantId(1), TenantId(2)] {
            let t = stats.tenant(tenant).unwrap();
            assert_eq!(t.latency.count(), 1);
            let p50 = t.latency.p50();
            assert!((p50 / 0.25).max(0.25 / p50) <= bound * bound);
        }
    }

    #[test]
    fn merge_aggregates_two_planes() {
        let (a, clock_a) = plane(ServingConfig {
            dispatch_margin_secs: 0.0,
            ..ServingConfig::default()
        });
        let (b, _clock_b) = plane(ServingConfig::default());
        a.submit(TenantId(1), request()).unwrap();
        clock_a.advance(0.1);
        let calls = std::cell::Cell::new(0);
        a.dispatch_with(echo(&calls)).unwrap();
        b.submit(TenantId(1), request()).unwrap();
        b.submit(TenantId(2), request()).unwrap();

        let mut merged = a.serving_stats();
        merged.merge(&b.serving_stats());
        assert_eq!(merged.submitted, 3);
        assert_eq!(merged.answered, 1);
        assert_eq!(merged.latency.count(), 1);
        assert_eq!(merged.per_tenant.len(), 2);
        assert_eq!(merged.tenant(TenantId(1)).unwrap().submitted, 2);
    }

    #[test]
    #[should_panic(expected = "queue bound")]
    fn zero_queue_bound_panics() {
        let _ = RequestPlane::new(
            ServingConfig {
                queue_bound: 0,
                ..ServingConfig::default()
            },
            Arc::new(VirtualClock::new()),
        );
    }
}
