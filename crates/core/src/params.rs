//! Parameter selection: the sweep over (ingest CNN, K, Ls, T) and the
//! ingest-cost / query-latency trade-off (§4.4 and Figure 6 of the paper).
//!
//! Focus samples a representative slice of each stream, labels it with the
//! ground-truth CNN, and evaluates every candidate configuration on that
//! sample: expected precision, expected recall, ingest cost and query
//! latency. Configurations that miss the accuracy targets are discarded;
//! the Pareto boundary of the remainder is computed, and one configuration
//! is chosen per trade-off policy (Opt-Ingest / Balance / Opt-Query).

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use focus_cluster::IncrementalClusterer;
use focus_cnn::specialize::SpecializationLevel;
use focus_cnn::{Classifier, GroundTruthCnn, ModelSpec, ModelZoo};
use focus_video::motion::PixelDiffOutcome;
use focus_video::{ClassId, FrameId, MotionFilter, ObjectObservation, PixelDiff, VideoDataset};

use crate::accuracy::GroundTruthLabels;
use crate::config::{AblationMode, AccuracyTarget, TradeoffPolicy};
use crate::ingest::{IngestCnn, IngestParams};

/// Which part of the candidate space a sweep explores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpace {
    /// Generic compressed model candidates.
    pub generic_specs: Vec<ModelSpec>,
    /// Specialization levels to train per stream.
    pub specialization_levels: Vec<SpecializationLevel>,
    /// `Ls` values (number of specialized classes) to train per stream.
    pub ls_values: Vec<usize>,
    /// K candidates for generic models.
    pub generic_k: Vec<usize>,
    /// K candidates for specialized models.
    pub specialized_k: Vec<usize>,
    /// Clustering distance thresholds `T` to evaluate.
    pub thresholds: Vec<f32>,
    /// Whether generic models participate in the sweep.
    pub include_generic: bool,
    /// Whether specialized models participate in the sweep.
    pub include_specialized: bool,
    /// Whether ingest-time clustering is applied (disabled for the
    /// Figure-8 ablations).
    pub clustering: bool,
    /// Cap on active clusters during the sweep.
    pub max_active_clusters: usize,
    /// How many of the stream's dominant classes the expected accuracy and
    /// query latency are averaged over.
    pub dominant_classes: usize,
}

impl SweepSpace {
    /// The full sweep used by the benchmark harness.
    pub fn full() -> Self {
        let zoo = ModelZoo::new();
        Self {
            generic_specs: zoo.generic_specs(),
            specialization_levels: SpecializationLevel::all().to_vec(),
            ls_values: zoo.ls_candidates(),
            generic_k: vec![10, 20, 60, 100, 200],
            specialized_k: vec![1, 2, 4, 8],
            thresholds: vec![0.5, 1.0, 1.5, 2.0, 2.5],
            include_generic: true,
            include_specialized: true,
            clustering: true,
            max_active_clusters: 256,
            dominant_classes: 5,
        }
    }

    /// A reduced sweep for unit/integration tests: fewer candidates, same
    /// structure.
    pub fn quick() -> Self {
        Self {
            generic_specs: vec![ModelSpec::cheap_cnn_1(), ModelSpec::cheap_cnn_3()],
            specialization_levels: vec![SpecializationLevel::Medium],
            ls_values: vec![15],
            generic_k: vec![20, 60, 200],
            specialized_k: vec![2, 4],
            thresholds: vec![1.0, 2.0],
            include_generic: true,
            include_specialized: true,
            clustering: true,
            max_active_clusters: 128,
            dominant_classes: 3,
        }
    }

    /// The reduced sweep the adaptive controller runs *online* when a
    /// drift is detected: [`ModelZoo::adaptive_specs`] generic candidates,
    /// one specialization level over [`ModelZoo::adaptive_ls_candidates`],
    /// and a thinned K/T grid. Small enough that re-selecting on a
    /// drift-window sample costs a bounded slice of the shared GPU budget
    /// (see [`ParameterSelector::select_metered`]), while still spanning
    /// the generic-vs-specialized and cheap-vs-accurate axes the drifted
    /// distribution may have moved along.
    pub fn adaptive() -> Self {
        let zoo = ModelZoo::new();
        Self {
            generic_specs: zoo.adaptive_specs(),
            specialization_levels: vec![SpecializationLevel::Medium],
            ls_values: zoo.adaptive_ls_candidates(),
            generic_k: vec![20, 60, 200],
            specialized_k: vec![2, 4],
            thresholds: vec![1.0, 2.0],
            include_generic: true,
            include_specialized: true,
            clustering: true,
            max_active_clusters: 256,
            dominant_classes: 3,
        }
    }

    /// Restricts the sweep to what an ablation mode allows.
    pub fn for_ablation(mut self, mode: AblationMode) -> Self {
        self.include_specialized = mode.specialization();
        // The compressed-only ablation still needs *some* model family, so
        // generic models stay enabled; when specialization is on, generic
        // models remain in the space and simply lose the competition.
        self.clustering = mode.clustering();
        if !self.clustering {
            self.thresholds = vec![0.0];
        }
        self
    }
}

/// A serializable identifier of which ingest model a configuration uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelChoice {
    /// A generic compressed model.
    Generic(ModelSpec),
    /// A per-stream specialized model.
    Specialized {
        /// Compression level of the specialized model.
        level: SpecializationLevel,
        /// Number of specialized classes.
        ls: usize,
    },
}

impl ModelChoice {
    /// Human-readable name.
    pub fn display_name(&self) -> String {
        match self {
            ModelChoice::Generic(spec) => spec.display_name(),
            ModelChoice::Specialized { level, ls } => {
                format!("Specialized[{}|Ls={ls}]", level.name())
            }
        }
    }
}

/// One evaluated configuration: the knob settings and the expected metrics
/// on the labelled sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigurationPoint {
    /// Which ingest model the configuration uses.
    pub model: ModelChoice,
    /// The top-K index width.
    pub k: usize,
    /// Clustering threshold `T`.
    pub threshold: f32,
    /// Ingest cost normalized to ingesting every sampled object with the
    /// ground-truth CNN (the Ingest-all baseline).
    pub ingest_cost_norm: f64,
    /// Query latency normalized to classifying every sampled object with the
    /// ground-truth CNN at query time (the Query-all baseline), averaged
    /// over the dominant classes.
    pub query_latency_norm: f64,
    /// Expected precision on the sample, averaged over the dominant classes.
    pub precision: f64,
    /// Expected recall on the sample, averaged over the dominant classes.
    pub recall: f64,
    /// Expected precision of the worst dominant class. Viability is judged
    /// on the worst class (the paper computes the expectation "for each of
    /// the object classes"), so no queried class falls below the target.
    #[serde(default)]
    pub worst_precision: f64,
    /// Expected recall of the worst dominant class.
    #[serde(default)]
    pub worst_recall: f64,
}

impl ConfigurationPoint {
    /// Whether this point dominates `other` (no worse in both costs, better
    /// in at least one).
    pub fn dominates(&self, other: &ConfigurationPoint) -> bool {
        let no_worse = self.ingest_cost_norm <= other.ingest_cost_norm
            && self.query_latency_norm <= other.query_latency_norm;
        let better = self.ingest_cost_norm < other.ingest_cost_norm
            || self.query_latency_norm < other.query_latency_norm;
        no_worse && better
    }
}

/// The outcome of parameter selection for one stream.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// Every configuration that met the accuracy targets.
    pub viable: Vec<ConfigurationPoint>,
    /// The subset of `viable` on the Pareto boundary (sorted by ingest
    /// cost).
    pub pareto: Vec<ConfigurationPoint>,
    /// All evaluated configurations (including non-viable ones), for
    /// plotting the full trade-off space (Figure 6).
    pub evaluated: Vec<ConfigurationPoint>,
    /// The dominant classes the expectations were averaged over.
    pub dominant_classes: Vec<ClassId>,
    /// Trained/instantiated models keyed by their display name, so the
    /// chosen configuration can be turned into a runnable [`IngestCnn`].
    models: HashMap<String, IngestCnn>,
}

/// The configuration chosen for a policy, ready to run.
#[derive(Debug, Clone)]
pub struct SelectedConfiguration {
    /// The evaluated point that was chosen.
    pub point: ConfigurationPoint,
    /// The runnable ingest model.
    pub model: IngestCnn,
    /// Ingest parameters implied by the point.
    pub params: IngestParams,
    /// Whether the configuration met the accuracy targets on the sample
    /// (`false` only for best-effort fall-back choices).
    pub met_targets: bool,
}

impl SelectionResult {
    /// Chooses a viable configuration according to `policy`; returns `None`
    /// when no configuration met the accuracy targets.
    pub fn choose(&self, policy: TradeoffPolicy) -> Option<SelectedConfiguration> {
        let candidates = if self.pareto.is_empty() {
            &self.viable
        } else {
            &self.pareto
        };
        self.choose_among(policy, candidates, true)
    }

    /// Like [`choose`](Self::choose), but when no configuration meets the
    /// accuracy targets it falls back to the *most accurate* configurations
    /// evaluated and picks among them by `policy`. The returned
    /// configuration then has `met_targets == false`.
    ///
    /// The paper's streams always admit a viable configuration; with other
    /// workloads (or very high targets) the best-effort choice keeps the
    /// system operational and lets the caller report the shortfall.
    pub fn choose_or_best_effort(&self, policy: TradeoffPolicy) -> Option<SelectedConfiguration> {
        if let Some(chosen) = self.choose(policy) {
            return Some(chosen);
        }
        let best = self
            .evaluated
            .iter()
            .map(|p| p.worst_precision.min(p.worst_recall))
            .fold(f64::NEG_INFINITY, f64::max);
        if !best.is_finite() {
            return None;
        }
        let best_effort: Vec<ConfigurationPoint> = self
            .evaluated
            .iter()
            .filter(|p| p.worst_precision.min(p.worst_recall) >= best - 0.01)
            .cloned()
            .collect();
        self.choose_among(policy, &best_effort, false)
    }

    fn choose_among(
        &self,
        policy: TradeoffPolicy,
        candidates: &[ConfigurationPoint],
        met_targets: bool,
    ) -> Option<SelectedConfiguration> {
        if candidates.is_empty() {
            return None;
        }
        let point = match policy {
            TradeoffPolicy::OptIngest => candidates.iter().min_by(|a, b| {
                (a.ingest_cost_norm, a.query_latency_norm)
                    .partial_cmp(&(b.ingest_cost_norm, b.query_latency_norm))
                    .unwrap()
            }),
            TradeoffPolicy::OptQuery => candidates.iter().min_by(|a, b| {
                (a.query_latency_norm, a.ingest_cost_norm)
                    .partial_cmp(&(b.query_latency_norm, b.ingest_cost_norm))
                    .unwrap()
            }),
            TradeoffPolicy::Balance => candidates.iter().min_by(|a, b| {
                (a.ingest_cost_norm + a.query_latency_norm)
                    .partial_cmp(&(b.ingest_cost_norm + b.query_latency_norm))
                    .unwrap()
            }),
        }?
        .clone();
        let model = self.models.get(&point.model.display_name())?.clone();
        let params = IngestParams {
            k: point.k,
            cluster_threshold: point.threshold,
            max_active_clusters: 512,
            pixel_differencing: true,
            enable_clustering: point.threshold > 0.0,
        };
        Some(SelectedConfiguration {
            point,
            model,
            params,
            met_targets,
        })
    }
}

/// Computes the Pareto boundary (minimal ingest cost and query latency) of a
/// set of configurations.
pub fn pareto_boundary(points: &[ConfigurationPoint]) -> Vec<ConfigurationPoint> {
    let mut boundary: Vec<ConfigurationPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .cloned()
        .collect();
    boundary.sort_by(|a, b| {
        a.ingest_cost_norm
            .partial_cmp(&b.ingest_cost_norm)
            .unwrap()
            .then(
                a.query_latency_norm
                    .partial_cmp(&b.query_latency_norm)
                    .unwrap(),
            )
    });
    boundary.dedup_by(|a, b| {
        a.ingest_cost_norm == b.ingest_cost_norm && a.query_latency_norm == b.query_latency_norm
    });
    boundary
}

/// The parameter selector: evaluates the sweep space on a labelled sample of
/// one stream.
#[derive(Debug, Clone)]
pub struct ParameterSelector {
    space: SweepSpace,
    target: AccuracyTarget,
}

/// Pre-processed sample object: its observation, ground-truth label and
/// whether pixel differencing would have skipped its inference.
struct SampleObject {
    observation: ObjectObservation,
    gt_label: ClassId,
    frame: FrameId,
    needs_inference: bool,
}

impl ParameterSelector {
    /// Creates a selector for a sweep space and accuracy target.
    pub fn new(space: SweepSpace, target: AccuracyTarget) -> Self {
        Self { space, target }
    }

    /// The sweep space used.
    pub fn space(&self) -> &SweepSpace {
        &self.space
    }

    /// Runs the sweep on `sample` (a representative slice of the stream) and
    /// returns the viable configurations, the Pareto boundary and the
    /// runnable models.
    pub fn select(&self, sample: &VideoDataset, gt: &GroundTruthCnn) -> SelectionResult {
        self.select_metered(sample, gt, &focus_runtime::GpuMeter::new())
    }

    /// Like [`select`](Self::select), but charges the sweep's modelled GPU
    /// bill to `meter` under the phase `"selection"`: one ground-truth
    /// labelling pass over the sample plus one classification pass per
    /// candidate model. The offline harness discards this (selection runs
    /// before the experiment clock starts); the adaptive controller
    /// ([`crate::adapt`]) submits it to the shared [`GpuScheduler`] so a
    /// drift-triggered re-selection competes for the same budget as ingest
    /// and queries instead of being free.
    ///
    /// [`GpuScheduler`]: focus_runtime::GpuScheduler
    pub fn select_metered(
        &self,
        sample: &VideoDataset,
        gt: &GroundTruthCnn,
        meter: &focus_runtime::GpuMeter,
    ) -> SelectionResult {
        // Ground-truth label every sampled object once; this is the paper's
        // "sample a representative fraction of frames and classify them with
        // GT-CNN for the ground truth".
        let mut motion = MotionFilter::new();
        let mut pixel_diff = PixelDiff::new();
        let mut objects: Vec<SampleObject> = Vec::new();
        for frame in &sample.frames {
            if !motion.admit(frame) {
                continue;
            }
            for obj in &frame.objects {
                let needs_inference =
                    !matches!(pixel_diff.check(obj), PixelDiffOutcome::DuplicateOf(_));
                objects.push(SampleObject {
                    observation: obj.clone(),
                    gt_label: gt.classify_top1(obj),
                    frame: obj.frame_id,
                    needs_inference,
                });
            }
        }
        let labelled: Vec<(ObjectObservation, ClassId)> = objects
            .iter()
            .map(|o| (o.observation.clone(), o.gt_label))
            .collect();

        // Ground-truth segments (the paper's one-second / 50% smoothing
        // rule) and the dominant classes the expectations are averaged over.
        let labels = GroundTruthLabels::compute(sample, gt);
        let dominant: Vec<ClassId> = labels.dominant_classes(self.space.dominant_classes);

        // Build the candidate models.
        let mut candidates: Vec<(ModelChoice, IngestCnn, Vec<usize>)> = Vec::new();
        if self.space.include_generic {
            for spec in &self.space.generic_specs {
                candidates.push((
                    ModelChoice::Generic(*spec),
                    IngestCnn::generic(*spec),
                    self.space.generic_k.clone(),
                ));
            }
        }
        if self.space.include_specialized && !labelled.is_empty() {
            for level in &self.space.specialization_levels {
                for ls in &self.space.ls_values {
                    if let Some(model) = focus_cnn::SpecializedCnn::train(
                        &sample.profile.name,
                        *level,
                        &labelled,
                        *ls,
                    ) {
                        candidates.push((
                            ModelChoice::Specialized {
                                level: *level,
                                ls: *ls,
                            },
                            IngestCnn::specialized(model),
                            self.space.specialized_k.clone(),
                        ));
                    }
                }
            }
        }

        let gt_cost = gt.cost_per_inference().seconds();
        let total_objects = objects.len().max(1);
        let normalizer = gt_cost * total_objects as f64;
        let inferences_needed = objects.iter().filter(|o| o.needs_inference).count();

        // The sweep's GPU bill: the GT labelling pass plus one
        // classification pass per candidate model over the sample.
        meter.charge_inferences("selection", gt.cost_per_inference(), objects.len());
        for (_, ingest_cnn, _) in &candidates {
            meter.charge_inferences(
                "selection",
                ingest_cnn.classifier.cost_per_inference(),
                objects.len(),
            );
        }

        let mut evaluated = Vec::new();
        let mut models: HashMap<String, IngestCnn> = HashMap::new();

        for (choice, ingest_cnn, k_values) in &candidates {
            models.insert(choice.display_name(), ingest_cnn.clone());
            let classifier = ingest_cnn.classifier.as_ref();
            let max_k = k_values.iter().copied().max().unwrap_or(1);
            // Classify and featurize every sampled object once per model.
            let ranked_classes: Vec<Vec<ClassId>> = objects
                .iter()
                .map(|o| classifier.classify_top_k(&o.observation, max_k).classes())
                .collect();
            let features: Vec<Vec<f32>> = objects
                .iter()
                .map(|o| classifier.extract_features(&o.observation).0)
                .collect();
            let ingest_cost = classifier.cost_per_inference().seconds() * inferences_needed as f64;
            let ingest_cost_norm = ingest_cost / normalizer;

            for &threshold in &self.space.thresholds {
                // Cluster once per (model, T); cluster membership does not
                // depend on K.
                let clusters: Vec<Vec<usize>> = if self.space.clustering && threshold > 0.0 {
                    let mut clusterer =
                        IncrementalClusterer::new(threshold, self.space.max_active_clusters);
                    for (i, f) in features.iter().enumerate() {
                        clusterer.add(i as u64, 0, f);
                    }
                    let (clusters, _) = clusterer.finish();
                    clusters
                        .into_iter()
                        .map(|c| c.members.iter().map(|m| m.item as usize).collect())
                        .collect()
                } else {
                    (0..objects.len()).map(|i| vec![i]).collect()
                };

                for &k in k_values {
                    let point = self.evaluate_configuration(
                        choice,
                        ingest_cnn,
                        k,
                        threshold,
                        ingest_cost_norm,
                        &objects,
                        &ranked_classes,
                        &clusters,
                        &dominant,
                        &labels,
                        gt_cost,
                        normalizer,
                    );
                    evaluated.push(point);
                }
            }
        }

        let viable: Vec<ConfigurationPoint> = evaluated
            .iter()
            .filter(|p| self.target.met_by(p.worst_precision, p.worst_recall))
            .cloned()
            .collect();
        let pareto = pareto_boundary(&viable);
        SelectionResult {
            viable,
            pareto,
            evaluated,
            dominant_classes: dominant,
            models,
        }
    }

    /// Evaluates a single (model, K, T) configuration on the pre-processed
    /// sample. Precision and recall are measured the same way the end-to-end
    /// evaluation measures them — over one-second ground-truth segments —
    /// so the expectations used for selection are unbiased estimates of what
    /// the full run will achieve.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_configuration(
        &self,
        choice: &ModelChoice,
        ingest_cnn: &IngestCnn,
        k: usize,
        threshold: f32,
        ingest_cost_norm: f64,
        objects: &[SampleObject],
        ranked_classes: &[Vec<ClassId>],
        clusters: &[Vec<usize>],
        dominant: &[ClassId],
        labels: &GroundTruthLabels,
        gt_cost: f64,
        normalizer: f64,
    ) -> ConfigurationPoint {
        let mut precision_sum = 0.0;
        let mut recall_sum = 0.0;
        let mut worst_precision = 1.0f64;
        let mut worst_recall = 1.0f64;
        let mut query_cost_sum = 0.0;
        let mut classes_counted = 0usize;

        for &class in dominant {
            let lookup_class = ingest_cnn.effective_query_class(class);
            let mut matched_clusters = 0usize;
            let mut retrieved_frames: HashSet<FrameId> = HashSet::new();
            for members in clusters {
                let representative = members[0];
                let rep_classes = &ranked_classes[representative];
                let in_top_k = rep_classes.iter().take(k).any(|c| *c == lookup_class);
                if !in_top_k {
                    continue;
                }
                matched_clusters += 1;
                // Query-time GT confirmation of the representative.
                if objects[representative].gt_label == class {
                    retrieved_frames.extend(members.iter().map(|&i| objects[i].frame));
                }
            }
            let frames: Vec<FrameId> = retrieved_frames.into_iter().collect();
            let report = labels.evaluate(class, &frames);
            if report.truth_segments == 0 {
                continue;
            }
            classes_counted += 1;
            precision_sum += report.precision;
            recall_sum += report.recall;
            worst_precision = worst_precision.min(report.precision);
            worst_recall = worst_recall.min(report.recall);
            query_cost_sum += matched_clusters as f64 * gt_cost;
        }

        let divisor = classes_counted.max(1) as f64;
        ConfigurationPoint {
            model: choice.clone(),
            k,
            threshold,
            ingest_cost_norm,
            query_latency_norm: (query_cost_sum / divisor) / normalizer,
            precision: precision_sum / divisor,
            recall: recall_sum / divisor,
            worst_precision,
            worst_recall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_video::profile::profile_by_name;

    fn sample(stream: &str, secs: f64) -> VideoDataset {
        VideoDataset::generate(profile_by_name(stream).unwrap(), secs)
    }

    fn point(i: f64, q: f64) -> ConfigurationPoint {
        ConfigurationPoint {
            model: ModelChoice::Generic(ModelSpec::cheap_cnn_1()),
            k: 10,
            threshold: 1.0,
            ingest_cost_norm: i,
            query_latency_norm: q,
            precision: 0.99,
            recall: 0.99,
            worst_precision: 0.99,
            worst_recall: 0.99,
        }
    }

    #[test]
    fn pareto_boundary_removes_dominated_points() {
        let points = vec![
            point(0.1, 0.5),
            point(0.2, 0.2),
            point(0.3, 0.3),
            point(0.05, 0.9),
        ];
        let pareto = pareto_boundary(&points);
        // (0.3, 0.3) is dominated by (0.2, 0.2); the rest are incomparable.
        assert_eq!(pareto.len(), 3);
        assert!(pareto
            .iter()
            .all(|p| { !(p.ingest_cost_norm == 0.3 && p.query_latency_norm == 0.3) }));
        // Sorted by ingest cost.
        for w in pareto.windows(2) {
            assert!(w[0].ingest_cost_norm <= w[1].ingest_cost_norm);
        }
    }

    #[test]
    fn dominates_is_strict() {
        assert!(point(0.1, 0.1).dominates(&point(0.2, 0.2)));
        assert!(point(0.1, 0.2).dominates(&point(0.1, 0.3)));
        assert!(!point(0.1, 0.3).dominates(&point(0.2, 0.2)));
        assert!(!point(0.1, 0.1).dominates(&point(0.1, 0.1)));
    }

    #[test]
    fn quick_sweep_finds_viable_configurations() {
        let ds = sample("auburn_c", 90.0);
        let selector = ParameterSelector::new(SweepSpace::quick(), AccuracyTarget::both(0.9));
        let gt = GroundTruthCnn::resnet152();
        let result = selector.select(&ds, &gt);
        assert!(!result.evaluated.is_empty());
        assert!(
            !result.viable.is_empty(),
            "no viable configurations out of {}",
            result.evaluated.len()
        );
        assert!(!result.pareto.is_empty());
        assert!(result.pareto.len() <= result.viable.len());
        assert!(!result.dominant_classes.is_empty());
        // Every viable point meets the target.
        for p in &result.viable {
            assert!(p.precision >= 0.9 - 1e-9);
            assert!(p.recall >= 0.9 - 1e-9);
        }
    }

    #[test]
    fn policies_pick_configurations_with_expected_ordering() {
        let ds = sample("auburn_c", 90.0);
        let selector = ParameterSelector::new(SweepSpace::quick(), AccuracyTarget::both(0.9));
        let gt = GroundTruthCnn::resnet152();
        let result = selector.select(&ds, &gt);
        let opt_ingest = result.choose(TradeoffPolicy::OptIngest).unwrap();
        let balance = result.choose(TradeoffPolicy::Balance).unwrap();
        let opt_query = result.choose(TradeoffPolicy::OptQuery).unwrap();
        assert!(opt_ingest.point.ingest_cost_norm <= balance.point.ingest_cost_norm + 1e-12);
        assert!(opt_ingest.point.ingest_cost_norm <= opt_query.point.ingest_cost_norm + 1e-12);
        assert!(opt_query.point.query_latency_norm <= balance.point.query_latency_norm + 1e-12);
        assert!(opt_query.point.query_latency_norm <= opt_ingest.point.query_latency_norm + 1e-12);
        // The chosen configurations are runnable.
        assert!(opt_ingest.params.k >= 1);
        assert!(balance.model.classifier.cheapness_vs_gt() > 1.0);
    }

    #[test]
    fn specialized_models_win_when_available() {
        // §6.3: specialization is the main source of ingest savings; when
        // the sweep includes specialized candidates the balanced choice
        // should use one of them.
        let ds = sample("auburn_c", 120.0);
        let selector = ParameterSelector::new(SweepSpace::quick(), AccuracyTarget::both(0.9));
        let gt = GroundTruthCnn::resnet152();
        let result = selector.select(&ds, &gt);
        let balance = result.choose(TradeoffPolicy::Balance).unwrap();
        assert!(
            matches!(balance.point.model, ModelChoice::Specialized { .. }),
            "balanced choice was {:?}",
            balance.point.model
        );
    }

    #[test]
    fn ablation_without_clustering_uses_zero_threshold() {
        let space = SweepSpace::quick().for_ablation(AblationMode::CompressedSpecialized);
        assert!(!space.clustering);
        assert_eq!(space.thresholds, vec![0.0]);
        assert!(space.include_specialized);
        let compressed_only = SweepSpace::quick().for_ablation(AblationMode::CompressedOnly);
        assert!(!compressed_only.include_specialized);
        let full = SweepSpace::quick().for_ablation(AblationMode::Full);
        assert!(full.clustering);
    }

    #[test]
    fn no_viable_configuration_yields_none() {
        let ds = sample("bend", 30.0);
        // An impossible accuracy target: nothing can be viable.
        let selector = ParameterSelector::new(SweepSpace::quick(), AccuracyTarget::both(1.0));
        let gt = GroundTruthCnn::resnet152();
        let result = selector.select(&ds, &gt);
        if result.viable.is_empty() {
            assert!(result.choose(TradeoffPolicy::Balance).is_none());
        }
    }

    #[test]
    fn metered_selection_charges_the_sweep_bill() {
        let ds = sample("auburn_c", 60.0);
        let gt = GroundTruthCnn::resnet152();
        let selector = ParameterSelector::new(SweepSpace::adaptive(), AccuracyTarget::both(0.9));
        let meter = focus_runtime::GpuMeter::new();
        let result = selector.select_metered(&ds, &gt, &meter);
        assert!(!result.evaluated.is_empty());
        let billed = meter.phase("selection").seconds();
        // At least the GT labelling pass, at most GT + every candidate at
        // GT price (every candidate is cheaper than GT).
        let objects = ds.object_count() as f64;
        let gt_pass = gt.cost_per_inference().seconds() * objects;
        assert!(billed >= gt_pass);
        assert!(billed <= gt_pass * (2 + result.evaluated.len()) as f64);
        // The adaptive sweep is strictly smaller than the full one.
        assert!(
            SweepSpace::adaptive().generic_specs.len() < SweepSpace::full().generic_specs.len()
        );
    }

    #[test]
    fn higher_accuracy_targets_shrink_the_viable_set() {
        let ds = sample("auburn_c", 90.0);
        let gt = GroundTruthCnn::resnet152();
        let loose = ParameterSelector::new(SweepSpace::quick(), AccuracyTarget::both(0.85))
            .select(&ds, &gt);
        let strict = ParameterSelector::new(SweepSpace::quick(), AccuracyTarget::both(0.97))
            .select(&ds, &gt);
        assert!(strict.viable.len() <= loose.viable.len());
    }
}
