//! Concurrent query serving: batched GT-CNN verification with a
//! cross-query centroid-verdict cache.
//!
//! The serial [`QueryEngine`](crate::query::QueryEngine) re-runs the
//! ground-truth CNN on the same centroids for every query that matches them
//! — exactly the redundant-inference pattern Focus's ingest-time clustering
//! exists to avoid. [`QueryServer`] removes that redundancy along three
//! axes:
//!
//! 1. **Concurrency** — many [`QueryRequest`]s are accepted per
//!    [`serve`](QueryServer::serve) call; planning and verification fan out
//!    over the runtime [`WorkerPool`].
//! 2. **Deduplication + batching** — the union of the in-flight queries'
//!    candidate centroids is deduplicated, and only the *fresh* centroids
//!    go to the GT-CNN, in batches whose amortized GPU cost comes from
//!    [`BatchCostModel`].
//! 3. **Memoization** — every verdict is cached under
//!    `(centroid ObjectId, ground-truth epoch)`, so repeated and
//!    overlapping queries skip GT-CNN work entirely. Retraining the
//!    ground-truth model ([`retrain_ground_truth`](QueryServer::retrain_ground_truth))
//!    or re-ingesting data ([`invalidate`](QueryServer::invalidate)) bumps
//!    the epoch, which atomically invalidates every cached verdict.
//!
//! The server is required to return byte-identical frames and objects to
//! the serial engine while performing strictly fewer GT-CNN inferences on
//! overlapping workloads (`tests/query_server.rs` pins this).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use focus_cnn::{Classifier, GpuCost, GroundTruthCnn};
use focus_index::{CentroidHandle, ClusterRecord, SegmentError};
use focus_runtime::{BatchCostModel, GpuClusterSpec, GpuMeter, IoMeter, WorkerPool};
use focus_video::{ClassId, ObjectId, ObjectObservation};

use crate::ingest::IngestOutput;
use crate::query::segmented::{SegmentedCorpus, SegmentedPlan};
use crate::query::{assemble_outcome_from, QueryOutcome, QueryPlan, QueryRequest};

/// Snapshot of the verdict cache's activity, as returned by
/// [`QueryServer::cache_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Candidate verdicts served without a GT-CNN inference: either from
    /// the cache, or computed once for several overlapping in-flight
    /// queries in the same batch.
    pub hits: usize,
    /// Fresh GT-CNN inferences performed (each also becomes a cache entry).
    pub misses: usize,
    /// Verdicts currently cached (for the current ground-truth epoch).
    pub entries: usize,
    /// The current ground-truth epoch; bumping it invalidates every cached
    /// verdict.
    pub epoch: u64,
}

impl CacheStats {
    /// Fraction of candidate verdicts served without an inference
    /// (0.0 when nothing has been served yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent query server over one ingested video corpus.
///
/// Accepts many queries per call, plans each one's candidate set from the
/// top-K index, deduplicates the union of needed centroid inferences across
/// the in-flight queries, verifies only the fresh centroids through the
/// batched [`GroundTruthCnn::classify_batch`] path, and memoizes every
/// verdict in a cross-query cache keyed by `(ObjectId, ground-truth epoch)`.
///
/// # Examples
///
/// Serving two overlapping queries and reading the cache stats — the
/// narrower query's candidates are a subset of the wider one's, so they are
/// verified once and shared:
///
/// ```
/// use focus_core::prelude::*;
/// use focus_core::query::QueryRequest;
/// use focus_core::query_server::QueryServer;
/// use focus_video::profile::profile_by_name;
///
/// let ds = focus_video::VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 20.0);
/// let ingest = IngestEngine::new(
///     IngestCnn::generic(focus_cnn::ModelSpec::cheap_cnn_1()),
///     IngestParams { k: 10, ..IngestParams::default() },
/// )
/// .ingest(&ds, &focus_runtime::GpuMeter::new());
///
/// let server = QueryServer::new(
///     focus_cnn::GroundTruthCnn::resnet152(),
///     focus_runtime::GpuClusterSpec::new(4),
/// );
/// let class = ds.dominant_classes(1)[0];
/// let requests = vec![
///     QueryRequest::new(class),
///     QueryRequest::new(class)
///         .with_filter(focus_index::QueryFilter::any().with_kx(2)),
/// ];
/// let outcomes = server.serve(&ingest, &requests, &focus_runtime::GpuMeter::new());
/// assert_eq!(outcomes.len(), 2);
///
/// let stats = server.cache_stats();
/// assert!(stats.hits > 0, "the overlapping query reused verdicts");
/// assert!(stats.misses > 0);
/// ```
///
/// A repeated workload is answered entirely from the cache — identical
/// results, zero new inferences:
///
/// ```
/// # use focus_core::prelude::*;
/// # use focus_core::query::QueryRequest;
/// # use focus_core::query_server::QueryServer;
/// # use focus_video::profile::profile_by_name;
/// # let ds = focus_video::VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 20.0);
/// # let ingest = IngestEngine::new(
/// #     IngestCnn::generic(focus_cnn::ModelSpec::cheap_cnn_1()),
/// #     IngestParams { k: 10, ..IngestParams::default() },
/// # )
/// # .ingest(&ds, &focus_runtime::GpuMeter::new());
/// # let server = QueryServer::new(
/// #     focus_cnn::GroundTruthCnn::resnet152(),
/// #     focus_runtime::GpuClusterSpec::new(4),
/// # );
/// # let class = ds.dominant_classes(1)[0];
/// let request = vec![QueryRequest::new(class)];
/// let first = server.serve(&ingest, &request, &focus_runtime::GpuMeter::new());
/// let again = server.serve(&ingest, &request, &focus_runtime::GpuMeter::new());
/// assert_eq!(first[0].frames, again[0].frames);
/// assert_eq!(again[0].centroid_inferences, 0);
/// assert_eq!(again[0].gpu_cost, focus_cnn::GpuCost::ZERO);
/// ```
#[derive(Debug)]
pub struct QueryServer {
    gt: Mutex<Arc<GroundTruthCnn>>,
    epoch: AtomicU64,
    gpus: GpuClusterSpec,
    pool: WorkerPool,
    batching: BatchCostModel,
    cache: Mutex<HashMap<(ObjectId, u64), ClassId>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

// Serving is the shared-everything side of the system: one server instance
// is hit by many request threads, so its cross-thread shareability is an
// explicit API guarantee.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryServer>();
};

impl QueryServer {
    /// Creates a server around the given ground-truth CNN and GPU cluster,
    /// with the default [`BatchCostModel`] and a worker pool sized to the
    /// cluster.
    pub fn new(gt: GroundTruthCnn, gpus: GpuClusterSpec) -> Self {
        Self::with_batching(gt, gpus, BatchCostModel::default())
    }

    /// Creates a server with an explicit batched-inference cost model.
    pub fn with_batching(
        gt: GroundTruthCnn,
        gpus: GpuClusterSpec,
        batching: BatchCostModel,
    ) -> Self {
        Self {
            gt: Mutex::new(Arc::new(gt)),
            epoch: AtomicU64::new(0),
            gpus,
            pool: WorkerPool::new(gpus.num_gpus.clamp(1, 16)),
            batching,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// The GPU cluster serving queries.
    pub fn gpus(&self) -> GpuClusterSpec {
        self.gpus
    }

    /// The batched-inference cost model.
    pub fn batching(&self) -> BatchCostModel {
        self.batching
    }

    /// The ground-truth CNN currently confirming centroids.
    pub fn ground_truth(&self) -> Arc<GroundTruthCnn> {
        Arc::clone(&self.gt.lock())
    }

    /// The current ground-truth epoch. Cached verdicts are keyed by epoch,
    /// so any bump (retrain or re-ingest) atomically invalidates them all.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Replaces the ground-truth CNN with a retrained model and bumps the
    /// epoch: verdicts from the old model are never served again.
    pub fn retrain_ground_truth(&self, gt: GroundTruthCnn) {
        let mut current = self.gt.lock();
        *current = Arc::new(gt);
        self.bump_epoch_locked();
    }

    /// Invalidates every cached verdict without changing the model — call
    /// after re-ingesting data, when old centroid object ids may be reused
    /// for different observations.
    pub fn invalidate(&self) {
        let _guard = self.gt.lock();
        self.bump_epoch_locked();
    }

    /// Bumps the epoch and drops stale entries. Callers must hold the `gt`
    /// lock so a concurrent `serve` cannot interleave a model swap with an
    /// epoch it doesn't belong to.
    fn bump_epoch_locked(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        // Correctness comes from the epoch in the key; clearing just keeps
        // the map from accumulating unreachable entries.
        self.cache.lock().clear();
    }

    /// Snapshot of cache activity since the server was created.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::SeqCst),
            misses: self.misses.load(Ordering::SeqCst),
            entries: self.cache.lock().len(),
            epoch: self.epoch(),
        }
    }

    /// Serves one query; equivalent to a single-element
    /// [`serve`](Self::serve) batch.
    pub fn serve_one(
        &self,
        ingest: &IngestOutput,
        request: &QueryRequest,
        meter: &GpuMeter,
    ) -> QueryOutcome {
        self.serve(ingest, std::slice::from_ref(request), meter)
            .pop()
            .expect("one outcome per request")
    }

    /// Serves a batch of concurrent queries over `ingest`, returning one
    /// outcome per request, in request order.
    ///
    /// The serving pipeline:
    ///
    /// 1. **Plan** (QT1/QT2) — every request's candidate set is built from
    ///    the top-K index, in parallel on the worker pool.
    /// 2. **Dedupe** — the union of candidate centroids is walked in
    ///    request order; centroids with a cached verdict for the current
    ///    epoch (or already scheduled by an earlier in-flight query) count
    ///    as cache hits, the rest form the fresh set.
    /// 3. **Batched verification** (QT3) — fresh centroids are split into
    ///    GPU-sized batches, classified via
    ///    [`GroundTruthCnn::classify_batch`] across the pool, and charged
    ///    to `meter` (phase `"query"`) at the amortized
    ///    [`BatchCostModel`] rate.
    /// 4. **Memoize + assemble** (QT4) — fresh verdicts enter the cache
    ///    for future calls; every outcome is assembled from the batch's own
    ///    verdict snapshot (captured at dedupe time), so a concurrent
    ///    epoch bump can never starve an in-flight batch.
    ///
    /// Accounting: each outcome's `centroid_inferences` counts only the
    /// fresh inferences that query was first to need; `gpu_cost` is its
    /// proportional share of the batch cost; `latency_secs` is the batch's
    /// wall-clock latency on the GPU cluster, shared by every outcome
    /// served in the batch.
    pub fn serve(
        &self,
        ingest: &IngestOutput,
        requests: &[QueryRequest],
        meter: &GpuMeter,
    ) -> Vec<QueryOutcome> {
        if requests.is_empty() {
            return Vec::new();
        }
        // QT1/QT2: plan every query concurrently on the worker pool.
        let plans: Vec<QueryPlan> = self.pool.map(requests.to_vec(), |request| {
            QueryPlan::build(ingest, request)
        });
        self.verify_and_assemble(
            &plans,
            |id| ingest.centroids.get(&id).cloned(),
            meter,
            |_, handle| {
                ingest
                    .index
                    .get(handle.cluster)
                    .expect("planned cluster still present in the index")
            },
        )
    }

    /// Serves a batch of concurrent queries over a durable segmented corpus
    /// — the same dedupe / batched-verification / verdict-cache pipeline as
    /// [`serve`](Self::serve), but with planning pruned at the segment
    /// level: only segments whose manifest bounds intersect a query's
    /// camera/time restriction are opened (lazily, through the store's LRU
    /// cache). Results are byte-identical to [`serve`](Self::serve) over
    /// the merged in-memory index (`tests/segment_durability.rs` pins
    /// this).
    ///
    /// Storage work — cold segment loads, bytes read, LRU hits — is charged
    /// to `io`; GPU accounting on `meter` is unchanged from
    /// [`serve`](Self::serve).
    pub fn serve_segmented(
        &self,
        corpus: &SegmentedCorpus,
        requests: &[QueryRequest],
        meter: &GpuMeter,
        io: &IoMeter,
    ) -> Result<Vec<QueryOutcome>, SegmentError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        // QT1/QT2 with pruning: plan every query concurrently; each plan
        // carries the records it resolved from the segments it opened.
        let planned: Vec<Result<SegmentedPlan, SegmentError>> = self
            .pool
            .map(requests.to_vec(), |request| corpus.plan(request));
        let mut plans = Vec::with_capacity(planned.len());
        let mut records = Vec::with_capacity(planned.len());
        for result in planned {
            let segmented = result?;
            io.record_loads(segmented.access.cold_loads, segmented.access.bytes_read);
            io.record_cache_hits(segmented.access.cache_hits);
            io.record_blocks(
                segmented.access.blocks_read,
                segmented.access.block_raw_hits,
                segmented.access.block_hits,
            );
            plans.push(segmented.plan);
            records.push(segmented.records);
        }
        Ok(self.serve_resolved(
            &plans,
            &records,
            |id| corpus.centroids.get(&id).cloned(),
            meter,
        ))
    }

    /// Serves pre-built plans whose candidate records were already resolved
    /// by the caller — the entry point for planners the server does not
    /// know about, such as the live service's segments-plus-tail union
    /// ([`SegmentedCorpus::plan_with_tail`]). `records[i]` must hold the
    /// cluster record of every candidate in `plans[i]`;
    /// `resolve_centroid` must return the observation behind every
    /// candidate centroid (from the durable corpus or the in-memory tail).
    ///
    /// Runs the exact QT3/QT4 pipeline of [`serve`](Self::serve) — dedupe
    /// against the verdict cache for the current ground-truth epoch,
    /// batched verification of only the fresh centroids, memoization, and
    /// batch-local assembly — so a caller mixing tail and segment
    /// candidates inherits the full cache/batching contract unchanged.
    ///
    /// [`SegmentedCorpus::plan_with_tail`]: crate::query::segmented::SegmentedCorpus::plan_with_tail
    ///
    /// # Panics
    ///
    /// Panics if `records` and `plans` differ in length, a candidate's
    /// record is missing, or `resolve_centroid` fails for a candidate.
    pub fn serve_resolved(
        &self,
        plans: &[QueryPlan],
        records: &[HashMap<focus_index::ClusterKey, ClusterRecord>],
        resolve_centroid: impl Fn(ObjectId) -> Option<ObjectObservation>,
        meter: &GpuMeter,
    ) -> Vec<QueryOutcome> {
        assert_eq!(plans.len(), records.len(), "one record map per served plan");
        self.verify_and_assemble(plans, resolve_centroid, meter, |i, handle| {
            records[i]
                .get(&handle.cluster)
                .expect("planned cluster resolved by the caller")
        })
    }

    /// One round of centroid verification for the anytime query path:
    /// classifies exactly the given centroids (in order) through the same
    /// pin-epoch / dedupe-against-cache / batched-classify / memoize
    /// pipeline as [`serve`](Self::serve), charging the amortized batch
    /// cost to `meter` under the caller-named `phase` (the anytime loop
    /// passes `"anytime"` so the [`GpuScheduler`] can arbitrate it on the
    /// query side of the budget).
    ///
    /// The returned [`VerifiedBatch`] keeps cache hits and fresh GT
    /// inferences separate: a cached verdict costs nothing and must not
    /// feed the anytime sampler's per-chunk yield estimates, while every
    /// fresh verdict is both charged and memoized for future queries —
    /// anytime rounds and exhaustive serves share one verdict cache.
    ///
    /// [`GpuScheduler`]: focus_runtime::GpuScheduler
    ///
    /// # Panics
    ///
    /// Panics if `resolve_centroid` fails for a centroid that needs a
    /// fresh inference.
    pub fn verify_round(
        &self,
        centroids: &[ObjectId],
        resolve_centroid: impl Fn(ObjectId) -> Option<ObjectObservation>,
        meter: &GpuMeter,
        phase: &str,
    ) -> VerifiedBatch {
        // Pin the (model, epoch) pair for the round.
        let (gt, epoch) = {
            let guard = self.gt.lock();
            (Arc::clone(&guard), self.epoch())
        };

        // Dedupe against the cache (and within the round) exactly as one
        // serve batch would; each verdict source is captured locally so a
        // concurrent epoch bump cannot starve the in-flight round.
        let mut fresh: Vec<ObjectId> = Vec::new();
        let mut sources: Vec<VerdictSource> = Vec::with_capacity(centroids.len());
        let mut hits = 0usize;
        {
            let cache = self.cache.lock();
            let mut scheduled: HashMap<ObjectId, usize> = HashMap::new();
            for id in centroids {
                if let Some(label) = cache.get(&(*id, epoch)) {
                    hits += 1;
                    sources.push(VerdictSource::Cached(*label));
                } else if let Some(&index) = scheduled.get(id) {
                    hits += 1;
                    sources.push(VerdictSource::Fresh(index));
                } else {
                    let index = fresh.len();
                    scheduled.insert(*id, index);
                    fresh.push(*id);
                    sources.push(VerdictSource::Fresh(index));
                }
            }
        }
        self.hits.fetch_add(hits, Ordering::SeqCst);
        self.misses.fetch_add(fresh.len(), Ordering::SeqCst);

        // Batched GT-CNN verification of the fresh set.
        let batches: Vec<Vec<ObjectObservation>> = fresh
            .chunks(self.batching.max_batch)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|id| {
                        resolve_centroid(*id).expect("ingest stored every centroid observation")
                    })
                    .collect()
            })
            .collect();
        let gt_worker = Arc::clone(&gt);
        let fresh_labels: Vec<ClassId> = self
            .pool
            .map(batches, move |batch| gt_worker.classify_batch(batch))
            .into_iter()
            .flatten()
            .collect();
        let cost = self
            .batching
            .batch_cost(gt.cost_per_inference(), fresh.len());
        meter.charge(phase, cost);

        // Memoize under the pinned epoch, shared with every other path.
        {
            let mut cache = self.cache.lock();
            for (id, label) in fresh.iter().zip(fresh_labels.iter()) {
                cache.insert((*id, epoch), *label);
            }
        }

        let mut labels = Vec::with_capacity(sources.len());
        let mut fresh_mask = Vec::with_capacity(sources.len());
        let mut first_use: Vec<bool> = vec![true; fresh.len()];
        for source in &sources {
            match source {
                VerdictSource::Cached(label) => {
                    labels.push(*label);
                    fresh_mask.push(false);
                }
                VerdictSource::Fresh(index) => {
                    labels.push(fresh_labels[*index]);
                    // Only the position that scheduled the inference counts
                    // as fresh; a within-round duplicate rides for free.
                    fresh_mask.push(std::mem::take(&mut first_use[*index]));
                }
            }
        }
        VerifiedBatch {
            labels,
            fresh_mask,
            fresh_inferences: fresh.len(),
            cached_verdicts: hits,
            cost,
            latency_secs: self.gpus.latency_secs(cost),
        }
    }

    /// QT3/QT4 shared by the in-memory and segmented paths: pin the
    /// (model, epoch) pair, dedupe the union of candidate centroids against
    /// the verdict cache, verify the fresh set in GPU batches, memoize, and
    /// assemble one outcome per plan. `get_record(i, handle)` resolves a
    /// confirmed candidate of `plans[i]` to its cluster record.
    fn verify_and_assemble<'a>(
        &self,
        plans: &[QueryPlan],
        resolve_centroid: impl Fn(ObjectId) -> Option<ObjectObservation>,
        meter: &GpuMeter,
        get_record: impl Fn(usize, &CentroidHandle) -> &'a ClusterRecord,
    ) -> Vec<QueryOutcome> {
        // Pin the (model, epoch) pair for the whole batch.
        let (gt, epoch) = {
            let guard = self.gt.lock();
            (Arc::clone(&guard), self.epoch())
        };

        // Dedupe the union of needed centroid inferences across the
        // in-flight queries, skipping verdicts cached for this epoch. Each
        // candidate's verdict source is captured locally — a cached label is
        // copied out, a fresh centroid becomes an index into the fresh set —
        // so assembly below never re-reads the shared cache (which a
        // concurrent epoch bump may clear under an in-flight batch).
        let mut fresh: Vec<ObjectId> = Vec::new();
        let mut fresh_per_query = vec![0usize; plans.len()];
        let mut sources: Vec<Vec<VerdictSource>> = Vec::with_capacity(plans.len());
        let mut hits = 0usize;
        {
            let cache = self.cache.lock();
            let mut scheduled: HashMap<ObjectId, usize> = HashMap::new();
            for (plan, fresh_count) in plans.iter().zip(fresh_per_query.iter_mut()) {
                let mut plan_sources = Vec::with_capacity(plan.candidates.len());
                for handle in &plan.candidates {
                    if let Some(label) = cache.get(&(handle.centroid, epoch)) {
                        hits += 1;
                        plan_sources.push(VerdictSource::Cached(*label));
                    } else if let Some(&index) = scheduled.get(&handle.centroid) {
                        // Already scheduled by an earlier in-flight query:
                        // computed once, shared within the batch.
                        hits += 1;
                        plan_sources.push(VerdictSource::Fresh(index));
                    } else {
                        let index = fresh.len();
                        scheduled.insert(handle.centroid, index);
                        fresh.push(handle.centroid);
                        *fresh_count += 1;
                        plan_sources.push(VerdictSource::Fresh(index));
                    }
                }
                sources.push(plan_sources);
            }
        }
        self.hits.fetch_add(hits, Ordering::SeqCst);
        self.misses.fetch_add(fresh.len(), Ordering::SeqCst);

        // QT3: batched GT-CNN verification of the deduplicated fresh set.
        let batches: Vec<Vec<ObjectObservation>> = fresh
            .chunks(self.batching.max_batch)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|id| {
                        resolve_centroid(*id).expect("ingest stored every centroid observation")
                    })
                    .collect()
            })
            .collect();
        let gt_worker = Arc::clone(&gt);
        let labels: Vec<ClassId> = self
            .pool
            .map(batches, move |batch| gt_worker.classify_batch(batch))
            .into_iter()
            .flatten()
            .collect();
        let batch_cost = self
            .batching
            .batch_cost(gt.cost_per_inference(), fresh.len());
        meter.charge("query", batch_cost);

        // Memoize the fresh verdicts under the pinned epoch, for future
        // serve calls. (If a concurrent bump raced past the pinned epoch,
        // these entries are unreachable and bounded — correctness is
        // carried by the epoch in the key, not by the purge.)
        {
            let mut cache = self.cache.lock();
            for (id, label) in fresh.iter().zip(labels.iter()) {
                cache.insert((*id, epoch), *label);
            }
        }

        // QT4: assemble every outcome from the batch-local verdict
        // snapshot, without holding any lock. Fresh work is attributed to
        // the first query that needed it; the batch's wall-clock latency is
        // shared.
        let latency_secs = self.gpus.latency_secs(batch_cost);
        let share = if fresh.is_empty() {
            GpuCost::ZERO
        } else {
            batch_cost / fresh.len() as f64
        };
        plans
            .iter()
            .zip(sources.iter())
            .zip(fresh_per_query.iter())
            .enumerate()
            .map(|(plan_idx, ((plan, plan_sources), fresh_count))| {
                let verdicts: Vec<ClassId> = plan_sources
                    .iter()
                    .map(|source| match source {
                        VerdictSource::Cached(label) => *label,
                        VerdictSource::Fresh(index) => labels[*index],
                    })
                    .collect();
                assemble_outcome_from(
                    plan,
                    &verdicts,
                    *fresh_count,
                    share * *fresh_count,
                    latency_secs,
                    |handle| get_record(plan_idx, handle),
                )
            })
            .collect()
    }
}

/// Where one candidate's verdict comes from within a `serve` batch: copied
/// out of the cache at dedupe time, or an index into the batch's fresh
/// classification results.
#[derive(Debug, Clone, Copy)]
enum VerdictSource {
    Cached(ClassId),
    Fresh(usize),
}

/// The result of one [`QueryServer::verify_round`] call: one verdict per
/// input centroid (input order), with cache hits and fresh GT inferences
/// accounted separately so the anytime sampler's yield estimates only see
/// work that actually cost GPU time.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedBatch {
    /// One GT verdict per input centroid, in input order.
    pub labels: Vec<ClassId>,
    /// `fresh_mask[i]` is true when `labels[i]` came from a fresh GT
    /// inference scheduled by position `i` (false for cache hits and
    /// within-round duplicates). Sampling estimators must only learn from
    /// positions marked fresh.
    pub fresh_mask: Vec<bool>,
    /// Fresh GT-CNN inferences this round performed (deduplicated).
    pub fresh_inferences: usize,
    /// Verdicts served from the cross-query cache (or deduplicated within
    /// the round) — free, and excluded from sampling estimates.
    pub cached_verdicts: usize,
    /// Amortized GPU cost of the fresh inferences, as charged to the
    /// meter under the caller's phase.
    pub cost: GpuCost,
    /// Wall-clock latency of the round on the GPU cluster.
    pub latency_secs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{IngestCnn, IngestEngine, IngestParams};
    use crate::query::QueryEngine;
    use focus_cnn::ModelSpec;
    use focus_index::QueryFilter;
    use focus_video::profile::profile_by_name;
    use focus_video::VideoDataset;

    fn setup(k: usize) -> (VideoDataset, IngestOutput) {
        let ds = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 90.0);
        let out = IngestEngine::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams {
                k,
                ..IngestParams::default()
            },
        )
        .ingest(&ds, &GpuMeter::new());
        (ds, out)
    }

    fn server() -> QueryServer {
        QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4))
    }

    #[test]
    fn server_matches_engine_results() {
        let (ds, out) = setup(10);
        let classes = ds.dominant_classes(3);
        let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
        let server = server();
        let requests: Vec<QueryRequest> = classes.iter().map(|c| QueryRequest::new(*c)).collect();
        let served = server.serve(&out, &requests, &GpuMeter::new());
        for (request, outcome) in requests.iter().zip(served.iter()) {
            let serial = engine.query(&out, request.class, &request.filter, &GpuMeter::new());
            assert_eq!(outcome.frames, serial.frames);
            assert_eq!(outcome.objects, serial.objects);
            assert_eq!(outcome.matched_clusters, serial.matched_clusters);
            assert_eq!(outcome.confirmed_clusters, serial.confirmed_clusters);
        }
    }

    #[test]
    fn repeated_serve_is_free_and_identical() {
        let (ds, out) = setup(10);
        let class = ds.dominant_classes(1)[0];
        let server = server();
        let requests = vec![QueryRequest::new(class)];
        let meter = GpuMeter::new();
        let first = server.serve(&out, &requests, &meter);
        let charged_after_first = meter.phase("query").seconds();
        assert!(first[0].centroid_inferences > 0);
        assert!(charged_after_first > 0.0);

        let second = server.serve(&out, &requests, &meter);
        assert_eq!(first[0].frames, second[0].frames);
        assert_eq!(first[0].objects, second[0].objects);
        assert_eq!(second[0].centroid_inferences, 0);
        assert_eq!(second[0].gpu_cost, GpuCost::ZERO);
        assert_eq!(second[0].latency_secs, 0.0);
        // No new GPU time was charged.
        assert_eq!(meter.phase("query").seconds(), charged_after_first);
    }

    #[test]
    fn overlap_within_a_batch_is_deduplicated() {
        let (ds, out) = setup(10);
        let class = ds.dominant_classes(1)[0];
        let server = server();
        // The same query twice in one batch: the second instance must not
        // schedule any additional inference.
        let requests = vec![QueryRequest::new(class), QueryRequest::new(class)];
        let served = server.serve(&out, &requests, &GpuMeter::new());
        assert_eq!(served[0].frames, served[1].frames);
        assert!(served[0].centroid_inferences > 0);
        assert_eq!(served[1].centroid_inferences, 0);
        let stats = server.cache_stats();
        assert_eq!(stats.hits, served[0].matched_clusters);
        assert_eq!(stats.misses, served[0].matched_clusters);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batched_cost_is_amortized() {
        let (ds, out) = setup(10);
        let class = ds.dominant_classes(1)[0];
        let server = server();
        let serial_engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
        let serial = serial_engine.query(&out, class, &QueryFilter::any(), &GpuMeter::new());
        let served = server.serve_one(&out, &QueryRequest::new(class), &GpuMeter::new());
        assert_eq!(served.frames, serial.frames);
        assert_eq!(served.centroid_inferences, serial.centroid_inferences);
        if served.centroid_inferences > 1 {
            assert!(
                served.gpu_cost < serial.gpu_cost,
                "batching must amortize launch overhead: {} vs {}",
                served.gpu_cost.seconds(),
                serial.gpu_cost.seconds()
            );
        }
    }

    #[test]
    fn epoch_bump_invalidates_cached_verdicts() {
        let (ds, out) = setup(10);
        let class = ds.dominant_classes(1)[0];
        // A flicker-free GT confirms the dominant class; a flicker-always
        // GT answers with scattered wrong classes, so the same query must
        // flip from non-empty to empty across the retrain.
        let server = QueryServer::new(GroundTruthCnn::with_flicker(0.0), GpuClusterSpec::new(4));
        let request = vec![QueryRequest::new(class)];
        let before = server.serve(&out, &request, &GpuMeter::new());
        assert!(before[0].confirmed_clusters > 0);
        assert_eq!(server.epoch(), 0);

        server.retrain_ground_truth(GroundTruthCnn::with_flicker(1.0));
        assert_eq!(server.epoch(), 1);
        let after = server.serve(&out, &request, &GpuMeter::new());
        // Old verdicts were not served: the new model re-ran and rejected.
        assert!(after[0].centroid_inferences > 0);
        assert_ne!(before[0].confirmed_clusters, after[0].confirmed_clusters);
    }

    #[test]
    fn invalidate_clears_cache_without_model_change() {
        let (ds, out) = setup(4);
        let class = ds.dominant_classes(1)[0];
        let server = server();
        let request = vec![QueryRequest::new(class)];
        let first = server.serve(&out, &request, &GpuMeter::new());
        assert!(server.cache_stats().entries > 0);
        server.invalidate();
        assert_eq!(server.cache_stats().entries, 0);
        let second = server.serve(&out, &request, &GpuMeter::new());
        // Same model, so same results — but the work was re-done.
        assert_eq!(first[0].frames, second[0].frames);
        assert_eq!(first[0].centroid_inferences, second[0].centroid_inferences);
    }

    #[test]
    fn empty_request_batch_is_a_no_op() {
        let (_, out) = setup(4);
        let server = server();
        let meter = GpuMeter::new();
        assert!(server.serve(&out, &[], &meter).is_empty());
        assert_eq!(meter.total().seconds(), 0.0);
        assert_eq!(server.cache_stats(), CacheStats::default());
    }

    #[test]
    fn absent_class_is_rejected_with_exact_metered_cost() {
        let (_, out) = setup(4);
        let server = server();
        let meter = GpuMeter::new();
        let outcome = server.serve_one(
            &out,
            &QueryRequest::new(ClassId(850)).with_filter(QueryFilter::any().with_kx(1)),
            &meter,
        );
        // GT confirmation rejects stray postings for a class that never
        // occurs in the stream.
        assert_eq!(outcome.confirmed_clusters, 0);
        assert!(outcome.frames.is_empty());
        assert!(outcome.objects.is_empty());
        // A cold server verifies exactly the matched candidates, and the
        // meter charge is exactly their amortized batch cost — zero when
        // nothing matched.
        assert_eq!(outcome.matched_clusters, outcome.centroid_inferences);
        let expected = server.batching().batch_cost(
            server.ground_truth().cost_per_inference(),
            outcome.matched_clusters,
        );
        assert_eq!(
            meter.phase("query").seconds().to_bits(),
            expected.seconds().to_bits()
        );
    }

    #[test]
    fn concurrent_invalidation_never_starves_inflight_batches() {
        // An epoch bump may clear the cache while a batch is in flight; the
        // batch must still assemble from its own verdict snapshot (pinned
        // at dedupe time) instead of panicking on a missing cache entry.
        let (ds, out) = setup(10);
        let class = ds.dominant_classes(1)[0];
        let server = server();
        let requests = vec![QueryRequest::new(class), QueryRequest::new(class)];
        std::thread::scope(|scope| {
            let srv = &server;
            let out_ref = &out;
            let reqs = &requests;
            let serving = scope.spawn(move || {
                for _ in 0..30 {
                    let outcomes = srv.serve(out_ref, reqs, &GpuMeter::new());
                    assert_eq!(outcomes.len(), 2);
                    // Both requests of a batch share one pinned epoch.
                    assert_eq!(outcomes[0].frames, outcomes[1].frames);
                }
            });
            scope.spawn(move || {
                for _ in 0..120 {
                    srv.invalidate();
                    std::thread::yield_now();
                }
            });
            serving.join().unwrap();
        });
    }

    #[test]
    fn accessors_report_configuration() {
        let server = QueryServer::with_batching(
            GroundTruthCnn::resnet152(),
            GpuClusterSpec::new(8),
            BatchCostModel::new(0.1, 16),
        );
        assert_eq!(server.gpus().num_gpus, 8);
        assert_eq!(server.batching().max_batch, 16);
        assert_eq!(server.ground_truth().name(), "ResNet152");
        assert_eq!(server.epoch(), 0);
    }
}
