//! Query planning (QT1/QT2): from a user request to a candidate centroid
//! set.
//!
//! Planning is pure index work — no GPU time is spent here. The plan's
//! candidate list is made of stable [`CentroidHandle`]s, sorted by cluster
//! key, which is what lets the serving layer deduplicate GT-CNN work across
//! concurrent queries and key its verdict cache by centroid object id.

use serde::{Deserialize, Serialize};

use focus_index::{CentroidHandle, QueryFilter, TrackKey};
use focus_video::ClassId;

use crate::ingest::IngestOutput;
use crate::query::track::{TrackFilter, TrackScope};

/// One class query as submitted to the query layer: the class the user asks
/// for plus the camera / time / `Kx` restrictions.
///
/// # Examples
///
/// ```
/// use focus_core::query::QueryRequest;
/// use focus_index::QueryFilter;
/// use focus_video::ClassId;
///
/// let plain = QueryRequest::new(ClassId(3));
/// assert_eq!(plain.filter, QueryFilter::any());
///
/// let narrow = QueryRequest::new(ClassId(3)).with_filter(QueryFilter::any().with_kx(2));
/// assert_eq!(narrow.filter.kx, Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    /// The object class being queried.
    pub class: ClassId,
    /// Camera / time-range / dynamic-`Kx` restrictions.
    pub filter: QueryFilter,
    /// How the query wants its results: all-at-once (exhaustive, the
    /// default) or incrementally under an anytime budget.
    #[serde(default)]
    pub anytime: AnytimeMode,
    /// Trajectory restrictions, ANDed with everything above: only tracks
    /// admitted by every predicate may contribute results. Empty (the
    /// default) restricts nothing. See [`crate::query::track`].
    #[serde(default)]
    pub tracks: TrackFilter,
}

impl QueryRequest {
    /// A request for `class` with no restrictions.
    pub fn new(class: ClassId) -> Self {
        Self {
            class,
            filter: QueryFilter::any(),
            anytime: AnytimeMode::default(),
            tracks: TrackFilter::default(),
        }
    }

    /// Returns a copy of the request with `filter` applied.
    pub fn with_filter(mut self, filter: QueryFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Returns a copy of the request with the anytime mode applied.
    pub fn with_anytime(mut self, anytime: AnytimeMode) -> Self {
        self.anytime = anytime;
        self
    }

    /// Returns a copy of the request with a trajectory restriction applied.
    pub fn with_tracks(mut self, tracks: TrackFilter) -> Self {
        self.tracks = tracks;
        self
    }
}

/// How a query's results should be produced.
///
/// `Exhaustive` is the classic plan-verify-assemble path: every candidate
/// centroid is verified before anything is returned. `Incremental` runs
/// the anytime loop (`focus_core::query::anytime`): verification proceeds
/// in rounds of at most `round_budget` GT inferences, partial results
/// stream out after every round, and the loop stops early once the
/// estimated fraction of still-undiscovered results drops to
/// `confidence_remaining` or the total inference budget `max_inferences`
/// is spent (`0` in either field disables that bound — `f64`/`usize`
/// sentinels keep the struct serializable with the vendored serde, which
/// cannot derive `Option` defaults inside adjacent enums).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnytimeMode {
    /// `false` = exhaustive (the default); `true` = incremental anytime
    /// execution.
    pub incremental: bool,
    /// GT inferences allowed per verification round (minimum 1 when
    /// incremental).
    pub round_budget: usize,
    /// Total fresh-GT-inference budget; `0` = unbounded (run until the
    /// confidence threshold or candidate exhaustion).
    pub max_inferences: usize,
    /// Stop once the estimated remaining-result fraction falls to or
    /// below this; `0.0` = run to candidate exhaustion.
    pub confidence_remaining: f64,
}

impl Default for AnytimeMode {
    fn default() -> Self {
        Self::exhaustive()
    }
}

impl AnytimeMode {
    /// The classic all-at-once mode.
    pub fn exhaustive() -> Self {
        Self {
            incremental: false,
            round_budget: 0,
            max_inferences: 0,
            confidence_remaining: 0.0,
        }
    }

    /// Incremental execution with `round_budget` GT inferences per round
    /// and no total budget or confidence stop (runs to exhaustion).
    pub fn incremental(round_budget: usize) -> Self {
        Self {
            incremental: true,
            round_budget: round_budget.max(1),
            max_inferences: 0,
            confidence_remaining: 0.0,
        }
    }

    /// Returns a copy with a total fresh-inference budget.
    pub fn with_max_inferences(mut self, max_inferences: usize) -> Self {
        self.max_inferences = max_inferences;
        self
    }

    /// Returns a copy that stops once the estimated remaining-result
    /// fraction drops to or below `frac`.
    pub fn with_confidence_remaining(mut self, frac: f64) -> Self {
        assert!(
            frac.is_finite() && frac >= 0.0,
            "confidence threshold must be finite and non-negative"
        );
        self.confidence_remaining = frac;
        self
    }
}

/// The planned candidate set of one query: which cluster centroids the
/// ground-truth CNN must pass verdict on before members can be returned.
///
/// Built by [`QueryPlan::build`]; consumed by
/// [`QueryEngine`](crate::query::QueryEngine) (serial) and
/// [`QueryServer`](crate::query_server::QueryServer) (concurrent, batched,
/// cached).
///
/// # Examples
///
/// ```
/// use focus_core::prelude::*;
/// use focus_core::query::{QueryPlan, QueryRequest};
/// use focus_video::profile::profile_by_name;
///
/// let ds = focus_video::VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 20.0);
/// let ingest = IngestEngine::new(
///     IngestCnn::generic(focus_cnn::ModelSpec::cheap_cnn_1()),
///     IngestParams { k: 10, ..IngestParams::default() },
/// )
/// .ingest(&ds, &focus_runtime::GpuMeter::new());
///
/// let class = ds.dominant_classes(1)[0];
/// let plan = QueryPlan::build(&ingest, &QueryRequest::new(class));
/// assert_eq!(plan.class, class);
/// assert!(!plan.candidates.is_empty());
/// // Every candidate's centroid observation was retained at ingest time.
/// assert!(plan.candidates.iter().all(|h| ingest.centroids.contains_key(&h.centroid)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The class the user queried.
    pub class: ClassId,
    /// The class looked up in the index: equal to `class` unless a
    /// specialized ingest model routed an un-specialized class through
    /// OTHER (§4.3 of the paper).
    pub lookup_class: ClassId,
    /// Stable handles of the matched clusters' centroids, sorted by cluster
    /// key. The GT-CNN verdict on `candidates[i].centroid` decides whether
    /// cluster `candidates[i].cluster`'s members are returned.
    pub candidates: Vec<CentroidHandle>,
    /// The planner's verdict on the request's [`TrackFilter`]: tracks whose
    /// sketches rejected it. Members of rejected tracks are filtered out at
    /// assembly, and clusters made entirely of rejected tracks were dropped
    /// from `candidates` before any GT verification. Empty for requests
    /// without a track filter.
    #[serde(default)]
    pub track_scope: TrackScope,
}

impl QueryPlan {
    /// Plans `request` against an ingested stream: maps the class through
    /// the ingest model's OTHER handling (QT1) and retrieves the matching
    /// cluster centroids from the top-K index (QT2). A request with a
    /// [`TrackFilter`] additionally evaluates it against the index's
    /// whole-life track sketches and drops every candidate cluster whose
    /// members all belong to rejected tracks — before any of them would
    /// cost a GT inference.
    pub fn build(ingest: &IngestOutput, request: &QueryRequest) -> QueryPlan {
        let lookup_class = ingest.model.effective_query_class(request.class);
        if request.tracks.is_empty() {
            return QueryPlan {
                class: request.class,
                lookup_class,
                candidates: ingest.index.lookup_centroids(lookup_class, &request.filter),
                track_scope: TrackScope::default(),
            };
        }
        let track_scope = request
            .tracks
            .scope_over(&request.filter, ingest.index.sketches());
        let candidates = ingest
            .index
            .lookup(lookup_class, &request.filter)
            .into_iter()
            .filter(|record| {
                record
                    .members
                    .iter()
                    .any(|m| track_scope.admits(TrackKey::new(record.key.stream, m.track)))
            })
            .map(|record| CentroidHandle {
                cluster: record.key,
                centroid: record.centroid_object,
                centroid_frame: record.centroid_frame,
            })
            .collect();
        QueryPlan {
            class: request.class,
            lookup_class,
            candidates,
            track_scope,
        }
    }

    /// Number of candidate clusters (the matched-cluster count of the
    /// eventual outcome).
    pub fn matched_clusters(&self) -> usize {
        self.candidates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{IngestCnn, IngestEngine, IngestParams};
    use focus_cnn::ModelSpec;
    use focus_runtime::GpuMeter;
    use focus_video::profile::profile_by_name;
    use focus_video::VideoDataset;

    fn ingest(k: usize) -> (VideoDataset, crate::ingest::IngestOutput) {
        let ds = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 60.0);
        let out = IngestEngine::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams {
                k,
                ..IngestParams::default()
            },
        )
        .ingest(&ds, &GpuMeter::new());
        (ds, out)
    }

    #[test]
    fn plan_matches_index_lookup() {
        let (ds, out) = ingest(10);
        let class = ds.dominant_classes(1)[0];
        let plan = QueryPlan::build(&out, &QueryRequest::new(class));
        assert_eq!(plan.class, class);
        assert_eq!(plan.lookup_class, class);
        let direct = out.index.lookup(class, &QueryFilter::any());
        assert_eq!(plan.matched_clusters(), direct.len());
        for (handle, record) in plan.candidates.iter().zip(direct.iter()) {
            assert_eq!(handle.cluster, record.key);
            assert_eq!(handle.centroid, record.centroid_object);
        }
    }

    #[test]
    fn plan_is_deterministic_and_sorted() {
        let (ds, out) = ingest(10);
        let class = ds.dominant_classes(1)[0];
        let request = QueryRequest::new(class);
        let a = QueryPlan::build(&out, &request);
        let b = QueryPlan::build(&out, &request);
        assert_eq!(a, b);
        assert!(a.candidates.windows(2).all(|w| w[0].cluster < w[1].cluster));
    }

    #[test]
    fn filters_shrink_the_plan() {
        let (ds, out) = ingest(20);
        let class = ds.dominant_classes(1)[0];
        let full = QueryPlan::build(&out, &QueryRequest::new(class));
        let narrow = QueryPlan::build(
            &out,
            &QueryRequest::new(class).with_filter(QueryFilter::any().with_kx(2)),
        );
        assert!(narrow.matched_clusters() <= full.matched_clusters());
        let early = QueryPlan::build(
            &out,
            &QueryRequest::new(class).with_filter(QueryFilter::any().with_time_range(0.0, 10.0)),
        );
        assert!(early.matched_clusters() <= full.matched_clusters());
    }

    #[test]
    fn request_builder() {
        let req = QueryRequest::new(ClassId(7)).with_filter(QueryFilter::any().with_kx(3));
        assert_eq!(req.class, ClassId(7));
        assert_eq!(req.filter.kx, Some(3));
    }
}
