//! Result assembly (QT4): applying ground-truth verdicts to a plan and
//! collecting the confirmed clusters' frames and objects.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use focus_cnn::GpuCost;
use focus_video::{ClassId, FrameId, ObjectId};

use crate::ingest::IngestOutput;
use crate::query::plan::QueryPlan;

/// The result of one class query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// The class that was queried.
    pub class: ClassId,
    /// Frames returned to the user, sorted and de-duplicated.
    pub frames: Vec<FrameId>,
    /// Objects belonging to the returned frames' confirmed clusters.
    pub objects: Vec<ObjectId>,
    /// Clusters whose top-K matched the query (the candidate set).
    pub matched_clusters: usize,
    /// Clusters whose centroid the GT-CNN confirmed as the queried class.
    pub confirmed_clusters: usize,
    /// Ground-truth CNN inferences performed *for this outcome*.
    ///
    /// On the serial [`QueryEngine`](crate::query::QueryEngine) path this is
    /// one per matched cluster. On the
    /// [`QueryServer`](crate::query_server::QueryServer) path it counts only
    /// the **fresh** inferences this query was first to need: verdicts
    /// served from the cross-query centroid-verdict cache, or computed once
    /// for several overlapping in-flight queries, are not re-counted — a
    /// repeated query can return a full result set with
    /// `centroid_inferences == 0`.
    pub centroid_inferences: usize,
    /// GPU time consumed by the query. On the batched server path this is
    /// the query's amortized share of the batch it was verified in.
    pub gpu_cost: GpuCost,
    /// Wall-clock latency of the query on the configured GPU cluster. On
    /// the server path, queries served in one batch share the batch's
    /// wall-clock latency.
    pub latency_secs: f64,
}

/// Applies per-candidate GT verdicts to `plan` and assembles the outcome
/// (QT4): clusters whose centroid verdict equals the queried class
/// contribute all their member frames and objects; everything else is
/// discarded.
///
/// `verdicts[i]` must be the ground-truth class of
/// `plan.candidates[i].centroid`. The accounting fields
/// (`centroid_inferences`, `gpu_cost`, `latency_secs`) are passed through
/// from the caller, because how much work the verdicts actually cost depends
/// on the serving path (serial, batched, or cached).
///
/// # Panics
///
/// Panics if `verdicts.len() != plan.candidates.len()` or a planned cluster
/// has disappeared from the index.
pub fn assemble_outcome(
    ingest: &IngestOutput,
    plan: &QueryPlan,
    verdicts: &[ClassId],
    centroid_inferences: usize,
    gpu_cost: GpuCost,
    latency_secs: f64,
) -> QueryOutcome {
    assemble_outcome_from(
        plan,
        verdicts,
        centroid_inferences,
        gpu_cost,
        latency_secs,
        |handle| {
            ingest
                .index
                .get(handle.cluster)
                .expect("planned cluster still present in the index")
        },
    )
}

/// Like [`assemble_outcome`], but resolves each confirmed candidate's
/// cluster record through `get_record` instead of a monolithic in-memory
/// index — the segmented query path resolves records from the segments the
/// plan actually opened ([`crate::query::segmented`]).
///
/// # Panics
///
/// Panics if `verdicts.len() != plan.candidates.len()`.
pub fn assemble_outcome_from<'a>(
    plan: &QueryPlan,
    verdicts: &[ClassId],
    centroid_inferences: usize,
    gpu_cost: GpuCost,
    latency_secs: f64,
    mut get_record: impl FnMut(&focus_index::CentroidHandle) -> &'a focus_index::ClusterRecord,
) -> QueryOutcome {
    assert_eq!(
        verdicts.len(),
        plan.candidates.len(),
        "one verdict per planned candidate"
    );
    let mut frames: HashSet<FrameId> = HashSet::new();
    let mut objects: Vec<ObjectId> = Vec::new();
    let mut confirmed = 0usize;
    for (handle, verdict) in plan.candidates.iter().zip(verdicts.iter()) {
        if *verdict != plan.class {
            continue;
        }
        confirmed += 1;
        let record = get_record(handle);
        for member in &record.members {
            // A confirmed cluster may still mix tracks; members whose track
            // the planner's sketch scope rejected are filtered here (the
            // pruned and unpruned planned paths apply the same scope, so
            // their frames and objects agree byte-for-byte).
            if !plan
                .track_scope
                .admits(focus_index::TrackKey::new(record.key.stream, member.track))
            {
                continue;
            }
            frames.insert(member.frame);
            objects.push(member.object);
        }
    }
    let mut frames: Vec<FrameId> = frames.into_iter().collect();
    frames.sort();
    objects.sort();
    objects.dedup();

    QueryOutcome {
        class: plan.class,
        frames,
        objects,
        matched_clusters: plan.candidates.len(),
        confirmed_clusters: confirmed,
        centroid_inferences,
        gpu_cost,
        latency_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::{IngestCnn, IngestEngine, IngestParams};
    use crate::query::plan::QueryRequest;
    use focus_cnn::{Classifier, GroundTruthCnn, ModelSpec};
    use focus_runtime::GpuMeter;
    use focus_video::profile::profile_by_name;
    use focus_video::VideoDataset;

    fn setup() -> (VideoDataset, crate::ingest::IngestOutput) {
        let ds = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 60.0);
        let out = IngestEngine::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams {
                k: 10,
                ..IngestParams::default()
            },
        )
        .ingest(&ds, &GpuMeter::new());
        (ds, out)
    }

    #[test]
    fn assembles_only_confirmed_clusters() {
        let (ds, out) = setup();
        let class = ds.dominant_classes(1)[0];
        let plan = QueryPlan::build(&out, &QueryRequest::new(class));
        let gt = GroundTruthCnn::resnet152();
        let verdicts: Vec<ClassId> = plan
            .candidates
            .iter()
            .map(|h| gt.classify_top1(&out.centroids[&h.centroid]))
            .collect();
        let outcome = assemble_outcome(&out, &plan, &verdicts, verdicts.len(), GpuCost(1.0), 0.5);
        assert_eq!(outcome.class, class);
        assert_eq!(outcome.matched_clusters, plan.candidates.len());
        assert!(outcome.confirmed_clusters <= outcome.matched_clusters);
        assert!(!outcome.frames.is_empty());
        // Frames are sorted and unique.
        assert!(outcome.frames.windows(2).all(|w| w[0] < w[1]));
        assert!(outcome.objects.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(outcome.gpu_cost, GpuCost(1.0));
        assert_eq!(outcome.latency_secs, 0.5);
    }

    #[test]
    fn all_rejecting_verdicts_return_nothing() {
        let (ds, out) = setup();
        let class = ds.dominant_classes(1)[0];
        let plan = QueryPlan::build(&out, &QueryRequest::new(class));
        let wrong = ClassId(class.0.wrapping_add(1));
        let verdicts = vec![wrong; plan.candidates.len()];
        let outcome = assemble_outcome(&out, &plan, &verdicts, 0, GpuCost::ZERO, 0.0);
        assert_eq!(outcome.confirmed_clusters, 0);
        assert!(outcome.frames.is_empty());
        assert!(outcome.objects.is_empty());
        assert_eq!(outcome.centroid_inferences, 0);
    }

    #[test]
    #[should_panic(expected = "one verdict per planned candidate")]
    fn verdict_count_mismatch_panics() {
        let (ds, out) = setup();
        let class = ds.dominant_classes(1)[0];
        let plan = QueryPlan::build(&out, &QueryRequest::new(class));
        assert!(!plan.candidates.is_empty());
        let _ = assemble_outcome(&out, &plan, &[], 0, GpuCost::ZERO, 0.0);
    }
}
