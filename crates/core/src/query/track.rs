//! Track-level spatio-temporal predicates: the `TrackFilter` language and
//! its two evaluators.
//!
//! A [`TrackFilter`] restricts a class query to tracks whose *trajectory*
//! satisfies a conjunction of [`TrackPredicate`]s — "cars that entered from
//! the left edge", "anything that crossed from the driveway to the street",
//! "pedestrians that lingered near the door for ten seconds", "objects
//! moving faster than 120 px/s". Every predicate has two evaluations:
//!
//! - [`admits_sketch`](TrackPredicate::admits_sketch) — **conservative**,
//!   against the whole-life [`TrackSketch`] the ingest pipeline persisted
//!   (O(tracks) work, no raw frames touched). It may admit a track that
//!   does not exactly satisfy the predicate (a sketch grid cell is
//!   [`TRACK_CELL_PX`] pixels coarse, and a transit sketch cannot see
//!   visit *order*), but it never rejects one that does.
//! - [`admits_trace`](TrackPredicate::admits_trace) — **exact**, against
//!   the raw `(secs, x, y)` observation trace. This is the ground truth
//!   the recall harness replays and the semantics the query ultimately
//!   promises.
//!
//! The planner uses the conservative form to build a [`TrackScope`]: the
//! set of tracks whose sketches *reject* the filter. Candidate clusters
//! whose members all fall in rejected tracks are dropped **before**
//! ground-truth verification — strictly fewer GT inferences — and members
//! of rejected tracks are filtered out at assembly. Because sketch
//! rejection is conservative, recall against the exact evaluation is 1.0
//! by construction (`tests/track_queries.rs` pins this).
//!
//! # Predicate grammar
//!
//! | Constructor | Exact meaning (over the time-ordered trace) |
//! |---|---|
//! | [`TrackPredicate::enters`] | first observation lies in the region |
//! | [`TrackPredicate::exits`] | last observation lies in the region |
//! | [`TrackPredicate::visits`] | some observation lies in the region |
//! | [`TrackPredicate::transit`] | visits `from`, then (no earlier) visits `to` |
//! | [`TrackPredicate::dwells`] | stays inside the region for a contiguous run of at least `min_secs` |
//! | [`TrackPredicate::speed_above`] | some consecutive-observation pair moves at ≥ the threshold (px/s) |
//! | [`TrackPredicate::speed_below`] | some consecutive-observation pair moves at ≤ the threshold (px/s) |
//!
//! Predicates compose by conjunction inside a [`TrackFilter`] and the
//! filter composes with the existing class / stream / time / `Kx`
//! restrictions on [`QueryRequest`](crate::query::QueryRequest) — tracks
//! are an additional cut, never a replacement for class verification.
//!
//! # Examples
//!
//! ```
//! use focus_core::query::track::{Region, TrackFilter, TrackPredicate};
//!
//! // "entered in the left quarter of the frame, moving at 100 px/s+".
//! let left = Region::new(0.0, 0.0, 320.0, 720.0);
//! let filter = TrackFilter::new()
//!     .and(TrackPredicate::enters(left))
//!     .and(TrackPredicate::speed_above(100.0));
//!
//! // Exact evaluation over a raw (secs, x, y) trace.
//! let trace = [(0.0, 100.0, 300.0), (1.0, 400.0, 300.0)];
//! assert!(filter.admits_trace(&trace));
//! let slow = [(0.0, 100.0, 300.0), (10.0, 400.0, 300.0)];
//! assert!(!filter.admits_trace(&slow));
//! ```

use serde::{Deserialize, Serialize};

use focus_index::track::{cell_coords, TRACK_CELL_PX};
use focus_index::{QueryFilter, TrackKey, TrackSketch};

/// An axis-aligned pixel rectangle, the spatial operand of every region
/// predicate. Bounds are inclusive; coordinates clamp at zero to match the
/// sketch grid, which folds off-frame positions into its edge cells.
///
/// # Examples
///
/// ```
/// use focus_core::query::track::Region;
///
/// let r = Region::new(80.0, 0.0, 240.0, 160.0);
/// assert!(r.contains_point(80.0, 0.0));
/// assert!(r.contains_point(240.0, 160.0));
/// assert!(!r.contains_point(241.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Region {
    /// Left edge, pixels.
    pub x0: f64,
    /// Top edge, pixels.
    pub y0: f64,
    /// Right edge, pixels (inclusive).
    pub x1: f64,
    /// Bottom edge, pixels (inclusive).
    pub y1: f64,
}

impl Region {
    /// Builds a region from any two opposite corners, normalizing the
    /// order and clamping at zero.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Region {
            x0: x0.min(x1).max(0.0),
            y0: y0.min(y1).max(0.0),
            x1: x0.max(x1).max(0.0),
            y1: y0.max(y1).max(0.0),
        }
    }

    /// Whether the pixel point `(x, y)` lies in the region (inclusive).
    pub fn contains_point(&self, x: f64, y: f64) -> bool {
        self.x0 <= x && x <= self.x1 && self.y0 <= y && y <= self.y1
    }

    /// Whether the sketch grid cell `code` intersects the region.
    ///
    /// This is the conservative counterpart of
    /// [`contains_point`](Self::contains_point): a cell covers
    /// [`TRACK_CELL_PX`]² pixels, so any point the region contains lands in
    /// a cell this method accepts — but an accepted cell may also hold
    /// points outside the region.
    pub fn overlaps_cell(&self, code: u32) -> bool {
        let (cx, cy) = cell_coords(code);
        let cell_x0 = cx as f64 * TRACK_CELL_PX;
        let cell_y0 = cy as f64 * TRACK_CELL_PX;
        self.x0 < cell_x0 + TRACK_CELL_PX
            && self.x1 >= cell_x0
            && self.y0 < cell_y0 + TRACK_CELL_PX
            && self.y1 >= cell_y0
    }

    /// Whether any cell in a sketch's sorted visited-cell list intersects
    /// the region.
    fn overlaps_any(&self, cells: &[u32]) -> bool {
        cells.iter().any(|&c| self.overlaps_cell(c))
    }
}

/// Which trajectory property a [`TrackPredicate`] tests. Carries no data
/// itself — the operands live as flat fields on the predicate (the
/// vendored serde derive does not support data-carrying enum variants),
/// mirroring the sentinel-field layout of
/// [`AnytimeMode`](crate::query::AnytimeMode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackPredicateKind {
    /// The track's first observation lies in `region`.
    EnterRegion,
    /// The track's last observation lies in `region`.
    ExitRegion,
    /// Some observation lies in `region`.
    VisitRegion,
    /// The track visits `region` and then (no earlier) visits `region_to`.
    Transit,
    /// The track stays inside `region` for a contiguous run of at least
    /// `min_secs` seconds.
    Dwell,
    /// Some consecutive-observation pair moves at `speed` px/s or faster.
    SpeedAbove,
    /// Some consecutive-observation pair moves at `speed` px/s or slower.
    SpeedBelow,
}

/// One trajectory predicate: a [`TrackPredicateKind`] plus its operands.
/// Unused operand fields hold their defaults and are ignored. Build with
/// the named constructors.
///
/// # Examples
///
/// ```
/// use focus_core::query::track::{Region, TrackPredicate};
///
/// let door = Region::new(560.0, 0.0, 720.0, 160.0);
/// let p = TrackPredicate::dwells(door, 5.0);
/// // Lingered by the door for 6 contiguous seconds: admitted.
/// let trace: Vec<(f64, f64, f64)> = (0..=6).map(|i| (i as f64, 600.0, 80.0)).collect();
/// assert!(p.admits_trace(&trace));
/// // Only passed through: rejected.
/// let pass = [(0.0, 600.0, 80.0), (1.0, 900.0, 80.0)];
/// assert!(!p.admits_trace(&pass));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackPredicate {
    /// Which property is tested.
    pub kind: TrackPredicateKind,
    /// Spatial operand of every region kind (the *from* region for
    /// [`TrackPredicateKind::Transit`]).
    pub region: Region,
    /// The *to* region of [`TrackPredicateKind::Transit`]; default
    /// otherwise.
    pub region_to: Region,
    /// Minimum contiguous in-region residence of
    /// [`TrackPredicateKind::Dwell`], seconds; `0.0` otherwise.
    pub min_secs: f64,
    /// Threshold of the speed kinds, px/s; `0.0` otherwise.
    pub speed: f64,
}

impl TrackPredicate {
    fn with_kind(kind: TrackPredicateKind) -> Self {
        TrackPredicate {
            kind,
            region: Region::default(),
            region_to: Region::default(),
            min_secs: 0.0,
            speed: 0.0,
        }
    }

    /// The track's first observation lies in `region`.
    pub fn enters(region: Region) -> Self {
        TrackPredicate {
            region,
            ..Self::with_kind(TrackPredicateKind::EnterRegion)
        }
    }

    /// The track's last observation lies in `region`.
    pub fn exits(region: Region) -> Self {
        TrackPredicate {
            region,
            ..Self::with_kind(TrackPredicateKind::ExitRegion)
        }
    }

    /// Some observation of the track lies in `region`.
    pub fn visits(region: Region) -> Self {
        TrackPredicate {
            region,
            ..Self::with_kind(TrackPredicateKind::VisitRegion)
        }
    }

    /// The track visits `from` and then (no earlier) visits `to`.
    pub fn transit(from: Region, to: Region) -> Self {
        TrackPredicate {
            region: from,
            region_to: to,
            ..Self::with_kind(TrackPredicateKind::Transit)
        }
    }

    /// The track stays inside `region` for a contiguous run of at least
    /// `min_secs` seconds.
    pub fn dwells(region: Region, min_secs: f64) -> Self {
        TrackPredicate {
            region,
            min_secs: min_secs.max(0.0),
            ..Self::with_kind(TrackPredicateKind::Dwell)
        }
    }

    /// Some consecutive-observation pair moves at `px_per_sec` or faster.
    pub fn speed_above(px_per_sec: f64) -> Self {
        TrackPredicate {
            speed: px_per_sec,
            ..Self::with_kind(TrackPredicateKind::SpeedAbove)
        }
    }

    /// Some consecutive-observation pair moves at `px_per_sec` or slower.
    pub fn speed_below(px_per_sec: f64) -> Self {
        TrackPredicate {
            speed: px_per_sec,
            ..Self::with_kind(TrackPredicateKind::SpeedBelow)
        }
    }

    /// Conservative evaluation against a whole-life [`TrackSketch`].
    ///
    /// Guaranteed never to reject a track whose exact trace satisfies the
    /// predicate ([`admits_trace`](Self::admits_trace) implies this), so
    /// the planner may drop sketch-rejected tracks without losing recall.
    /// The over-approximations: region tests see [`TRACK_CELL_PX`]-coarse
    /// cells, transit cannot see visit order, and dwell sees only the
    /// whole-life duration, not contiguous in-region residence.
    pub fn admits_sketch(&self, sketch: &TrackSketch) -> bool {
        match self.kind {
            TrackPredicateKind::EnterRegion => self.region.overlaps_cell(sketch.entry_cell),
            TrackPredicateKind::ExitRegion => self.region.overlaps_cell(sketch.exit_cell),
            TrackPredicateKind::VisitRegion => self.region.overlaps_any(&sketch.cells),
            TrackPredicateKind::Transit => {
                self.region.overlaps_any(&sketch.cells)
                    && self.region_to.overlaps_any(&sketch.cells)
            }
            TrackPredicateKind::Dwell => {
                self.region.overlaps_any(&sketch.cells) && sketch.duration_secs() >= self.min_secs
            }
            TrackPredicateKind::SpeedAbove => {
                sketch.speed_pairs > 0 && sketch.max_speed >= self.speed
            }
            TrackPredicateKind::SpeedBelow => {
                sketch.speed_pairs > 0 && sketch.min_speed <= self.speed
            }
        }
    }

    /// Exact evaluation against the raw time-ordered `(secs, x, y)`
    /// observation trace — the semantics the query promises and the recall
    /// harness replays. Positions must be the shared
    /// [`BoundingBox::center`](focus_video::BoundingBox::center)
    /// definition the ingest sketcher folded in; speeds use the same
    /// displacement formula, so the speed kinds agree bit-for-bit with the
    /// sketch extrema.
    ///
    /// An empty trace satisfies nothing.
    pub fn admits_trace(&self, trace: &[(f64, f64, f64)]) -> bool {
        match self.kind {
            TrackPredicateKind::EnterRegion => trace
                .first()
                .is_some_and(|&(_, x, y)| self.region.contains_point(x, y)),
            TrackPredicateKind::ExitRegion => trace
                .last()
                .is_some_and(|&(_, x, y)| self.region.contains_point(x, y)),
            TrackPredicateKind::VisitRegion => trace
                .iter()
                .any(|&(_, x, y)| self.region.contains_point(x, y)),
            TrackPredicateKind::Transit => {
                let mut seen_from = false;
                for &(_, x, y) in trace {
                    seen_from = seen_from || self.region.contains_point(x, y);
                    if seen_from && self.region_to.contains_point(x, y) {
                        return true;
                    }
                }
                false
            }
            TrackPredicateKind::Dwell => {
                let mut run_start: Option<f64> = None;
                for &(secs, x, y) in trace {
                    if self.region.contains_point(x, y) {
                        let start = *run_start.get_or_insert(secs);
                        if secs - start >= self.min_secs {
                            return true;
                        }
                    } else {
                        run_start = None;
                    }
                }
                false
            }
            TrackPredicateKind::SpeedAbove => pair_speeds(trace).any(|speed| speed >= self.speed),
            TrackPredicateKind::SpeedBelow => pair_speeds(trace).any(|speed| speed <= self.speed),
        }
    }
}

/// Displacement speed of every consecutive-observation pair with a
/// positive time delta — exactly the pairs the ingest
/// [`TrackSketcher`](focus_index::TrackSketcher) sampled.
fn pair_speeds(trace: &[(f64, f64, f64)]) -> impl Iterator<Item = f64> + '_ {
    trace.windows(2).filter_map(|w| {
        let (t0, x0, y0) = w[0];
        let (t1, x1, y1) = w[1];
        let dt = t1 - t0;
        (dt > 0.0).then(|| (x1 - x0).hypot(y1 - y0) / dt)
    })
}

/// A conjunction of [`TrackPredicate`]s. Empty (the default) admits every
/// track — a request with an empty filter plans exactly as before tracks
/// existed.
///
/// # Examples
///
/// ```
/// use focus_core::query::track::{Region, TrackFilter, TrackPredicate};
///
/// let filter = TrackFilter::new()
///     .and(TrackPredicate::visits(Region::new(0.0, 0.0, 160.0, 160.0)))
///     .and(TrackPredicate::speed_below(30.0));
/// assert_eq!(filter.predicates.len(), 2);
/// assert!(TrackFilter::default().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TrackFilter {
    /// The predicates, all of which must admit (AND semantics).
    pub predicates: Vec<TrackPredicate>,
}

impl TrackFilter {
    /// An empty filter (admits every track).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy with one more predicate conjoined.
    pub fn and(mut self, predicate: TrackPredicate) -> Self {
        self.predicates.push(predicate);
        self
    }

    /// Whether the filter has no predicates (and so restricts nothing).
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Conservative conjunction over a whole-life sketch: `true` iff every
    /// predicate's [`TrackPredicate::admits_sketch`] admits it.
    pub fn admits_sketch(&self, sketch: &TrackSketch) -> bool {
        self.predicates.iter().all(|p| p.admits_sketch(sketch))
    }

    /// Exact conjunction over a raw trace: `true` iff every predicate's
    /// [`TrackPredicate::admits_trace`] admits it.
    pub fn admits_trace(&self, trace: &[(f64, f64, f64)]) -> bool {
        self.predicates.iter().all(|p| p.admits_trace(trace))
    }

    /// The planner's [`TrackScope`] over an iterator of whole-life
    /// sketches: rejects every sketch from a `filter`-admitted stream that
    /// fails the conjunction. Only the stream restriction of `filter` is
    /// consulted — sketches summarize a track's whole life, so time-range
    /// pruning would truncate them and break conservativeness.
    pub fn scope_over<'a>(
        &self,
        filter: &QueryFilter,
        sketches: impl Iterator<Item = &'a TrackSketch>,
    ) -> TrackScope {
        let rejected = sketches
            .filter(|s| {
                filter
                    .streams
                    .as_ref()
                    .is_none_or(|streams| streams.contains(&s.key.stream))
            })
            .filter(|s| !self.admits_sketch(s))
            .map(|s| s.key)
            .collect();
        TrackScope::from_rejected(rejected)
    }
}

/// The planner's verdict on a [`TrackFilter`]: the tracks whose sketches
/// *rejected* it. Stored as a rejection list (not an admission list) so
/// tracks with no sketch — version-1 segments, pre-track snapshots — are
/// conservatively admitted rather than silently dropped.
///
/// An empty scope (the default, and the scope of every request without a
/// track filter) admits everything.
///
/// # Examples
///
/// ```
/// use focus_core::query::track::TrackScope;
/// use focus_index::TrackKey;
/// use focus_video::{StreamId, TrackId};
///
/// let rejected = TrackKey::new(StreamId(0), TrackId(7));
/// let scope = TrackScope::from_rejected(vec![rejected]);
/// assert!(!scope.admits(rejected));
/// assert!(scope.admits(TrackKey::new(StreamId(0), TrackId(8))));
/// assert!(TrackScope::default().admits(rejected));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TrackScope {
    /// Tracks whose sketches rejected the filter, sorted and deduplicated.
    pub rejected: Vec<TrackKey>,
}

impl TrackScope {
    /// Builds a scope from a rejection list, sorting and deduplicating.
    pub fn from_rejected(mut rejected: Vec<TrackKey>) -> Self {
        rejected.sort_unstable();
        rejected.dedup();
        TrackScope { rejected }
    }

    /// Whether `key`'s members may appear in results (i.e. the track was
    /// not rejected — unknown tracks are admitted).
    pub fn admits(&self, key: TrackKey) -> bool {
        self.rejected.binary_search(&key).is_err()
    }

    /// Whether the scope rejects nothing.
    pub fn is_empty(&self) -> bool {
        self.rejected.is_empty()
    }

    /// Unions another scope's rejections into this one (the fleet gather
    /// seam: shards hold disjoint streams, so their rejection lists union
    /// losslessly).
    pub fn merge(&mut self, other: &TrackScope) {
        self.rejected.extend_from_slice(&other.rejected);
        self.rejected.sort_unstable();
        self.rejected.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_index::TrackSketcher;
    use focus_video::{StreamId, TrackId};

    /// Builds the whole-life sketch of a trace the way ingest would.
    fn sketch_of(trace: &[(f64, f64, f64)]) -> TrackSketch {
        let mut sketcher = TrackSketcher::new(StreamId(0));
        for &(secs, x, y) in trace {
            sketcher.observe(TrackId(1), secs, x, y);
        }
        sketcher.snapshot_window().remove(0)
    }

    fn diagonal_trace() -> Vec<(f64, f64, f64)> {
        (0..12)
            .map(|i| {
                (
                    i as f64 * 0.5,
                    40.0 + i as f64 * 60.0,
                    40.0 + i as f64 * 30.0,
                )
            })
            .collect()
    }

    #[test]
    fn region_normalizes_and_tests_points() {
        let r = Region::new(300.0, 200.0, 100.0, 50.0);
        assert_eq!(r, Region::new(100.0, 50.0, 300.0, 200.0));
        assert!(r.contains_point(100.0, 50.0));
        assert!(r.contains_point(300.0, 200.0));
        assert!(!r.contains_point(99.9, 50.0));
        // Negative corners clamp to the frame edge.
        let edge = Region::new(-50.0, -50.0, 80.0, 80.0);
        assert!(edge.contains_point(0.0, 0.0));
        assert!(!edge.contains_point(-1.0, 0.0));
    }

    #[test]
    fn cell_overlap_covers_every_contained_point() {
        // Any point a region contains must land in a cell the region
        // overlaps — the invariant conservative planning rests on.
        let regions = [
            Region::new(0.0, 0.0, 79.0, 79.0),
            Region::new(75.0, 75.0, 85.0, 85.0),
            Region::new(80.0, 160.0, 400.0, 400.0),
            Region::new(0.0, 0.0, 1280.0, 720.0),
        ];
        for region in &regions {
            let mut x = 0.0;
            while x < 500.0 {
                let mut y = 0.0;
                while y < 500.0 {
                    if region.contains_point(x, y) {
                        let cell = focus_index::track::cell_of(x, y);
                        assert!(
                            region.overlaps_cell(cell),
                            "region {region:?} contains ({x}, {y}) but misses its cell"
                        );
                    }
                    y += 7.3;
                }
                x += 7.3;
            }
        }
    }

    #[test]
    fn exact_predicates_on_a_diagonal_trace() {
        let trace = diagonal_trace();
        let start = Region::new(0.0, 0.0, 80.0, 80.0);
        let end = Region::new(640.0, 320.0, 800.0, 420.0);
        assert!(TrackPredicate::enters(start).admits_trace(&trace));
        assert!(!TrackPredicate::enters(end).admits_trace(&trace));
        assert!(TrackPredicate::exits(end).admits_trace(&trace));
        assert!(TrackPredicate::visits(start).admits_trace(&trace));
        assert!(TrackPredicate::transit(start, end).admits_trace(&trace));
        // Order matters for the exact transit: end → start never happens.
        assert!(!TrackPredicate::transit(end, start).admits_trace(&trace));
        // ~134 px/s diagonal speed.
        assert!(TrackPredicate::speed_above(130.0).admits_trace(&trace));
        assert!(!TrackPredicate::speed_above(200.0).admits_trace(&trace));
        assert!(TrackPredicate::speed_below(140.0).admits_trace(&trace));
        assert!(!TrackPredicate::speed_below(50.0).admits_trace(&trace));
    }

    #[test]
    fn dwell_requires_a_contiguous_run() {
        let zone = Region::new(0.0, 0.0, 100.0, 100.0);
        // In, out, back in: two 1-second runs, never a 2-second one.
        let bouncing = [
            (0.0, 50.0, 50.0),
            (1.0, 60.0, 50.0),
            (2.0, 500.0, 50.0),
            (3.0, 50.0, 50.0),
            (4.0, 60.0, 50.0),
        ];
        assert!(TrackPredicate::dwells(zone, 1.0).admits_trace(&bouncing));
        assert!(!TrackPredicate::dwells(zone, 2.0).admits_trace(&bouncing));
        // The whole-life sketch cannot see contiguity: it conservatively
        // admits the 2-second dwell (duration 4 s, zone visited).
        let sketch = sketch_of(&bouncing);
        assert!(TrackPredicate::dwells(zone, 2.0).admits_sketch(&sketch));
    }

    #[test]
    fn sketch_evaluation_is_conservative_over_exact() {
        // admits_trace ⇒ admits_sketch for every predicate, on a family of
        // synthetic traces.
        let traces: Vec<Vec<(f64, f64, f64)>> = vec![
            diagonal_trace(),
            vec![(0.0, 640.0, 360.0)],
            (0..30)
                .map(|i| (i as f64, (i * 41 % 1280) as f64, (i * 97 % 720) as f64))
                .collect(),
            (0..10)
                .map(|i| (i as f64 * 2.0, 100.0, 700.0 - i as f64 * 70.0))
                .collect(),
        ];
        let a = Region::new(0.0, 0.0, 160.0, 720.0);
        let b = Region::new(600.0, 0.0, 1280.0, 720.0);
        let predicates = [
            TrackPredicate::enters(a),
            TrackPredicate::exits(b),
            TrackPredicate::visits(a),
            TrackPredicate::transit(a, b),
            TrackPredicate::transit(b, a),
            TrackPredicate::dwells(a, 3.0),
            TrackPredicate::speed_above(60.0),
            TrackPredicate::speed_below(60.0),
        ];
        for trace in &traces {
            let sketch = sketch_of(trace);
            for p in &predicates {
                if p.admits_trace(trace) {
                    assert!(
                        p.admits_sketch(&sketch),
                        "sketch rejected a trace the exact evaluation admits: {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn transit_sketch_ignores_order_but_exact_does_not() {
        let trace = diagonal_trace();
        let start = Region::new(0.0, 0.0, 80.0, 80.0);
        let end = Region::new(640.0, 320.0, 800.0, 420.0);
        let backwards = TrackPredicate::transit(end, start);
        let sketch = sketch_of(&trace);
        // The documented over-approximation: both regions were visited, so
        // the sketch admits; the exact trace knows the order was wrong.
        assert!(backwards.admits_sketch(&sketch));
        assert!(!backwards.admits_trace(&trace));
    }

    #[test]
    fn filter_conjunction_and_empty_semantics() {
        let trace = diagonal_trace();
        let sketch = sketch_of(&trace);
        let empty = TrackFilter::default();
        assert!(empty.is_empty());
        assert!(empty.admits_trace(&trace));
        assert!(empty.admits_sketch(&sketch));
        let both = TrackFilter::new()
            .and(TrackPredicate::enters(Region::new(0.0, 0.0, 80.0, 80.0)))
            .and(TrackPredicate::speed_above(130.0));
        assert!(both.admits_trace(&trace));
        let contradiction = both.and(TrackPredicate::speed_above(10_000.0));
        assert!(!contradiction.admits_trace(&trace));
        assert!(!contradiction.admits_sketch(&sketch));
    }

    #[test]
    fn scope_rejection_list_and_merge() {
        let k = |s: u32, t: u64| TrackKey::new(StreamId(s), TrackId(t));
        let mut scope = TrackScope::from_rejected(vec![k(1, 3), k(0, 5), k(1, 3)]);
        assert_eq!(scope.rejected, vec![k(0, 5), k(1, 3)]);
        assert!(!scope.admits(k(0, 5)));
        assert!(scope.admits(k(0, 4)));
        assert!(scope.admits(k(2, 5)));
        let other = TrackScope::from_rejected(vec![k(2, 1), k(0, 5)]);
        scope.merge(&other);
        assert_eq!(scope.rejected, vec![k(0, 5), k(1, 3), k(2, 1)]);
    }

    #[test]
    fn predicates_roundtrip_through_serde() {
        let filter = TrackFilter::new()
            .and(TrackPredicate::transit(
                Region::new(0.0, 0.0, 160.0, 720.0),
                Region::new(600.0, 0.0, 1280.0, 720.0),
            ))
            .and(TrackPredicate::dwells(
                Region::new(0.0, 0.0, 100.0, 100.0),
                2.5,
            ));
        let json = serde_json::to_string(&filter).unwrap();
        let back: TrackFilter = serde_json::from_str(&json).unwrap();
        assert_eq!(filter, back);
        let scope = TrackScope::from_rejected(vec![TrackKey::new(StreamId(3), TrackId(9))]);
        let json = serde_json::to_string(&scope).unwrap();
        let back: TrackScope = serde_json::from_str(&json).unwrap();
        assert_eq!(scope, back);
    }
}
