//! The serial, single-query driver: one GT-CNN inference per matched
//! cluster, parallelised across the worker pool but neither batched nor
//! cached.
//!
//! [`QueryEngine`] is the reference implementation of the query path — the
//! concurrent [`QueryServer`](crate::query_server::QueryServer) is required
//! (and tested) to return byte-identical frames and objects while doing
//! strictly less GT-CNN work on overlapping workloads.

use std::sync::Arc;

use focus_cnn::{Classifier, GroundTruthCnn};
use focus_index::QueryFilter;
use focus_runtime::{GpuClusterSpec, GpuMeter, WorkerPool};
use focus_video::ClassId;

use crate::ingest::IngestOutput;
use crate::query::execute::{assemble_outcome, QueryOutcome};
use crate::query::plan::{QueryPlan, QueryRequest};

/// The query engine: owns the ground-truth CNN, the GPU-cluster model and
/// the worker pool that parallelises centroid classification.
///
/// Every call to [`query`](Self::query) re-verifies every matched centroid
/// with the GT-CNN, one inference at a time. For serving many (possibly
/// overlapping) queries, prefer
/// [`QueryServer`](crate::query_server::QueryServer), which deduplicates and
/// batches the centroid inferences and memoizes verdicts across queries.
///
/// # Examples
///
/// ```
/// use focus_core::prelude::*;
/// use focus_video::profile::profile_by_name;
///
/// let ds = focus_video::VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 20.0);
/// let ingest = IngestEngine::new(
///     IngestCnn::generic(focus_cnn::ModelSpec::cheap_cnn_1()),
///     IngestParams { k: 10, ..IngestParams::default() },
/// )
/// .ingest(&ds, &focus_runtime::GpuMeter::new());
///
/// let engine = QueryEngine::new(
///     focus_cnn::GroundTruthCnn::resnet152(),
///     focus_runtime::GpuClusterSpec::new(4),
/// );
/// let class = ds.dominant_classes(1)[0];
/// let outcome = engine.query(
///     &ingest,
///     class,
///     &focus_index::QueryFilter::any(),
///     &focus_runtime::GpuMeter::new(),
/// );
/// // The serial engine performs exactly one inference per matched cluster.
/// assert_eq!(outcome.centroid_inferences, outcome.matched_clusters);
/// ```
#[derive(Debug, Clone)]
pub struct QueryEngine {
    gt: Arc<GroundTruthCnn>,
    gpus: GpuClusterSpec,
    pool: WorkerPool,
}

impl QueryEngine {
    /// Creates a query engine around the given ground-truth CNN and GPU
    /// cluster.
    pub fn new(gt: GroundTruthCnn, gpus: GpuClusterSpec) -> Self {
        let pool = WorkerPool::new(gpus.num_gpus.clamp(1, 16));
        Self {
            gt: Arc::new(gt),
            gpus,
            pool,
        }
    }

    /// The GPU cluster serving queries.
    pub fn gpus(&self) -> GpuClusterSpec {
        self.gpus
    }

    /// The ground-truth CNN used to confirm centroids.
    pub fn ground_truth(&self) -> &GroundTruthCnn {
        &self.gt
    }

    /// Runs the query `class` over the ingested stream `ingest`, restricted
    /// by `filter`. GPU time is charged to `meter` under the phase
    /// `"query"`.
    pub fn query(
        &self,
        ingest: &IngestOutput,
        class: ClassId,
        filter: &QueryFilter,
        meter: &GpuMeter,
    ) -> QueryOutcome {
        // QT1/QT2: plan the candidate set from the top-K index.
        let request = QueryRequest::new(class).with_filter(filter.clone());
        let plan = QueryPlan::build(ingest, &request);

        // QT3: classify only the centroids with the GT-CNN, in parallel
        // across the worker pool — one un-batched inference each.
        let centroid_objects: Vec<_> = plan
            .candidates
            .iter()
            .map(|handle| {
                ingest
                    .centroids
                    .get(&handle.centroid)
                    .cloned()
                    .expect("ingest stored every centroid observation")
            })
            .collect();
        let gt = Arc::clone(&self.gt);
        let labels: Vec<ClassId> = self
            .pool
            .map(centroid_objects, move |obj| gt.classify_top1(obj));
        let inferences = labels.len();
        let gpu_cost = self.gt.cost_per_inference() * inferences;
        meter.charge("query", gpu_cost);

        // QT4: keep clusters confirmed by the GT-CNN and return their
        // frames.
        assemble_outcome(
            ingest,
            &plan,
            &labels,
            inferences,
            gpu_cost,
            self.gpus.latency_secs(gpu_cost),
        )
    }

    /// Runs several class queries and returns the outcomes in order.
    pub fn query_many(
        &self,
        ingest: &IngestOutput,
        classes: &[ClassId],
        filter: &QueryFilter,
        meter: &GpuMeter,
    ) -> Vec<QueryOutcome> {
        classes
            .iter()
            .map(|c| self.query(ingest, *c, filter, meter))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::GroundTruthLabels;
    use crate::ingest::{IngestCnn, IngestEngine, IngestParams};
    use focus_cnn::specialize::SpecializationLevel;
    use focus_cnn::{ModelSpec, SpecializedCnn};
    use focus_video::profile::profile_by_name;
    use focus_video::VideoDataset;

    fn dataset() -> VideoDataset {
        VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 120.0)
    }

    fn ingest_generic(ds: &VideoDataset, k: usize) -> IngestOutput {
        IngestEngine::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams {
                k,
                ..IngestParams::default()
            },
        )
        .ingest(ds, &GpuMeter::new())
    }

    fn ingest_specialized(ds: &VideoDataset, k: usize, ls: usize) -> IngestOutput {
        let gt = GroundTruthCnn::resnet152();
        let sample: Vec<_> = ds
            .objects()
            .map(|o| (o.clone(), gt.classify_top1(o)))
            .collect();
        let model = IngestCnn::specialized(
            SpecializedCnn::train(&ds.profile.name, SpecializationLevel::Medium, &sample, ls)
                .unwrap(),
        );
        IngestEngine::new(
            model,
            IngestParams {
                k,
                ..IngestParams::default()
            },
        )
        .ingest(ds, &GpuMeter::new())
    }

    #[test]
    fn query_returns_frames_of_dominant_class_with_high_accuracy() {
        let ds = dataset();
        let gt = GroundTruthCnn::resnet152();
        let labels = GroundTruthLabels::compute(&ds, &gt);
        let class = labels.dominant_classes(1)[0];
        let ingest = ingest_specialized(&ds, 2, 15);
        let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(10));
        let meter = GpuMeter::new();
        let outcome = engine.query(&ingest, class, &QueryFilter::any(), &meter);
        assert!(!outcome.frames.is_empty());
        assert!(outcome.confirmed_clusters <= outcome.matched_clusters);
        assert_eq!(outcome.centroid_inferences, outcome.matched_clusters);
        let report = labels.evaluate(class, &outcome.frames);
        assert!(report.recall > 0.8, "recall = {}", report.recall);
        assert!(report.precision > 0.8, "precision = {}", report.precision);
        // The meter was charged for the GT work.
        assert!((meter.phase("query").seconds() - outcome.gpu_cost.seconds()).abs() < 1e-9);
    }

    #[test]
    fn query_is_much_cheaper_than_classifying_every_object() {
        let ds = dataset();
        let ingest = ingest_specialized(&ds, 2, 15);
        let class = ds.dominant_classes(1)[0];
        let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(10));
        let outcome = engine.query(&ingest, class, &QueryFilter::any(), &GpuMeter::new());
        let query_all_cost =
            GroundTruthCnn::resnet152().cost_per_inference() * ingest.objects_total;
        assert!(
            outcome.gpu_cost.seconds() * 5.0 < query_all_cost.seconds(),
            "query cost {} vs query-all {}",
            outcome.gpu_cost.seconds(),
            query_all_cost.seconds()
        );
        assert!(outcome.latency_secs > 0.0);
        assert!(outcome.latency_secs < query_all_cost.seconds());
    }

    #[test]
    fn rare_class_query_goes_through_other() {
        let ds = dataset();
        let ingest = ingest_specialized(&ds, 2, 6);
        // Pick a class that occurs but was not specialized for.
        let hist = ds.class_histogram();
        let specialized = ingest.model.specialized_classes.clone().unwrap();
        let rare = hist
            .iter()
            .filter(|(c, _)| !specialized.contains(c))
            .max_by_key(|(_, n)| **n)
            .map(|(c, _)| *c);
        let Some(rare) = rare else {
            // Every observed class was specialized for; nothing to test.
            return;
        };
        let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(10));
        let outcome = engine.query(&ingest, rare, &QueryFilter::any(), &GpuMeter::new());
        // The OTHER path still finds the class (recall may be lower, but the
        // class must be reachable).
        assert!(outcome.matched_clusters > 0);
    }

    #[test]
    fn time_range_filter_limits_results() {
        let ds = dataset();
        let ingest = ingest_generic(&ds, 10);
        let class = ds.dominant_classes(1)[0];
        let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
        let all = engine.query(&ingest, class, &QueryFilter::any(), &GpuMeter::new());
        let first_half = engine.query(
            &ingest,
            class,
            &QueryFilter::any().with_time_range(0.0, 60.0),
            &GpuMeter::new(),
        );
        assert!(first_half.matched_clusters <= all.matched_clusters);
        assert!(first_half.frames.len() <= all.frames.len());
        for f in &first_half.frames {
            // Frames can extend slightly past the cut-off because clusters
            // only need to overlap the range, but they must start within it.
            assert!(f.0 <= (65.0 * ds.profile.fps as f64) as u64);
        }
    }

    #[test]
    fn dynamic_kx_trades_recall_for_latency() {
        let ds = dataset();
        let ingest = ingest_generic(&ds, 20);
        let class = ds.dominant_classes(1)[0];
        let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
        let full = engine.query(&ingest, class, &QueryFilter::any(), &GpuMeter::new());
        let narrow = engine.query(
            &ingest,
            class,
            &QueryFilter::any().with_kx(2),
            &GpuMeter::new(),
        );
        assert!(narrow.matched_clusters <= full.matched_clusters);
        assert!(narrow.gpu_cost <= full.gpu_cost);
    }

    #[test]
    fn query_for_absent_class_returns_nothing() {
        let ds = dataset();
        let ingest = ingest_generic(&ds, 4);
        let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
        // Class 850 is far outside the traffic palette's dominant classes;
        // even if a stray top-K posting matches, GT-CNN confirmation must
        // reject it.
        let outcome = engine.query(&ingest, ClassId(850), &QueryFilter::any(), &GpuMeter::new());
        assert_eq!(outcome.confirmed_clusters, 0);
        assert!(outcome.frames.is_empty());
        assert!(outcome.objects.is_empty());
    }

    #[test]
    fn query_many_preserves_order() {
        let ds = dataset();
        let ingest = ingest_generic(&ds, 10);
        let classes = ds.dominant_classes(3);
        let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
        let outcomes = engine.query_many(&ingest, &classes, &QueryFilter::any(), &GpuMeter::new());
        assert_eq!(outcomes.len(), 3);
        for (outcome, class) in outcomes.iter().zip(classes.iter()) {
            assert_eq!(outcome.class, *class);
        }
    }

    #[test]
    fn more_gpus_reduce_latency_not_cost() {
        let ds = dataset();
        let ingest = ingest_generic(&ds, 10);
        let class = ds.dominant_classes(1)[0];
        let few = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(2));
        let many = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(20));
        let a = few.query(&ingest, class, &QueryFilter::any(), &GpuMeter::new());
        let b = many.query(&ingest, class, &QueryFilter::any(), &GpuMeter::new());
        assert!((a.gpu_cost.seconds() - b.gpu_cost.seconds()).abs() < 1e-9);
        assert!(b.latency_secs < a.latency_secs);
        assert_eq!(few.gpus().num_gpus, 2);
    }
}
