//! Anytime query execution: adaptive-sampling GT verification with
//! incremental results.
//!
//! The exhaustive planner ([`SegmentedCorpus::plan_with_tail`]) verifies
//! *every* candidate centroid before returning anything, so for a
//! rare-class query over a deep archive, time-to-first-result equals
//! time-to-last-result. This module trades that all-at-once contract for
//! an ExSample-style anytime loop:
//!
//! 1. **Chunk** the candidate set — sealed segments give a natural
//!    partition for free ([`SegmentedCorpus::plan_anytime_with_tail`]
//!    keeps each segment's candidates as one chunk), and the not-yet-
//!    sealed hot tail is one more chunk.
//! 2. **Estimate** each chunk's probability of yielding a *new* distinct
//!    result object per GT inference, Good-Turing style: discovered
//!    distinct objects over fresh inferences spent, with an optimistic
//!    `+1/+1` prior so unsampled chunks look maximally promising
//!    ([`ChunkEstimate::yield_rate`]).
//! 3. **Loop** pick-chunk → verify-a-batch → update-estimate
//!    ([`run_anytime`]): each round verifies at most
//!    [`AnytimeMode::round_budget`] candidates from the most promising
//!    chunk through [`QueryServer::verify_round`] (phase `"anytime"`,
//!    so the shared [`GpuScheduler`] arbitrates it on the query side
//!    against exact queries and ingest), then emits an
//!    [`AnytimePartial`] carrying the round's newly discovered results
//!    and the updated estimate of what remains.
//!
//! The loop terminates on total-budget exhaustion, on the estimated
//! remaining-result fraction dropping to the confidence threshold, or on
//! candidate exhaustion — and in the exhaustion case the assembled
//! [`QueryOutcome`] is byte-identical (frames and objects) to the
//! exhaustive planner's, pinned by `tests/anytime_query.rs`.
//!
//! **Cache-hit accounting rule.** Anytime rounds share the cross-query
//! verdict cache: a verdict already cached is applied for free, still
//! confirms (or rejects) its cluster, and still surfaces results — but it
//! is *excluded* from the chunk estimators and from `inferences_spent`.
//! Only fresh GT inferences teach the sampler; a chunk whose candidates
//! were pre-verified by earlier queries neither looks artificially rich
//! (its results arrived without inference cost) nor artificially poor.
//!
//! [`GpuScheduler`]: focus_runtime::GpuScheduler
//! [`SegmentedCorpus::plan_with_tail`]: crate::query::segmented::SegmentedCorpus::plan_with_tail

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use focus_cnn::GpuCost;
use focus_index::{
    CentroidHandle, ClusterKey, ClusterRecord, SegmentAccess, SegmentError, TrackKey,
};
use focus_runtime::GpuMeter;
use focus_video::{ClassId, FrameId, ObjectId, ObjectObservation};

use crate::query::execute::assemble_outcome_from;
use crate::query::plan::{AnytimeMode, QueryPlan, QueryRequest};
use crate::query::segmented::{SegmentedCorpus, TailOverlay};
use crate::query::track::TrackScope;
use crate::query::QueryOutcome;
use crate::query_server::QueryServer;

/// Where one sampling chunk's candidates came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkSource {
    /// One sealed segment (by manifest id).
    Segment(u64),
    /// The in-memory hot tail (not-yet-sealed records).
    Tail,
}

/// One sampling chunk: a key-disjoint slice of the query's candidate set,
/// in cluster-key order.
#[derive(Debug, Clone)]
pub struct AnytimeChunk {
    /// The segment (or tail) this chunk's candidates live in.
    pub source: ChunkSource,
    /// Candidate centroids, sorted by cluster key.
    pub candidates: Vec<CentroidHandle>,
}

/// A chunked query plan: the exhaustive candidate set partitioned into
/// per-segment chunks (plus one tail chunk), with the records backing
/// every candidate. Built by
/// [`SegmentedCorpus::plan_anytime_with_tail`]; consumed by
/// [`run_anytime`].
#[derive(Debug)]
pub struct AnytimePlan {
    /// The class the user queried.
    pub class: ClassId,
    /// The class the default model routes the query through.
    pub lookup_class: ClassId,
    /// The candidate partition: one chunk per contributing segment
    /// (manifest-id order) plus, when non-empty, the tail chunk last.
    pub chunks: Vec<AnytimeChunk>,
    /// The cluster record behind every candidate, keyed by cluster key.
    pub records: HashMap<ClusterKey, ClusterRecord>,
    /// What the pruned lookup touched.
    pub access: SegmentAccess,
    /// Candidates resolved from the tail overlay (the tail chunk's size).
    pub tail_records: usize,
    /// The planner's track-sketch verdict, applied to member assembly in
    /// every round exactly as the exhaustive path applies it.
    pub track_scope: TrackScope,
}

impl AnytimePlan {
    /// Total candidates across all chunks (the exhaustive plan's
    /// `matched_clusters`).
    pub fn total_candidates(&self) -> usize {
        self.chunks.iter().map(|c| c.candidates.len()).sum()
    }

    /// The equivalent exhaustive [`QueryPlan`]: all chunks flattened and
    /// sorted by cluster key — exactly what
    /// [`SegmentedCorpus::plan_with_tail`] would have produced.
    ///
    /// [`SegmentedCorpus::plan_with_tail`]: crate::query::segmented::SegmentedCorpus::plan_with_tail
    pub fn exhaustive_plan(&self) -> QueryPlan {
        let mut candidates: Vec<CentroidHandle> = self
            .chunks
            .iter()
            .flat_map(|c| c.candidates.iter().copied())
            .collect();
        candidates.sort_by_key(|h| h.cluster);
        QueryPlan {
            class: self.class,
            lookup_class: self.lookup_class,
            candidates,
            track_scope: self.track_scope.clone(),
        }
    }
}

impl SegmentedCorpus {
    /// Plans one query for anytime execution: the same pruned
    /// segments-plus-tail lookup as
    /// [`plan_with_tail`](Self::plan_with_tail), but keeping each
    /// segment's candidates as a separate sampling chunk instead of
    /// flattening them. The union of the chunks is byte-identical to the
    /// exhaustive plan's candidate set (segments are key-disjoint and the
    /// tail is asserted disjoint from them), so
    /// [`AnytimePlan::exhaustive_plan`] reproduces
    /// [`plan_with_tail`](Self::plan_with_tail) exactly.
    pub fn plan_anytime_with_tail(
        &self,
        request: &QueryRequest,
        tail: Option<&TailOverlay>,
    ) -> Result<AnytimePlan, SegmentError> {
        let classes = self.lookup_classes(request.class, &request.filter);
        let mut access = SegmentAccess::default();
        // A record can match under more than one lookup class (its top-K
        // holds both the class and OTHER), but always lives in exactly one
        // segment — so per-segment key-dedupe reproduces the exhaustive
        // planner's global dedupe.
        let mut by_segment: BTreeMap<u64, BTreeMap<ClusterKey, ClusterRecord>> = BTreeMap::new();
        let mut tail_hits: BTreeMap<ClusterKey, ClusterRecord> = BTreeMap::new();
        for &lookup_class in &classes {
            let grouped = self.store().lookup_grouped(lookup_class, &request.filter)?;
            access.merge(&grouped.access);
            for (segment, records) in grouped.groups {
                let chunk = by_segment.entry(segment).or_default();
                for record in records {
                    chunk.insert(record.key, record);
                }
            }
            if let Some(tail) = tail {
                for record in tail.lookup(lookup_class, &request.filter) {
                    tail_hits.insert(record.key, record);
                }
            }
        }
        let track_scope = self.track_scope_with_tail(request, tail, &mut access)?;
        if !track_scope.is_empty() {
            // Same intersection-before-verification rule as the exhaustive
            // planner: all-rejected candidates never reach a sampling chunk.
            let admits = |record: &ClusterRecord| {
                record
                    .members
                    .iter()
                    .any(|m| track_scope.admits(TrackKey::new(record.key.stream, m.track)))
            };
            for chunk in by_segment.values_mut() {
                chunk.retain(|_, record| admits(record));
            }
            tail_hits.retain(|_, record| admits(record));
        }
        let mut chunks = Vec::with_capacity(by_segment.len() + 1);
        let mut records: HashMap<ClusterKey, ClusterRecord> = HashMap::new();
        for (segment, chunk_records) in by_segment {
            if chunk_records.is_empty() {
                continue;
            }
            let candidates = chunk_records.values().map(handle_of).collect();
            chunks.push(AnytimeChunk {
                source: ChunkSource::Segment(segment),
                candidates,
            });
            records.extend(chunk_records);
        }
        let tail_records = tail_hits.len();
        if !tail_hits.is_empty() {
            let candidates = tail_hits.values().map(handle_of).collect();
            chunks.push(AnytimeChunk {
                source: ChunkSource::Tail,
                candidates,
            });
            for (key, record) in tail_hits {
                assert!(
                    records.insert(key, record).is_none(),
                    "tail and segment records must be key-disjoint"
                );
            }
        }
        Ok(AnytimePlan {
            class: request.class,
            lookup_class: self.model.effective_query_class(request.class),
            chunks,
            records,
            access,
            tail_records,
            track_scope,
        })
    }
}

fn handle_of(record: &ClusterRecord) -> CentroidHandle {
    CentroidHandle {
        cluster: record.key,
        centroid: record.centroid_object,
        centroid_frame: record.centroid_frame,
    }
}

/// One round's emission from the anytime loop: what was newly discovered,
/// what it cost, and how much is estimated to remain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnytimePartial {
    /// Distinct matching objects first discovered this round, sorted.
    pub new_results: Vec<ObjectId>,
    /// Frames first covered by a matching object this round, sorted.
    pub new_frames: Vec<FrameId>,
    /// Fresh GT-CNN inferences this round spent (cache hits excluded).
    pub inferences_spent: usize,
    /// Verdicts this round applied for free from the cross-query cache —
    /// accounted separately so they never distort chunk estimates.
    pub cached_verdicts: usize,
    /// Estimated fraction of the query's distinct results still
    /// undiscovered (`0.0` once every candidate is verified).
    pub est_remaining_frac: f64,
    /// GPU wall-clock latency of this round's verification batch.
    pub latency_secs: f64,
}

/// Why the anytime loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnytimeTermination {
    /// The total fresh-inference budget was spent.
    BudgetExhausted,
    /// The estimated remaining-result fraction dropped to the confidence
    /// threshold.
    ConfidenceReached,
    /// Every candidate was verified; the outcome equals the exhaustive
    /// planner's.
    CandidatesExhausted,
}

/// The anytime loop's final product: the assembled outcome over every
/// verified candidate, the per-round partial trail, and the separated
/// fresh/cached accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct AnytimeOutcome {
    /// Outcome assembled over the verified candidates (all of them when
    /// `termination` is [`AnytimeTermination::CandidatesExhausted`], in
    /// which case frames and objects are byte-identical to the exhaustive
    /// planner's).
    pub outcome: QueryOutcome,
    /// One entry per verification round, in order.
    pub partials: Vec<AnytimePartial>,
    /// Why the loop stopped.
    pub termination: AnytimeTermination,
    /// Total fresh GT inferences across all rounds (equals the sum of the
    /// partials' `inferences_spent` and the meter's `"anytime"` charge in
    /// inferences).
    pub fresh_inferences: usize,
    /// Total free cache-hit verdicts across all rounds.
    pub cached_verdicts: usize,
}

/// One chunk's sampling state, visible to pluggable pickers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEstimate {
    /// Candidates not yet verified in this chunk.
    pub remaining: usize,
    /// Fresh GT inferences spent on this chunk so far.
    pub sampled: usize,
    /// Distinct new result objects those fresh inferences surfaced.
    pub discovered: usize,
}

impl ChunkEstimate {
    /// Good-Turing-style estimate of new distinct objects per additional
    /// GT inference on this chunk, with an optimistic `+1/+1` prior: an
    /// unsampled chunk scores `1.0`, and the score decays toward the
    /// observed discovery rate as fresh samples accumulate.
    pub fn yield_rate(&self) -> f64 {
        (self.discovered as f64 + 1.0) / (self.sampled as f64 + 1.0)
    }
}

/// Estimated fraction of distinct results still undiscovered: expected
/// new objects from the remaining candidates (each chunk's yield rate
/// times its remaining count) over found-plus-expected.
fn est_remaining_frac(estimates: &[ChunkEstimate], found: usize) -> f64 {
    let expected: f64 = estimates
        .iter()
        .filter(|e| e.remaining > 0)
        .map(|e| e.yield_rate() * e.remaining as f64)
        .sum();
    if expected == 0.0 {
        0.0
    } else {
        expected / (found as f64 + expected)
    }
}

/// The default chunk picker: highest [`ChunkEstimate::yield_rate`] among
/// chunks with remaining candidates, lowest index on ties (deterministic).
pub fn pick_most_promising(estimates: &[ChunkEstimate]) -> usize {
    let mut best = usize::MAX;
    let mut best_rate = f64::NEG_INFINITY;
    for (i, est) in estimates.iter().enumerate() {
        if est.remaining == 0 {
            continue;
        }
        let rate = est.yield_rate();
        if rate > best_rate {
            best_rate = rate;
            best = i;
        }
    }
    assert!(best != usize::MAX, "picker called with no remaining work");
    best
}

/// Runs the anytime pick-chunk → verify-a-batch → update-estimate loop
/// over a chunked plan with the default
/// [`pick_most_promising`] policy, calling `on_partial` after every round.
///
/// GT work goes through [`QueryServer::verify_round`] under the
/// `"anytime"` phase of `meter`; the caller submits that phase to the
/// shared scheduler (the live service does this in
/// [`FocusService::serve_anytime`]).
///
/// [`FocusService::serve_anytime`]: crate::service::FocusService::serve_anytime
pub fn run_anytime(
    server: &QueryServer,
    plan: &AnytimePlan,
    mode: &AnytimeMode,
    resolve_centroid: impl Fn(ObjectId) -> Option<ObjectObservation>,
    meter: &GpuMeter,
    on_partial: impl FnMut(&AnytimePartial),
) -> AnytimeOutcome {
    run_anytime_with_picker(
        server,
        plan,
        mode,
        resolve_centroid,
        meter,
        on_partial,
        pick_most_promising,
    )
}

/// [`run_anytime`] with an explicit chunk-pick policy. The picker is
/// handed every chunk's current [`ChunkEstimate`] and must return the
/// index of a chunk with `remaining > 0`; correctness (exhaustion
/// byte-identity, accounting) holds for *any* such policy — only the
/// results-per-inference curve depends on it (`tests/anytime_query.rs`
/// exercises arbitrary pick orders).
///
/// # Panics
///
/// Panics if the picker returns an out-of-range index or a chunk with no
/// remaining candidates.
pub fn run_anytime_with_picker(
    server: &QueryServer,
    plan: &AnytimePlan,
    mode: &AnytimeMode,
    resolve_centroid: impl Fn(ObjectId) -> Option<ObjectObservation>,
    meter: &GpuMeter,
    mut on_partial: impl FnMut(&AnytimePartial),
    mut pick: impl FnMut(&[ChunkEstimate]) -> usize,
) -> AnytimeOutcome {
    let round_budget = mode.round_budget.max(1);
    let mut estimates: Vec<ChunkEstimate> = plan
        .chunks
        .iter()
        .map(|c| ChunkEstimate {
            remaining: c.candidates.len(),
            sampled: 0,
            discovered: 0,
        })
        .collect();
    let mut cursors = vec![0usize; plan.chunks.len()];
    let mut verdicts: HashMap<ClusterKey, ClassId> = HashMap::new();
    let mut seen_objects: BTreeSet<ObjectId> = BTreeSet::new();
    let mut seen_frames: BTreeSet<FrameId> = BTreeSet::new();
    let mut partials: Vec<AnytimePartial> = Vec::new();
    let mut total_fresh = 0usize;
    let mut total_cached = 0usize;
    let mut total_cost = GpuCost::ZERO;
    let mut total_latency = 0.0f64;

    let termination = loop {
        if estimates.iter().all(|e| e.remaining == 0) {
            break AnytimeTermination::CandidatesExhausted;
        }
        if mode.max_inferences > 0 && total_fresh >= mode.max_inferences {
            break AnytimeTermination::BudgetExhausted;
        }
        let chunk_idx = pick(&estimates);
        let est = &estimates[chunk_idx];
        assert!(
            est.remaining > 0,
            "picker must choose a chunk with remaining candidates"
        );
        // Cap the round so fresh inferences can never overshoot the total
        // budget (every batched candidate costs at most one).
        let mut take = round_budget.min(est.remaining);
        if mode.max_inferences > 0 {
            take = take.min(mode.max_inferences - total_fresh);
        }
        let cursor = cursors[chunk_idx];
        let batch = &plan.chunks[chunk_idx].candidates[cursor..cursor + take];
        let ids: Vec<ObjectId> = batch.iter().map(|h| h.centroid).collect();
        let verified = server.verify_round(&ids, &resolve_centroid, meter, "anytime");

        let mut new_objects: BTreeSet<ObjectId> = BTreeSet::new();
        let mut new_frames: BTreeSet<FrameId> = BTreeSet::new();
        for (i, handle) in batch.iter().enumerate() {
            verdicts.insert(handle.cluster, verified.labels[i]);
            let fresh = verified.fresh_mask[i];
            if fresh {
                estimates[chunk_idx].sampled += 1;
            }
            if verified.labels[i] != plan.class {
                continue;
            }
            let record = plan
                .records
                .get(&handle.cluster)
                .expect("planned cluster resolved by the planner");
            for member in &record.members {
                // Same member-level track filtering as exhaustive assembly
                // (`assemble_outcome_from`), so partial results never leak
                // a rejected track's frames.
                if !plan
                    .track_scope
                    .admits(TrackKey::new(handle.cluster.stream, member.track))
                {
                    continue;
                }
                if seen_objects.insert(member.object) {
                    new_objects.insert(member.object);
                    // Only fresh inferences teach the sampler; results a
                    // cache hit surfaced were already paid for elsewhere.
                    if fresh {
                        estimates[chunk_idx].discovered += 1;
                    }
                }
                if seen_frames.insert(member.frame) {
                    new_frames.insert(member.frame);
                }
            }
        }
        cursors[chunk_idx] += take;
        estimates[chunk_idx].remaining -= take;
        total_fresh += verified.fresh_inferences;
        total_cached += verified.cached_verdicts;
        total_cost += verified.cost;
        total_latency += verified.latency_secs;

        let frac = est_remaining_frac(&estimates, seen_objects.len());
        let partial = AnytimePartial {
            new_results: new_objects.into_iter().collect(),
            new_frames: new_frames.into_iter().collect(),
            inferences_spent: verified.fresh_inferences,
            cached_verdicts: verified.cached_verdicts,
            est_remaining_frac: frac,
            latency_secs: verified.latency_secs,
        };
        on_partial(&partial);
        partials.push(partial);

        if estimates.iter().all(|e| e.remaining == 0) {
            break AnytimeTermination::CandidatesExhausted;
        }
        if mode.confidence_remaining > 0.0 && frac <= mode.confidence_remaining {
            break AnytimeTermination::ConfidenceReached;
        }
        if mode.max_inferences > 0 && total_fresh >= mode.max_inferences {
            break AnytimeTermination::BudgetExhausted;
        }
    };

    // Assemble over the verified prefix of the exhaustive plan: at
    // candidate exhaustion this is the whole plan in cluster-key order,
    // so frames and objects are byte-identical to the exhaustive path.
    let exhaustive = plan.exhaustive_plan();
    let mut candidates = Vec::new();
    let mut ordered_verdicts = Vec::new();
    for handle in &exhaustive.candidates {
        if let Some(label) = verdicts.get(&handle.cluster) {
            candidates.push(*handle);
            ordered_verdicts.push(*label);
        }
    }
    let verified_plan = QueryPlan {
        class: plan.class,
        lookup_class: plan.lookup_class,
        candidates,
        track_scope: plan.track_scope.clone(),
    };
    let outcome = assemble_outcome_from(
        &verified_plan,
        &ordered_verdicts,
        total_fresh,
        total_cost,
        total_latency,
        |handle| {
            plan.records
                .get(&handle.cluster)
                .expect("planned cluster resolved by the planner")
        },
    );
    AnytimeOutcome {
        outcome,
        partials,
        termination,
        fresh_inferences: total_fresh,
        cached_verdicts: total_cached,
    }
}
