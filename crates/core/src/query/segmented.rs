//! Pruned query planning over a durable [`SegmentStore`] (QT1/QT2 with
//! segment pruning).
//!
//! A monolithic in-memory index answers every lookup by scanning its full
//! postings list. Over a segmented corpus, a query with a camera/time
//! restriction first prunes at the *segment* level — only segments whose
//! manifest bounds intersect the filter are opened (lazily, through the
//! store's LRU) — and then applies the ordinary per-record filter inside
//! each opened segment. The result is proven byte-identical to planning
//! against the merged in-memory index while opening strictly fewer segments
//! on time-restricted workloads (`tests/segment_durability.rs`).
//!
//! [`SegmentedCorpus`] is the query-side view of a segmented ingest run:
//! the store plus the centroid observations and ingest model the
//! verification stage needs. [`QueryServer::serve_segmented`] consumes its
//! plans with the same dedupe/batch/cache machinery as the in-memory path.
//!
//! **Live overlay** — a long-lived service also holds records that are not
//! yet sealed to any segment (the hot tail of each stream's pipeline).
//! [`TailOverlay`] is that in-memory tail as a resolvable index, and
//! [`SegmentedCorpus::plan_with_tail`] plans one query over the union of
//! sealed segments *plus* the overlay — the LSM-style memtable + SSTable
//! read path the [`FocusService`](crate::service::FocusService) serves
//! from. Tail records and segment records are key-disjoint by construction
//! (a stream's pipeline only drains keys it has never drained before), so
//! the union needs no reconciliation and is byte-identical to sealing the
//! tail first and planning over segments alone.
//!
//! [`QueryServer::serve_segmented`]: crate::query_server::QueryServer::serve_segmented

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use focus_cnn::OTHER_CLASS;
use focus_index::{
    ClusterKey, ClusterRecord, QueryFilter, SegmentAccess, SegmentError, SegmentStore, TopKIndex,
    TrackKey,
};
use focus_video::{ClassId, ObjectId, ObjectObservation, StreamId};

use crate::ingest::IngestCnn;
use crate::query::plan::{QueryPlan, QueryRequest};
use crate::query::track::TrackScope;
use crate::segment_ingest::SegmentedIngestOutput;

/// The not-yet-sealed tail of a live corpus: cluster records drained from
/// pipelines' [`peek_segment`](crate::pipeline::FramePipeline::peek_segment)
/// snapshots, plus the centroid observations backing them.
///
/// An overlay is assembled fresh per serve call (one `peek` per stream),
/// which is what makes serving snapshot-consistent: every query of the call
/// sees the same tail instant.
#[derive(Debug, Default)]
pub struct TailOverlay {
    index: TopKIndex,
    centroids: HashMap<ObjectId, ObjectObservation>,
}

impl TailOverlay {
    /// An empty overlay (serving over it degenerates to the plain segmented
    /// path).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one stream's tail snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the part shares a cluster key with a previously added part
    /// (per-stream keys are disjoint by construction; a collision means two
    /// snapshots of the same stream were added).
    pub fn add_part(&mut self, index: TopKIndex, centroids: HashMap<ObjectId, ObjectObservation>) {
        let replaced = self.index.merge(index);
        assert_eq!(replaced, 0, "tail parts must be key-disjoint");
        self.centroids.extend(centroids);
    }

    /// Records currently in the tail.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the tail holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The tail's records as an index.
    pub fn index(&self) -> &TopKIndex {
        &self.index
    }

    /// The centroid observation behind a tail record, if present.
    pub fn centroid(&self, id: ObjectId) -> Option<&ObjectObservation> {
        self.centroids.get(&id)
    }

    /// Tail records matching `class` under `filter`, cloned and sorted by
    /// cluster key — the same contract as a segment lookup.
    pub fn lookup(&self, class: ClassId, filter: &QueryFilter) -> Vec<ClusterRecord> {
        self.index
            .lookup(class, filter)
            .into_iter()
            .cloned()
            .collect()
    }
}

/// The query-side view of a segmented corpus: the durable store plus the
/// centroid observations (what the GT-CNN classifies) and the ingest model
/// (for specialized-class → OTHER routing).
///
/// # Examples
///
/// ```
/// use focus_core::prelude::*;
/// use focus_core::query::QueryRequest;
/// use focus_core::query::segmented::SegmentedCorpus;
/// use focus_core::segment_ingest::{SealPolicy, SegmentedIngest};
/// use focus_index::{QueryFilter, SegmentStore};
/// use focus_video::profile::profile_by_name;
///
/// let ds = focus_video::VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 40.0);
/// let dir = std::env::temp_dir().join("focus_segmented_corpus_doc");
/// let _ = std::fs::remove_dir_all(&dir);
/// let mut store = SegmentStore::create(&dir).unwrap();
/// let output = SegmentedIngest::new(
///     IngestCnn::generic(focus_cnn::ModelSpec::cheap_cnn_1()),
///     IngestParams { k: 10, ..IngestParams::default() },
///     SealPolicy::every_secs(10.0),
///     1,
/// )
/// .ingest_to_store(std::slice::from_ref(&ds), &mut store, &focus_runtime::GpuMeter::new())
/// .unwrap();
///
/// let corpus = SegmentedCorpus::from_output(store, &output);
/// let class = ds.dominant_classes(1)[0];
/// // A query restricted to the first quarter of the stream opens one of
/// // the four segments and prunes the rest.
/// let request = QueryRequest::new(class)
///     .with_filter(QueryFilter::any().with_time_range(0.0, 9.0));
/// let planned = corpus.plan(&request).unwrap();
/// assert!(planned.access.segments_considered <= 1);
/// assert_eq!(planned.access.segments_total, 4);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug)]
pub struct SegmentedCorpus {
    store: SegmentStore,
    /// The centroid observation of every cluster, keyed by object id — the
    /// only objects the GT-CNN touches at query time.
    pub centroids: HashMap<ObjectId, ObjectObservation>,
    /// The ingest model the corpus was built with; the routing default for
    /// streams with no per-stream override.
    pub model: IngestCnn,
    /// Per-stream model overrides: a live service that specializes each
    /// stream's ingest CNN independently routes that stream's queries
    /// through its own OTHER handling (§4.3) instead of the default
    /// model's. Empty for single-model corpora.
    pub stream_models: HashMap<StreamId, IngestCnn>,
    /// The folded routing of every superseded per-stream specialized
    /// model (earlier retrain / reconfiguration generations). Records
    /// they indexed are still in the store under *their* routing — e.g. a
    /// class the old model mapped to OTHER that the current model
    /// specializes for — so their lookup classes must stay in the scan
    /// set or a stream's older epochs silently vanish from query results
    /// (`retiring_models_keeps_older_epochs_reachable` pins this).
    /// Install successors via
    /// [`install_stream_model`](Self::install_stream_model). Generic
    /// models never need retiring: they route every class to itself,
    /// which the default-model lookup already covers.
    pub retired_routes: HashMap<StreamId, RetiredRouting>,
}

/// The query-routing summary of every retired specialized model of one
/// stream, folded into `O(classes)` state instead of a list of models: it
/// reproduces exactly the lookup classes the full model list would
/// contribute — a retired model specialized *for* the queried class
/// contributes the class itself, one specialized *without* it contributes
/// OTHER — while staying bounded (and serializable, so a recovered
/// service keeps scanning its older epochs correctly; the durable-sidecar
/// round trip is pinned in `tests/adaptive_drift.rs`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RetiredRouting {
    /// Specialized generations folded in.
    pub generations: usize,
    /// Classes specialized by at least one retired generation, sorted.
    pub specialized_union: Vec<ClassId>,
    /// Classes specialized by *every* retired generation, sorted. A query
    /// for any class outside this set must also scan OTHER (some retired
    /// generation indexed that class's records there).
    pub specialized_intersection: Vec<ClassId>,
}

impl RetiredRouting {
    /// Folds one more retired generation's specialized class set in.
    pub fn retire(&mut self, specialized_classes: &[ClassId]) {
        let mut classes: Vec<ClassId> = specialized_classes.to_vec();
        classes.sort();
        classes.dedup();
        if self.generations == 0 {
            self.specialized_union = classes.clone();
            self.specialized_intersection = classes;
        } else {
            self.specialized_union.extend(classes.iter().copied());
            self.specialized_union.sort();
            self.specialized_union.dedup();
            self.specialized_intersection
                .retain(|c| classes.binary_search(c).is_ok());
        }
        self.generations += 1;
    }

    /// Appends the lookup classes the retired generations contribute for
    /// a query of `class` (none while no generation is folded in).
    fn extend_lookup_classes(&self, class: ClassId, out: &mut Vec<ClassId>) {
        if self.generations == 0 {
            return;
        }
        if self.specialized_union.binary_search(&class).is_ok() {
            out.push(class);
        }
        if self.specialized_intersection.binary_search(&class).is_err() {
            out.push(OTHER_CLASS);
        }
    }
}

impl SegmentedCorpus {
    /// Builds a corpus from a store and explicit centroid/model state.
    pub fn new(
        store: SegmentStore,
        centroids: HashMap<ObjectId, ObjectObservation>,
        model: IngestCnn,
    ) -> Self {
        Self {
            store,
            centroids,
            model,
            stream_models: HashMap::new(),
            retired_routes: HashMap::new(),
        }
    }

    /// Installs a new routing model for one stream, retiring the previous
    /// override's routing so the classes it indexed records under stay in
    /// the scan set (only specialized predecessors matter — a generic
    /// model's routing is covered by the default model). This is the path
    /// every retrain and drift reconfiguration goes through.
    pub fn install_stream_model(&mut self, stream: StreamId, model: IngestCnn) {
        if let Some(previous) = self.stream_models.insert(stream, model) {
            if let Some(classes) = previous.specialized_classes.as_deref() {
                self.retired_routes
                    .entry(stream)
                    .or_default()
                    .retire(classes);
            }
        }
    }

    /// Builds a corpus from a segmented ingest run, cloning the centroid
    /// map and model from its combined output.
    pub fn from_output(store: SegmentStore, output: &SegmentedIngestOutput) -> Self {
        Self::new(
            store,
            output.combined.centroids.clone(),
            output.combined.model.clone(),
        )
    }

    /// The underlying segment store.
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }

    /// Mutable access to the store, for maintenance
    /// ([`compact`](SegmentStore::compact)).
    pub fn store_mut(&mut self) -> &mut SegmentStore {
        &mut self.store
    }

    /// The class a query for `class` looks up for records `stream`'s
    /// *current* model would index: the stream's own model override when
    /// one exists, the corpus default otherwise (specialized models map
    /// un-specialized classes through OTHER, §4.3).
    ///
    /// Routing only ever *expands* the set of classes
    /// [`plan_with_tail`](Self::plan_with_tail) scans — it is never used
    /// to drop records, because a stream's sealed history may have been
    /// indexed under earlier models with different routing (pre-retrain
    /// epochs post under the class itself, post-retrain epochs under
    /// OTHER). Ground-truth verification keeps precision regardless of
    /// which lookup class surfaced a candidate.
    pub fn route(&self, stream: StreamId, class: ClassId) -> ClassId {
        self.stream_models
            .get(&stream)
            .unwrap_or(&self.model)
            .effective_query_class(class)
    }

    /// The distinct lookup classes a query for `class` must scan, across
    /// the default model and the per-stream overrides the query's camera
    /// restriction can actually reach — an override on a stream the filter
    /// excludes cannot contribute records, so its routing must not inflate
    /// the scan (extra lookup classes cost segment opens and GT
    /// verifications). One entry for a single-model corpus; at most two
    /// (the class itself and OTHER) in practice.
    pub fn lookup_classes(&self, class: ClassId, filter: &QueryFilter) -> Vec<ClassId> {
        let reachable = |stream: &StreamId| {
            filter
                .streams
                .as_ref()
                .is_none_or(|streams| streams.contains(stream))
        };
        let mut classes = vec![self.model.effective_query_class(class)];
        classes.extend(
            self.stream_models
                .iter()
                .filter(|(stream, _)| reachable(stream))
                .map(|(_, model)| model.effective_query_class(class)),
        );
        // Earlier model generations of a reachable stream may have indexed
        // the class under a different routing (typically OTHER); their
        // records are still in the store and must stay findable.
        for (_, routing) in self
            .retired_routes
            .iter()
            .filter(|(stream, _)| reachable(stream))
        {
            routing.extend_lookup_classes(class, &mut classes);
        }
        classes.sort();
        classes.dedup();
        classes
    }

    /// Plans one query with segment pruning (QT1/QT2): routes the class
    /// through the model's OTHER handling, opens only the segments whose
    /// bounds intersect the filter, and returns the plan together with the
    /// records backing every candidate (for QT4 assembly) and the access
    /// account (for storage-cost accounting).
    pub fn plan(&self, request: &QueryRequest) -> Result<SegmentedPlan, SegmentError> {
        self.plan_with_tail(request, None)
    }

    /// Like [`plan`](Self::plan), but over the union of the sealed
    /// segments and an in-memory [`TailOverlay`] of not-yet-sealed records
    /// — the live service's read path. With `None` (or an empty overlay)
    /// this is exactly [`plan`](Self::plan).
    ///
    /// Candidates come back sorted by cluster key across both sources, and
    /// tail/segment key-disjointness is asserted, so the plan is
    /// byte-identical to sealing the tail into the store first and
    /// planning over segments alone (`tests/live_service.rs` pins this).
    /// Segment opens are unchanged by the overlay: the tail is resolved
    /// from memory, never from disk.
    ///
    /// With per-stream model overrides, the candidate set is the union of
    /// every lookup class's matches (deduplicated by key — a record whose
    /// top-K contains both the class and OTHER matches twice). Records
    /// indexed under an *earlier* model's routing therefore stay
    /// reachable after a retrain: hiding them behind the current model's
    /// routing would silently drop a stream's pre-retrain history. OTHER
    /// candidates that are not actually the queried class cost a GT
    /// verification, not a wrong answer.
    pub fn plan_with_tail(
        &self,
        request: &QueryRequest,
        tail: Option<&TailOverlay>,
    ) -> Result<SegmentedPlan, SegmentError> {
        let classes = self.lookup_classes(request.class, &request.filter);
        self.plan_with_tail_scoped(request, tail, &classes, true, true)
    }

    /// The planner's verdict on the request's track filter: the whole-life
    /// sketch of every track on a filter-admitted stream (absorb-merged
    /// across every sealed segment plus the tail overlay — deliberately
    /// *not* time-pruned, since a truncated sketch would not be
    /// conservative), evaluated against the filter's predicates. Sketch
    /// loads are charged to `access`.
    pub(crate) fn track_scope_with_tail(
        &self,
        request: &QueryRequest,
        tail: Option<&TailOverlay>,
        access: &mut SegmentAccess,
    ) -> Result<TrackScope, SegmentError> {
        if request.tracks.is_empty() {
            return Ok(TrackScope::default());
        }
        let (mut sketches, sketch_access) = self.store.sketches(&request.filter)?;
        access.merge(&sketch_access);
        if let Some(tail) = tail {
            for sketch in tail.index().sketches() {
                match sketches.get_mut(&sketch.key) {
                    Some(merged) => merged.absorb(sketch),
                    None => {
                        sketches.insert(sketch.key, sketch.clone());
                    }
                }
            }
        }
        Ok(request
            .tracks
            .scope_over(&request.filter, sketches.values()))
    }

    /// Like [`plan_with_tail`](Self::plan_with_tail), but scanning an
    /// explicit lookup-class set instead of this corpus's own routing —
    /// the scatter seam of a multi-node fleet. One shard only knows the
    /// per-stream models of *its* streams; a coordinator must union the
    /// lookup classes across every shard (a class another shard's override
    /// routes through OTHER may have posted records here under OTHER too)
    /// and plan each shard with the global set, or records a single-node
    /// service would surface silently vanish from scattered queries.
    ///
    /// `prune_segments: false` disables segment-level bound pruning and
    /// opens every segment indexing a lookup class — the broadcast
    /// baseline. Record-level filtering is unchanged, so the candidates
    /// are byte-identical either way (a segment whose bounds miss the
    /// filter holds only records that miss it too); only the access
    /// account differs.
    ///
    /// `prune_tracks: false` disables track-sketch candidate pruning: the
    /// plan keeps every class-matched candidate (and so verifies every one
    /// of them against the GT CNN) but still carries the same
    /// [`TrackScope`], so member filtering at assembly — and therefore the
    /// outcome's frames and objects — is byte-identical to the pruned
    /// plan's (`tests/track_queries.rs` pins this). It is the
    /// intersection-before-verification baseline; production paths pass
    /// `true`.
    pub fn plan_with_tail_scoped(
        &self,
        request: &QueryRequest,
        tail: Option<&TailOverlay>,
        lookup_classes: &[ClassId],
        prune_segments: bool,
        prune_tracks: bool,
    ) -> Result<SegmentedPlan, SegmentError> {
        let open_filter = if prune_segments {
            request.filter.clone()
        } else {
            // Keep record-level stream/time/kx semantics but defeat the
            // segment-bound prune by scanning with an unbounded filter and
            // re-applying the real one per record below.
            QueryFilter {
                kx: request.filter.kx,
                ..QueryFilter::any()
            }
        };
        let mut access = SegmentAccess::default();
        let mut merged: BTreeMap<ClusterKey, ClusterRecord> = BTreeMap::new();
        let mut tail_hits: BTreeMap<ClusterKey, ClusterRecord> = BTreeMap::new();
        for &lookup_class in lookup_classes {
            let lookup = self.store.lookup(lookup_class, &open_filter)?;
            access.merge(&lookup.access);
            let mut records = lookup.records;
            if !prune_segments {
                records.retain(|record| request.filter.admits(record));
            }
            for record in records {
                merged.insert(record.key, record);
            }
            if let Some(tail) = tail {
                for record in tail.lookup(lookup_class, &request.filter) {
                    tail_hits.insert(record.key, record);
                }
            }
        }
        let tail_keys: Vec<ClusterKey> = tail_hits.keys().copied().collect();
        for (key, record) in tail_hits {
            assert!(
                merged.insert(key, record).is_none(),
                "tail and segment records must be key-disjoint"
            );
        }
        let track_scope = self.track_scope_with_tail(request, tail, &mut access)?;
        if prune_tracks && !track_scope.is_empty() {
            // Intersection before verification: a candidate whose members
            // all belong to sketch-rejected tracks can contribute nothing
            // after member filtering, so verifying its centroid would be a
            // wasted GT inference.
            merged.retain(|key, record| {
                record
                    .members
                    .iter()
                    .any(|m| track_scope.admits(TrackKey::new(key.stream, m.track)))
            });
        }
        let tail_records = tail_keys.iter().filter(|k| merged.contains_key(k)).count();
        let candidates = merged
            .values()
            .map(|record| focus_index::CentroidHandle {
                cluster: record.key,
                centroid: record.centroid_object,
                centroid_frame: record.centroid_frame,
            })
            .collect();
        let records = merged.into_iter().collect();
        Ok(SegmentedPlan {
            plan: QueryPlan {
                class: request.class,
                lookup_class: self.model.effective_query_class(request.class),
                candidates,
                track_scope,
            },
            records,
            access,
            tail_records,
        })
    }

    /// Convenience lookup mirroring
    /// [`TopKIndex::lookup`](focus_index::TopKIndex::lookup) over the
    /// segmented store.
    pub fn lookup(
        &self,
        class: ClassId,
        filter: &QueryFilter,
    ) -> Result<Vec<ClusterRecord>, SegmentError> {
        Ok(self.store.lookup(class, filter)?.records)
    }
}

/// A pruned query plan plus everything assembly and accounting need: the
/// candidate records (resolved from the segments the plan opened) and the
/// segment-access report.
#[derive(Debug)]
pub struct SegmentedPlan {
    /// The candidate set, exactly as the in-memory
    /// [`QueryPlan::build`](crate::query::QueryPlan::build) would produce
    /// over the merged index.
    pub plan: QueryPlan,
    /// The cluster record behind every candidate, keyed by cluster key.
    pub records: HashMap<ClusterKey, ClusterRecord>,
    /// What the pruned lookup touched.
    pub access: SegmentAccess,
    /// Candidates resolved from the in-memory tail overlay instead of a
    /// sealed segment (zero when planned without an overlay). The
    /// tail-hit fraction of a live workload is
    /// `tail_records / candidates.len()`.
    pub tail_records: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::IngestParams;
    use crate::query::plan::QueryPlan;
    use crate::segment_ingest::{SealPolicy, SegmentedIngest};
    use focus_cnn::ModelSpec;
    use focus_runtime::GpuMeter;
    use focus_video::profile::profile_by_name;
    use focus_video::VideoDataset;
    use std::path::PathBuf;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("focus_query_segmented_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn corpus(
        name: &str,
    ) -> (
        VideoDataset,
        SegmentedCorpus,
        SegmentedIngestOutput,
        PathBuf,
    ) {
        let ds = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 60.0);
        let dir = test_dir(name);
        let mut store = SegmentStore::create(&dir).unwrap();
        let output = SegmentedIngest::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams {
                k: 10,
                ..IngestParams::default()
            },
            SealPolicy::every_secs(15.0),
            2,
        )
        .ingest_to_store(std::slice::from_ref(&ds), &mut store, &GpuMeter::new())
        .unwrap();
        let corpus = SegmentedCorpus::from_output(store, &output);
        (ds, corpus, output, dir)
    }

    #[test]
    fn segmented_plan_matches_in_memory_plan() {
        let (ds, corpus, output, dir) = corpus("plan_match");
        let class = ds.dominant_classes(1)[0];
        for filter in [
            QueryFilter::any(),
            QueryFilter::any().with_time_range(0.0, 10.0),
            QueryFilter::any().with_kx(2),
            QueryFilter::any().with_time_range(20.0, 40.0).with_kx(3),
        ] {
            let request = QueryRequest::new(class).with_filter(filter);
            let segmented = corpus.plan(&request).unwrap();
            let reference = QueryPlan::build(&output.combined, &request);
            assert_eq!(segmented.plan, reference);
            // Every candidate's record was captured for assembly.
            for handle in &segmented.plan.candidates {
                assert_eq!(
                    segmented.records[&handle.cluster].centroid_object,
                    handle.centroid
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn time_restriction_opens_strictly_fewer_segments() {
        let (ds, corpus, _, dir) = corpus("pruning");
        let class = ds.dominant_classes(1)[0];
        let full = corpus.plan(&QueryRequest::new(class)).unwrap();
        assert_eq!(full.access.segments_considered, full.access.segments_total);
        let narrow = corpus
            .plan(
                &QueryRequest::new(class)
                    .with_filter(QueryFilter::any().with_time_range(0.0, 10.0)),
            )
            .unwrap();
        assert!(narrow.access.segments_considered < narrow.access.segments_total);
        assert!(narrow.access.segments_pruned() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_overlay_unions_with_sealed_segments() {
        // Seal the first half of a stream, keep the second half as an
        // in-memory tail: planning with the overlay must equal planning
        // over a store where everything was sealed.
        let ds = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 60.0);
        let class = ds.dominant_classes(1)[0];
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let params = IngestParams {
            k: 10,
            ..IngestParams::default()
        };
        let policy = SealPolicy::every_secs(15.0);

        // Reference: everything sealed.
        let dir_all = test_dir("tail_ref");
        let mut store_all = SegmentStore::create(&dir_all).unwrap();
        let output = SegmentedIngest::new(model.clone(), params, policy, 1)
            .ingest_to_store(std::slice::from_ref(&ds), &mut store_all, &GpuMeter::new())
            .unwrap();
        let reference = SegmentedCorpus::from_output(store_all, &output);

        // Live: only the parts drained before the midpoint reach the
        // store; the rest stays in the pipeline and is peeked as a tail.
        let dir_live = test_dir("tail_live");
        let mut store_live = SegmentStore::create(&dir_live).unwrap();
        let mut segmenter = crate::segment_ingest::StreamSegmenter::new(
            ds.profile.stream_id,
            ds.profile.fps,
            params,
            policy,
        );
        for frame in &ds.frames {
            if let Some(part) = segmenter.push_frame(frame, model.classifier.as_ref()) {
                store_live.seal(&part).unwrap();
            }
        }
        let (tail_index, tail_centroids) = segmenter.pipeline().peek_segment();
        let mut tail = TailOverlay::new();
        tail.add_part(tail_index, tail_centroids);
        assert!(
            !tail.is_empty(),
            "the final partial segment stays in memory"
        );
        let live =
            SegmentedCorpus::new(store_live, output.combined.centroids.clone(), model.clone());

        for filter in [
            QueryFilter::any(),
            QueryFilter::any().with_time_range(0.0, 20.0),
            QueryFilter::any().with_time_range(40.0, 60.0),
            QueryFilter::any().with_kx(2),
        ] {
            let request = QueryRequest::new(class).with_filter(filter);
            let with_tail = live.plan_with_tail(&request, Some(&tail)).unwrap();
            let sealed = reference.plan(&request).unwrap();
            assert_eq!(with_tail.plan, sealed.plan, "{request:?}");
            // The overlay never costs a segment open.
            assert!(
                with_tail.access.segments_opened() <= sealed.access.segments_opened(),
                "{request:?}"
            );
        }
        // A time filter over the tail window only is answered from memory.
        let late = live
            .plan_with_tail(
                &QueryRequest::new(class)
                    .with_filter(QueryFilter::any().with_time_range(46.0, 60.0)),
                Some(&tail),
            )
            .unwrap();
        assert!(late.tail_records > 0);
        assert_eq!(late.tail_records, late.plan.candidates.len());
        // Without the overlay the same corpus simply cannot see the tail.
        let blind = live
            .plan(
                &QueryRequest::new(class)
                    .with_filter(QueryFilter::any().with_time_range(46.0, 60.0)),
            )
            .unwrap();
        assert!(blind.plan.candidates.len() < late.plan.candidates.len());
        std::fs::remove_dir_all(&dir_all).ok();
        std::fs::remove_dir_all(&dir_live).ok();
    }

    #[test]
    #[should_panic(expected = "key-disjoint")]
    fn overlay_rejects_duplicate_parts() {
        let ds = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 10.0);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let mut pipeline = crate::pipeline::FramePipeline::new(
            ds.profile.stream_id,
            ds.profile.fps,
            IngestParams::default(),
        );
        for frame in &ds.frames {
            pipeline.push_frame(frame, model.classifier.as_ref());
        }
        let (index, centroids) = pipeline.peek_segment();
        let mut overlay = TailOverlay::new();
        overlay.add_part(index.clone(), centroids.clone());
        overlay.add_part(index, centroids);
    }

    #[test]
    fn per_stream_models_route_queries_independently() {
        use focus_cnn::{Classifier, GroundTruthCnn, SpecializedCnn, OTHER_CLASS};
        let ds = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 40.0);
        let class = ds.dominant_classes(1)[0];
        let (_, mut corpus, _, dir) = corpus("stream_models");

        // Specialize the stream's model on a sample that does NOT include
        // some rare class: queries for it must route through OTHER for this
        // stream.
        let gt = GroundTruthCnn::resnet152();
        let sample: Vec<_> = ds
            .objects()
            .map(|o| (o.clone(), gt.classify_top1(o)))
            .collect();
        let specialized = IngestCnn::specialized(
            SpecializedCnn::train(
                "stream-models-test",
                focus_cnn::specialize::SpecializationLevel::Medium,
                &sample,
                4,
            )
            .unwrap(),
        );
        let stream = ds.profile.stream_id;
        assert_eq!(corpus.route(stream, class), class);

        // A class the store indexed under the generic model but the
        // specialized override does not cover: its pre-retrain records
        // must stay reachable after the override is installed.
        let specialized_classes = specialized.specialized_classes.clone().unwrap();
        let hidden_candidate = corpus
            .store()
            .merged_index()
            .unwrap()
            .indexed_classes()
            .into_iter()
            .find(|c| !specialized_classes.contains(c) && *c != OTHER_CLASS)
            .expect("some indexed class outside the specialized set");
        let before = corpus.plan(&QueryRequest::new(hidden_candidate)).unwrap();
        assert!(!before.plan.candidates.is_empty());

        corpus.stream_models.insert(stream, specialized);
        assert_eq!(
            corpus.route(stream, ClassId(999)),
            OTHER_CLASS,
            "un-specialized classes route through OTHER for this stream"
        );
        // Streams without an override keep the default routing.
        assert_eq!(corpus.route(StreamId(999), ClassId(999)), ClassId(999));

        // Regression: installing the override must not hide the stream's
        // pre-retrain history — the plan is a superset of the pre-override
        // plan (the OTHER lookup may add candidates; GT verification keeps
        // precision).
        let after = corpus.plan(&QueryRequest::new(hidden_candidate)).unwrap();
        for handle in &before.plan.candidates {
            assert!(
                after.plan.candidates.contains(handle),
                "pre-retrain candidate {handle:?} hidden by the override"
            );
        }
        // Planning a routed query stays well-formed (sorted, disjoint).
        let plan = corpus.plan(&QueryRequest::new(ClassId(999))).unwrap();
        assert!(plan
            .plan
            .candidates
            .windows(2)
            .all(|w| w[0].cluster < w[1].cluster));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retiring_models_keeps_older_epochs_reachable() {
        use focus_cnn::{Classifier, GroundTruthCnn, SpecializedCnn, OTHER_CLASS};
        // Generation 1 specializes WITHOUT some class C (its records post
        // under OTHER); generation 2 specializes FOR C (routing C to
        // itself). Without retired-model routing the gen-2 install would
        // stop scanning OTHER and gen-1's C records would vanish.
        let ds = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 40.0);
        let (_, mut corpus, _, dir) = corpus("retired_models");
        let stream = ds.profile.stream_id;
        let gt = GroundTruthCnn::resnet152();
        let sample: Vec<_> = ds
            .objects()
            .map(|o| (o.clone(), gt.classify_top1(o)))
            .collect();
        let gen1 = IngestCnn::specialized(
            SpecializedCnn::train(
                "retired-gen1",
                focus_cnn::specialize::SpecializationLevel::Medium,
                &sample,
                2,
            )
            .unwrap(),
        );
        let gen2 = IngestCnn::specialized(
            SpecializedCnn::train(
                "retired-gen2",
                focus_cnn::specialize::SpecializationLevel::Medium,
                &sample,
                8,
            )
            .unwrap(),
        );
        // A class gen2 covers but gen1 does not: indexed under OTHER by
        // gen1-era ingest, under itself by gen2-era ingest.
        let split_class = *gen2
            .specialized_classes
            .as_ref()
            .unwrap()
            .iter()
            .find(|c| !gen1.specialized_classes.as_ref().unwrap().contains(c))
            .expect("gen2's larger set covers a class gen1 lacks");

        corpus.install_stream_model(stream, gen1.clone());
        let gen1_plan = corpus.plan(&QueryRequest::new(split_class)).unwrap();
        assert_eq!(
            corpus.route(stream, split_class),
            OTHER_CLASS,
            "gen1 maps the split class through OTHER"
        );
        assert!(!gen1_plan.plan.candidates.is_empty());

        corpus.install_stream_model(stream, gen2.clone());
        assert_eq!(
            corpus.route(stream, split_class),
            split_class,
            "gen2 specializes for it"
        );
        assert_eq!(corpus.retired_routes[&stream].generations, 1);
        let gen2_plan = corpus.plan(&QueryRequest::new(split_class)).unwrap();
        for handle in &gen1_plan.plan.candidates {
            assert!(
                gen2_plan.plan.candidates.contains(handle),
                "gen1-era candidate {handle:?} hidden by the gen2 install"
            );
        }
        // A third install retires gen2 as well.
        corpus.install_stream_model(stream, gen1);
        assert_eq!(corpus.retired_routes[&stream].generations, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn camera_filters_scope_override_routing() {
        use focus_cnn::{Classifier, GroundTruthCnn, SpecializedCnn};
        // Two streams; only lausanne gets a specialized override. A query
        // restricted to auburn_c must not pay lausanne's OTHER scan.
        let datasets: Vec<VideoDataset> = ["auburn_c", "lausanne"]
            .iter()
            .map(|n| VideoDataset::generate(profile_by_name(n).unwrap(), 40.0))
            .collect();
        let dir = test_dir("filter_scope");
        let mut store = SegmentStore::create(&dir).unwrap();
        let output = SegmentedIngest::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams {
                k: 10,
                ..IngestParams::default()
            },
            SealPolicy::every_secs(10.0),
            2,
        )
        .ingest_to_store(&datasets, &mut store, &GpuMeter::new())
        .unwrap();
        let mut corpus = SegmentedCorpus::from_output(store, &output);

        let gt = GroundTruthCnn::resnet152();
        let sample: Vec<_> = datasets[1]
            .objects()
            .map(|o| (o.clone(), gt.classify_top1(o)))
            .collect();
        let lausanne = datasets[1].profile.stream_id;
        let auburn = datasets[0].profile.stream_id;
        let rare = ClassId(999);
        let only_auburn = QueryRequest::new(rare).with_filter(QueryFilter::for_stream(auburn));
        let before = corpus.plan(&only_auburn).unwrap();

        corpus.stream_models.insert(
            lausanne,
            IngestCnn::specialized(
                SpecializedCnn::train(
                    "filter-scope-test",
                    focus_cnn::specialize::SpecializationLevel::Medium,
                    &sample,
                    4,
                )
                .unwrap(),
            ),
        );
        // The override routes `rare` through OTHER — but only for queries
        // that can reach lausanne. The auburn-restricted query's scan is
        // unchanged; an unrestricted query pays the extra lookup class.
        let after = corpus.plan(&only_auburn).unwrap();
        assert_eq!(
            after.access.segments_considered,
            before.access.segments_considered
        );
        let unrestricted = corpus.plan(&QueryRequest::new(rare)).unwrap();
        assert!(
            unrestricted.access.segments_considered > after.access.segments_considered,
            "the reachable override adds the OTHER scan"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn accessors_expose_store_and_model() {
        let (_, mut corpus, output, dir) = corpus("accessors");
        assert_eq!(corpus.store().len(), output.sealed.len());
        assert!(!corpus.centroids.is_empty());
        let folded = corpus.store_mut().compact(usize::MAX).unwrap();
        assert!(folded > 0);
        assert_eq!(corpus.store().len(), 1);
        let records = corpus.lookup(ClassId(0), &QueryFilter::any()).unwrap();
        let merged = corpus.store().merged_index().unwrap();
        assert_eq!(
            records.len(),
            merged.lookup(ClassId(0), &QueryFilter::any()).len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
