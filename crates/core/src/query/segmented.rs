//! Pruned query planning over a durable [`SegmentStore`] (QT1/QT2 with
//! segment pruning).
//!
//! A monolithic in-memory index answers every lookup by scanning its full
//! postings list. Over a segmented corpus, a query with a camera/time
//! restriction first prunes at the *segment* level — only segments whose
//! manifest bounds intersect the filter are opened (lazily, through the
//! store's LRU) — and then applies the ordinary per-record filter inside
//! each opened segment. The result is proven byte-identical to planning
//! against the merged in-memory index while opening strictly fewer segments
//! on time-restricted workloads (`tests/segment_durability.rs`).
//!
//! [`SegmentedCorpus`] is the query-side view of a segmented ingest run:
//! the store plus the centroid observations and ingest model the
//! verification stage needs. [`QueryServer::serve_segmented`] consumes its
//! plans with the same dedupe/batch/cache machinery as the in-memory path.
//!
//! [`QueryServer::serve_segmented`]: crate::query_server::QueryServer::serve_segmented

use std::collections::HashMap;

use focus_index::{
    ClusterKey, ClusterRecord, QueryFilter, SegmentAccess, SegmentError, SegmentStore,
};
use focus_video::{ClassId, ObjectId, ObjectObservation};

use crate::ingest::IngestCnn;
use crate::query::plan::{QueryPlan, QueryRequest};
use crate::segment_ingest::SegmentedIngestOutput;

/// The query-side view of a segmented corpus: the durable store plus the
/// centroid observations (what the GT-CNN classifies) and the ingest model
/// (for specialized-class → OTHER routing).
///
/// # Examples
///
/// ```
/// use focus_core::prelude::*;
/// use focus_core::query::QueryRequest;
/// use focus_core::query::segmented::SegmentedCorpus;
/// use focus_core::segment_ingest::{SealPolicy, SegmentedIngest};
/// use focus_index::{QueryFilter, SegmentStore};
/// use focus_video::profile::profile_by_name;
///
/// let ds = focus_video::VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 40.0);
/// let dir = std::env::temp_dir().join("focus_segmented_corpus_doc");
/// let _ = std::fs::remove_dir_all(&dir);
/// let mut store = SegmentStore::create(&dir).unwrap();
/// let output = SegmentedIngest::new(
///     IngestCnn::generic(focus_cnn::ModelSpec::cheap_cnn_1()),
///     IngestParams { k: 10, ..IngestParams::default() },
///     SealPolicy::every_secs(10.0),
///     1,
/// )
/// .ingest_to_store(std::slice::from_ref(&ds), &mut store, &focus_runtime::GpuMeter::new())
/// .unwrap();
///
/// let corpus = SegmentedCorpus::from_output(store, &output);
/// let class = ds.dominant_classes(1)[0];
/// // A query restricted to the first quarter of the stream opens one of
/// // the four segments and prunes the rest.
/// let request = QueryRequest::new(class)
///     .with_filter(QueryFilter::any().with_time_range(0.0, 9.0));
/// let planned = corpus.plan(&request).unwrap();
/// assert!(planned.access.segments_considered <= 1);
/// assert_eq!(planned.access.segments_total, 4);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug)]
pub struct SegmentedCorpus {
    store: SegmentStore,
    /// The centroid observation of every cluster, keyed by object id — the
    /// only objects the GT-CNN touches at query time.
    pub centroids: HashMap<ObjectId, ObjectObservation>,
    /// The ingest model the corpus was built with.
    pub model: IngestCnn,
}

impl SegmentedCorpus {
    /// Builds a corpus from a store and explicit centroid/model state.
    pub fn new(
        store: SegmentStore,
        centroids: HashMap<ObjectId, ObjectObservation>,
        model: IngestCnn,
    ) -> Self {
        Self {
            store,
            centroids,
            model,
        }
    }

    /// Builds a corpus from a segmented ingest run, cloning the centroid
    /// map and model from its combined output.
    pub fn from_output(store: SegmentStore, output: &SegmentedIngestOutput) -> Self {
        Self::new(
            store,
            output.combined.centroids.clone(),
            output.combined.model.clone(),
        )
    }

    /// The underlying segment store.
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }

    /// Mutable access to the store, for maintenance
    /// ([`compact`](SegmentStore::compact)).
    pub fn store_mut(&mut self) -> &mut SegmentStore {
        &mut self.store
    }

    /// Plans one query with segment pruning (QT1/QT2): routes the class
    /// through the model's OTHER handling, opens only the segments whose
    /// bounds intersect the filter, and returns the plan together with the
    /// records backing every candidate (for QT4 assembly) and the access
    /// account (for storage-cost accounting).
    pub fn plan(&self, request: &QueryRequest) -> Result<SegmentedPlan, SegmentError> {
        let lookup_class = self.model.effective_query_class(request.class);
        let lookup = self.store.lookup(lookup_class, &request.filter)?;
        let candidates = lookup
            .records
            .iter()
            .map(|record| focus_index::CentroidHandle {
                cluster: record.key,
                centroid: record.centroid_object,
                centroid_frame: record.centroid_frame,
            })
            .collect();
        let records = lookup
            .records
            .into_iter()
            .map(|record| (record.key, record))
            .collect();
        Ok(SegmentedPlan {
            plan: QueryPlan {
                class: request.class,
                lookup_class,
                candidates,
            },
            records,
            access: lookup.access,
        })
    }

    /// Convenience lookup mirroring
    /// [`TopKIndex::lookup`](focus_index::TopKIndex::lookup) over the
    /// segmented store.
    pub fn lookup(
        &self,
        class: ClassId,
        filter: &QueryFilter,
    ) -> Result<Vec<ClusterRecord>, SegmentError> {
        Ok(self.store.lookup(class, filter)?.records)
    }
}

/// A pruned query plan plus everything assembly and accounting need: the
/// candidate records (resolved from the segments the plan opened) and the
/// segment-access report.
#[derive(Debug)]
pub struct SegmentedPlan {
    /// The candidate set, exactly as the in-memory
    /// [`QueryPlan::build`](crate::query::QueryPlan::build) would produce
    /// over the merged index.
    pub plan: QueryPlan,
    /// The cluster record behind every candidate, keyed by cluster key.
    pub records: HashMap<ClusterKey, ClusterRecord>,
    /// What the pruned lookup touched.
    pub access: SegmentAccess,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::IngestParams;
    use crate::query::plan::QueryPlan;
    use crate::segment_ingest::{SealPolicy, SegmentedIngest};
    use focus_cnn::ModelSpec;
    use focus_runtime::GpuMeter;
    use focus_video::profile::profile_by_name;
    use focus_video::VideoDataset;
    use std::path::PathBuf;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("focus_query_segmented_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn corpus(
        name: &str,
    ) -> (
        VideoDataset,
        SegmentedCorpus,
        SegmentedIngestOutput,
        PathBuf,
    ) {
        let ds = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 60.0);
        let dir = test_dir(name);
        let mut store = SegmentStore::create(&dir).unwrap();
        let output = SegmentedIngest::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams {
                k: 10,
                ..IngestParams::default()
            },
            SealPolicy::every_secs(15.0),
            2,
        )
        .ingest_to_store(std::slice::from_ref(&ds), &mut store, &GpuMeter::new())
        .unwrap();
        let corpus = SegmentedCorpus::from_output(store, &output);
        (ds, corpus, output, dir)
    }

    #[test]
    fn segmented_plan_matches_in_memory_plan() {
        let (ds, corpus, output, dir) = corpus("plan_match");
        let class = ds.dominant_classes(1)[0];
        for filter in [
            QueryFilter::any(),
            QueryFilter::any().with_time_range(0.0, 10.0),
            QueryFilter::any().with_kx(2),
            QueryFilter::any().with_time_range(20.0, 40.0).with_kx(3),
        ] {
            let request = QueryRequest::new(class).with_filter(filter);
            let segmented = corpus.plan(&request).unwrap();
            let reference = QueryPlan::build(&output.combined, &request);
            assert_eq!(segmented.plan, reference);
            // Every candidate's record was captured for assembly.
            for handle in &segmented.plan.candidates {
                assert_eq!(
                    segmented.records[&handle.cluster].centroid_object,
                    handle.centroid
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn time_restriction_opens_strictly_fewer_segments() {
        let (ds, corpus, _, dir) = corpus("pruning");
        let class = ds.dominant_classes(1)[0];
        let full = corpus.plan(&QueryRequest::new(class)).unwrap();
        assert_eq!(full.access.segments_considered, full.access.segments_total);
        let narrow = corpus
            .plan(
                &QueryRequest::new(class)
                    .with_filter(QueryFilter::any().with_time_range(0.0, 10.0)),
            )
            .unwrap();
        assert!(narrow.access.segments_considered < narrow.access.segments_total);
        assert!(narrow.access.segments_pruned() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn accessors_expose_store_and_model() {
        let (_, mut corpus, output, dir) = corpus("accessors");
        assert_eq!(corpus.store().len(), output.sealed.len());
        assert!(!corpus.centroids.is_empty());
        let folded = corpus.store_mut().compact(usize::MAX).unwrap();
        assert!(folded > 0);
        assert_eq!(corpus.store().len(), 1);
        let records = corpus.lookup(ClassId(0), &QueryFilter::any()).unwrap();
        let merged = corpus.store().merged_index().unwrap();
        assert_eq!(
            records.len(),
            merged.lookup(ClassId(0), &QueryFilter::any()).len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
