//! The query-time pipeline (QT1–QT4 in Figure 4 of the paper).
//!
//! A query names an object class (and optionally a camera subset, a time
//! range, and a dynamic `Kx`). To answer it, Focus
//!
//! 1. looks up the matching clusters in the top-K index,
//! 2. classifies only the cluster centroids with the ground-truth CNN
//!    (parallelised across the GPU cluster / worker pool),
//! 3. keeps the clusters whose centroid the GT-CNN confirms as the queried
//!    class, and
//! 4. returns all frames of the confirmed clusters.
//!
//! The pipeline is split by phase:
//!
//! * [`plan`] — QT1/QT2: mapping the queried class through the specialized
//!   model's OTHER handling and retrieving the candidate centroid set from
//!   the index as stable [`focus_index::CentroidHandle`]s.
//! * [`execute`] — QT4: applying per-centroid GT verdicts and assembling
//!   the [`QueryOutcome`].
//! * [`serve`] — the serial, single-query driver ([`QueryEngine`]), which
//!   runs QT3 one centroid inference at a time.
//! * [`segmented`] — QT1/QT2 with segment pruning over a durable
//!   [`SegmentStore`](focus_index::SegmentStore): time/camera-restricted
//!   queries open only the segments whose bounds intersect (see
//!   `docs/storage.md`).
//! * [`anytime`] — incremental execution: the candidate set partitioned
//!   into per-segment chunks, GT verification spent adaptively on the
//!   chunk most likely to yield new distinct results, and partial results
//!   streamed out after every round (see `docs/query-path.md`).
//! * [`track`] — trajectory restrictions: the [`TrackFilter`] predicate
//!   language (region entry/exit/visit, transit, dwell, speed bands)
//!   evaluated conservatively against the per-track sketches persisted in
//!   segments, so candidates whose tracks cannot match are dropped
//!   *before* GT verification (see `docs/query-path.md`).
//!
//! Concurrent serving — many queries at once, batched GT-CNN verification
//! of the *deduplicated* union of their candidate sets, and a cross-query
//! centroid-verdict cache — lives in [`crate::query_server`]. See
//! `docs/query-path.md` for the end-to-end walkthrough.

pub mod anytime;
pub mod execute;
pub mod plan;
pub mod segmented;
pub mod serve;
pub mod track;

pub use anytime::{
    pick_most_promising, run_anytime, run_anytime_with_picker, AnytimeChunk, AnytimeOutcome,
    AnytimePartial, AnytimePlan, AnytimeTermination, ChunkEstimate, ChunkSource,
};
pub use execute::{assemble_outcome, assemble_outcome_from, QueryOutcome};
pub use plan::{AnytimeMode, QueryPlan, QueryRequest};
pub use segmented::{RetiredRouting, SegmentedCorpus, SegmentedPlan, TailOverlay};
pub use serve::QueryEngine;
pub use track::{Region, TrackFilter, TrackPredicate, TrackPredicateKind, TrackScope};
