//! The comparison baselines of the paper's evaluation (§6.1) and the
//! query-rate analysis of §6.7.
//!
//! * **Ingest-all** — run the ground-truth CNN on every (motion-filtered)
//!   object at ingest time and store an inverted index; queries are index
//!   lookups with zero GPU cost.
//! * **Query-all** — do nothing at ingest time; at query time run the
//!   ground-truth CNN on every (motion-filtered) object in the queried
//!   interval.
//!
//! Both baselines are strengthened with motion detection, as in the paper
//! (this is the core technique of NoScope that the paper credits).
//!
//! For §6.7 the module also models the two extreme query rates: *everything
//! is queried* (compare total GPU cycles of Focus against Ingest-all) and
//! *almost nothing is queried* (run all of Focus's work lazily at query
//! time and compare against Query-all).

use serde::{Deserialize, Serialize};

use focus_cnn::{Classifier, GpuCost, GroundTruthCnn};
use focus_runtime::GpuClusterSpec;
use focus_video::VideoDataset;

/// GPU costs of the two baselines on one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineCosts {
    /// Total frames in the dataset.
    pub frames_total: usize,
    /// Frames that passed motion detection.
    pub frames_with_motion: usize,
    /// Object observations in motion frames (the unit of CNN work).
    pub objects: usize,
    /// GPU time of Ingest-all: one GT-CNN inference per object at ingest.
    pub ingest_all_gpu: GpuCost,
    /// GPU time of Query-all for a query spanning the dataset: one GT-CNN
    /// inference per object at query time.
    pub query_all_gpu: GpuCost,
    /// Wall-clock latency of Query-all on the configured GPU cluster.
    pub query_all_latency_secs: f64,
}

impl BaselineCosts {
    /// Computes the baseline costs for a dataset.
    ///
    /// Both baselines use background subtraction, so only objects in frames
    /// with motion are counted; frames without moving objects cost nothing.
    pub fn compute(dataset: &VideoDataset, gt: &GroundTruthCnn, gpus: GpuClusterSpec) -> Self {
        let frames_total = dataset.frames.len();
        let frames_with_motion = dataset.frames_with_motion();
        let objects = dataset.object_count();
        let per_inference = gt.cost_per_inference();
        let work = per_inference * objects;
        Self {
            frames_total,
            frames_with_motion,
            objects,
            ingest_all_gpu: work,
            query_all_gpu: work,
            query_all_latency_secs: gpus.latency_secs(work),
        }
    }

    /// How many times cheaper an ingest cost of `focus_ingest` is than
    /// Ingest-all.
    pub fn ingest_cheaper_factor(&self, focus_ingest: GpuCost) -> f64 {
        focus_ingest.ratio_of(self.ingest_all_gpu)
    }

    /// How many times faster a query latency of `focus_latency_secs` is than
    /// Query-all.
    pub fn query_faster_factor(&self, focus_latency_secs: f64) -> f64 {
        if focus_latency_secs <= 0.0 {
            f64::INFINITY
        } else {
            self.query_all_latency_secs / focus_latency_secs
        }
    }
}

/// §6.7, first extreme: every class of every video is queried. In that case
/// Ingest-all amortizes its cost over all queries, so the fair comparison is
/// total GPU cycles: Focus's ingest cost plus the query cost of verifying
/// every cluster once, against Ingest-all's ingest cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllQueriedComparison {
    /// Focus: ingest GPU time plus one GT-CNN inference per cluster.
    pub focus_total_gpu: GpuCost,
    /// Ingest-all: one GT-CNN inference per object.
    pub ingest_all_gpu: GpuCost,
    /// How many times cheaper Focus remains overall.
    pub focus_cheaper_factor: f64,
}

impl AllQueriedComparison {
    /// Builds the comparison from Focus's ingest cost, its cluster count and
    /// the baseline costs.
    pub fn compute(
        focus_ingest: GpuCost,
        clusters: usize,
        gt: &GroundTruthCnn,
        baselines: &BaselineCosts,
    ) -> Self {
        let focus_total = focus_ingest + gt.cost_per_inference() * clusters;
        Self {
            focus_total_gpu: focus_total,
            ingest_all_gpu: baselines.ingest_all_gpu,
            focus_cheaper_factor: focus_total.ratio_of(baselines.ingest_all_gpu),
        }
    }
}

/// §6.7, second extreme: a vanishing fraction of videos is ever queried, so
/// doing *anything* at ingest time can be wasted work. Focus can defer its
/// whole pipeline to query time: the query then pays cheap-CNN indexing of
/// the interval plus GT-CNN verification of the resulting clusters, which is
/// still far cheaper than Query-all's GT-CNN on every object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryTimeOnlyComparison {
    /// GPU time of running Focus's ingest lazily at query time plus the
    /// usual query-time verification.
    pub focus_query_gpu: GpuCost,
    /// Wall-clock latency of that work on the configured GPU cluster.
    pub focus_query_latency_secs: f64,
    /// Query-all GPU time.
    pub query_all_gpu: GpuCost,
    /// How many times faster the deferred-Focus query remains.
    pub focus_faster_factor: f64,
}

impl QueryTimeOnlyComparison {
    /// Builds the comparison from Focus's (deferred) ingest cost, its
    /// query-time verification cost and the baseline costs.
    pub fn compute(
        focus_ingest: GpuCost,
        focus_query: GpuCost,
        gpus: GpuClusterSpec,
        baselines: &BaselineCosts,
    ) -> Self {
        let total = focus_ingest + focus_query;
        let latency = gpus.latency_secs(total);
        Self {
            focus_query_gpu: total,
            focus_query_latency_secs: latency,
            query_all_gpu: baselines.query_all_gpu,
            focus_faster_factor: if latency <= 0.0 {
                f64::INFINITY
            } else {
                baselines.query_all_latency_secs / latency
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_video::profile::profile_by_name;

    fn dataset() -> VideoDataset {
        VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 120.0)
    }

    #[test]
    fn baselines_count_only_motion_objects() {
        let ds = dataset();
        let gt = GroundTruthCnn::resnet152();
        let costs = BaselineCosts::compute(&ds, &gt, GpuClusterSpec::new(10));
        assert_eq!(costs.frames_total, ds.frames.len());
        assert!(costs.frames_with_motion < costs.frames_total);
        assert_eq!(costs.objects, ds.object_count());
        assert!((costs.ingest_all_gpu.seconds() - costs.query_all_gpu.seconds()).abs() < 1e-12);
        assert!((costs.query_all_latency_secs - costs.query_all_gpu.seconds() / 10.0).abs() < 1e-9);
    }

    #[test]
    fn factors_behave() {
        let ds = dataset();
        let gt = GroundTruthCnn::resnet152();
        let costs = BaselineCosts::compute(&ds, &gt, GpuClusterSpec::new(10));
        let cheap = costs.ingest_all_gpu * 0.01;
        assert!((costs.ingest_cheaper_factor(cheap) - 100.0).abs() < 1e-6);
        assert!(costs.query_faster_factor(costs.query_all_latency_secs / 50.0) > 49.0);
        assert!(costs.query_faster_factor(0.0).is_infinite());
    }

    #[test]
    fn all_queried_extreme_keeps_focus_cheaper() {
        // §6.7: even when everything is queried, Focus's overall cost stays
        // several times below Ingest-all because the cheap CNN indexes the
        // video and the GT-CNN runs once per cluster, not per object.
        let ds = dataset();
        let gt = GroundTruthCnn::resnet152();
        let costs = BaselineCosts::compute(&ds, &gt, GpuClusterSpec::new(10));
        let focus_ingest = costs.ingest_all_gpu * (1.0 / 60.0);
        let clusters = costs.objects / 12;
        let cmp = AllQueriedComparison::compute(focus_ingest, clusters, &gt, &costs);
        assert!(
            cmp.focus_cheaper_factor > 2.0,
            "factor = {}",
            cmp.focus_cheaper_factor
        );
        assert!(cmp.focus_total_gpu < cmp.ingest_all_gpu);
    }

    #[test]
    fn query_time_only_extreme_still_beats_query_all() {
        let ds = dataset();
        let gt = GroundTruthCnn::resnet152();
        let costs = BaselineCosts::compute(&ds, &gt, GpuClusterSpec::new(10));
        let deferred_ingest = costs.query_all_gpu * (1.0 / 60.0);
        let verification = costs.query_all_gpu * (1.0 / 40.0);
        let cmp = QueryTimeOnlyComparison::compute(
            deferred_ingest,
            verification,
            GpuClusterSpec::new(10),
            &costs,
        );
        assert!(
            cmp.focus_faster_factor > 10.0,
            "factor = {}",
            cmp.focus_faster_factor
        );
        assert!(cmp.focus_query_gpu < cmp.query_all_gpu);
        assert!(cmp.focus_query_latency_secs > 0.0);
    }
}
