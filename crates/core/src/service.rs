//! The live Focus service: one long-lived object that ingests and serves
//! at the same time.
//!
//! The batch drivers run the paper's two sides as disjoint phases — ingest
//! finishes, *then* queries are served — so frames indexed since the last
//! segment seal are invisible to queries and nothing arbitrates the GPU
//! between the sides. [`FocusService`] unifies them:
//!
//! * **Hot tail + sealed past** (LSM-style read path): each stream owns a
//!   [`StreamSegmenter`] whose pipeline accumulates not-yet-sealed records
//!   in memory; sealed segments live in the durable [`SegmentStore`]. A
//!   [`serve`](FocusService::serve) call snapshots every stream's tail
//!   once ([`FramePipeline::peek_segment`]), overlays it on the store
//!   ([`SegmentedCorpus::plan_with_tail`]) and answers from the union —
//!   proven byte-identical to sealing everything first and then querying
//!   (`tests/live_service.rs`).
//! * **Snapshot consistency**: the tail overlay is built once per serve
//!   call, so every query of the call sees the same instant; the verdict
//!   cache keys by `(centroid, ground-truth epoch)` exactly as in the
//!   standalone [`QueryServer`], so nothing cached for the current epoch
//!   is ever re-verified.
//! * **Specialization behind the service**: each stream runs the
//!   bootstrap → specialize → retrain lifecycle
//!   ([`SpecializationLifecycle`]); a retrain seals the pipeline's model
//!   epoch, installs the stream's new routing model, and bumps the query
//!   server's verdict-cache epoch automatically.
//! * **One GPU budget**: ingest classification, specialization labelling
//!   and query-time GT verification are all submitted to a shared
//!   [`GpuScheduler`], whose priority policy decides who gets capacity
//!   when both sides want it (the paper's §5 tradeoff, live).
//! * **Background maintenance**: [`maintain`](FocusService::maintain)
//!   seals tails that hit their [`SealPolicy`] budget, triggers
//!   [`compact`](focus_index::SegmentStore::compact) when the
//!   small-segment count crosses a threshold, and drains one scheduler
//!   tick.
//! * **Durability**: the service persists a `service_state.json` stream
//!   registry plus one append-only `centroids-NNNNNN.json` delta per seal
//!   (written *before* the segment, so a sealed segment is always
//!   verifiable), and [`recover`](FocusService::recover) reopens the
//!   manifest, unions the deltas, resumes cluster-key counters past the
//!   sealed segments and keeps ingesting.
//!
//! See `docs/service.md` for the lifecycle walkthrough.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};

use focus_cnn::GroundTruthCnn;
use focus_index::persist::{write_atomic, PersistError};
use focus_index::{LruOccupancy, SegmentError, SegmentMeta, SegmentStore, TopKIndex};
use focus_runtime::{
    GpuClusterSpec, GpuMeter, GpuPriorityPolicy, GpuScheduler, GpuSchedulerStats, IoMeter, IoStats,
    TickReport,
};
use focus_video::{Frame, ObjectId, ObjectObservation, StreamId};

use crate::ingest::IngestCnn;
use crate::pipeline::FramePipeline;
use crate::query::segmented::{SegmentedCorpus, TailOverlay};
use crate::query::{QueryOutcome, QueryRequest};
use crate::query_server::{CacheStats, QueryServer};
use crate::segment_ingest::{SealPolicy, StreamSegmenter};
use crate::worker::{SpecializationLifecycle, StreamWorkerConfig};

/// Name of the service's durable sidecar next to the store's manifest.
pub const SERVICE_STATE_FILE: &str = "service_state.json";

/// Version of the service-state sidecar format.
pub const SERVICE_STATE_VERSION: u32 = 1;

/// File-name prefix of the per-seal centroid delta files (see
/// [`FocusService::recover`]).
pub const CENTROID_DELTA_PREFIX: &str = "centroids-";

/// Configuration of a [`FocusService`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Per-stream ingest parameters and specialization lifecycle
    /// (bootstrap model, retrain schedule, GT-labelling fraction).
    pub worker: StreamWorkerConfig,
    /// When a stream's pending records become an immutable segment.
    pub seal: SealPolicy,
    /// The GPU fleet shared by ingest and queries.
    pub gpus: GpuClusterSpec,
    /// How the shared fleet's capacity is split between ingest and query
    /// backlogs.
    pub priority: GpuPriorityPolicy,
    /// Wall-clock length of one scheduler tick
    /// ([`FocusService::maintain`] drains one tick per call).
    pub tick_secs: f64,
    /// A live segment with at most this many clusters counts as *small*
    /// for the compaction trigger.
    pub small_segment_clusters: usize,
    /// Maintenance compacts the store once this many small segments are
    /// live.
    pub compact_small_threshold: usize,
    /// Fold budget handed to [`SegmentStore::compact`]: adjacent segments
    /// are merged while their combined record count stays within this.
    pub compact_max_clusters: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            worker: StreamWorkerConfig::default(),
            seal: SealPolicy::default(),
            gpus: GpuClusterSpec::default(),
            priority: GpuPriorityPolicy::QueryFirst,
            tick_secs: 1.0,
            small_segment_clusters: 32,
            compact_small_threshold: 8,
            compact_max_clusters: 256,
        }
    }
}

/// What one [`FocusService::advance`] call did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdvanceReport {
    /// Frames pushed.
    pub frames: usize,
    /// Segments sealed to the store by seal-policy boundaries crossed
    /// during the call.
    pub segments_sealed: usize,
    /// Specialized models (re)trained during the call (each bumped the
    /// verdict-cache epoch).
    pub retrains: usize,
}

/// What one [`FocusService::maintain`] tick did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceReport {
    /// Segments sealed because their stream's tail had hit a seal budget.
    pub segments_sealed: usize,
    /// Segments folded away by compaction (zero when the small-segment
    /// trigger was not crossed).
    pub segments_folded: usize,
    /// The GPU scheduler tick drained by this call.
    pub tick: TickReport,
}

/// Unified, serializable snapshot of everything the service is doing:
/// ingest progress, storage shape, verdict-cache activity, storage I/O,
/// segment-LRU occupancy and the shared GPU scheduler's breakdown — one
/// struct instead of four separate snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Streams registered.
    pub streams: usize,
    /// Frames pushed across all streams.
    pub frames_ingested: usize,
    /// Object observations indexed across all streams.
    pub objects_indexed: usize,
    /// Specialized models (re)trained across all streams.
    pub retrains: usize,
    /// Live segments in the store.
    pub segments: usize,
    /// Cluster records in live segments.
    pub store_clusters: usize,
    /// Segments sealed since the service started.
    pub segments_sealed: usize,
    /// Maintenance compactions run.
    pub compactions: usize,
    /// Queries served.
    pub queries_served: usize,
    /// Candidate clusters served across all queries.
    pub candidates_served: usize,
    /// Candidates resolved from the in-memory tail (the rest came from
    /// sealed segments).
    pub tail_candidates_served: usize,
    /// Verdict-cache activity of the embedded [`QueryServer`].
    pub cache: CacheStats,
    /// Storage-I/O counters (cold loads, cache hits, bytes).
    pub io: IoStats,
    /// Decoded-segment LRU occupancy.
    pub lru: LruOccupancy,
    /// Shared GPU scheduler breakdown (per-phase submissions, per-side
    /// served/backlog, utilization inputs).
    pub gpu: GpuSchedulerStats,
}

impl ServiceStats {
    /// Fraction of served candidates that were resolved from the hot tail
    /// (0.0 before any query).
    pub fn tail_hit_fraction(&self) -> f64 {
        if self.candidates_served == 0 {
            0.0
        } else {
            self.tail_candidates_served as f64 / self.candidates_served as f64
        }
    }
}

/// Durable sidecar: the registered streams (segment files and the
/// manifest know nothing about stream frame rates). Rewritten atomically
/// on every [`FocusService::register_stream`].
#[derive(Debug, Serialize, Deserialize)]
struct ServiceState {
    version: u32,
    /// `(stream id, fps)` for every registered stream.
    streams: Vec<(u32, u32)>,
}

/// One durable centroid delta: the observations behind one sealed
/// segment's records (segment files store records, not observations, and
/// the GT-CNN needs the observation to verify a centroid at query time).
///
/// Deltas are append-only — one `centroids-NNNNNN.json` file per seal,
/// written atomically *before* the segment itself — so each seal's sidecar
/// I/O is proportional to that segment, not to the service's lifetime, and
/// a crash between the two writes leaves a harmless extra delta, never an
/// unverifiable segment. [`FocusService::recover`] unions every delta.
#[derive(Debug, Serialize, Deserialize)]
struct CentroidDelta {
    version: u32,
    /// Centroid observations, sorted by object id for deterministic bytes.
    centroids: Vec<(ObjectId, ObjectObservation)>,
}

/// Per-stream live state: the incremental segmenter (hot tail) plus the
/// specialization lifecycle and the live ingest model.
struct StreamState {
    segmenter: StreamSegmenter,
    lifecycle: SpecializationLifecycle,
    model: IngestCnn,
    /// Classifications already submitted to the scheduler (per-frame
    /// deltas, exact inference counts — no float telescoping).
    inferences_metered: usize,
}

/// The live Focus service (see the module docs).
///
/// # Examples
///
/// ```
/// use focus_core::prelude::*;
/// use focus_core::service::{FocusService, ServiceConfig};
/// use focus_cnn::GroundTruthCnn;
/// use focus_video::profile::profile_by_name;
///
/// let dir = std::env::temp_dir().join("focus_service_doc");
/// let _ = std::fs::remove_dir_all(&dir);
/// let mut service = FocusService::create(
///     &dir,
///     ServiceConfig {
///         seal: SealPolicy::every_secs(10.0),
///         ..ServiceConfig::default()
///     },
///     GroundTruthCnn::resnet152(),
/// )
/// .unwrap();
///
/// let profile = profile_by_name("auburn_c").unwrap();
/// let ds = focus_video::VideoDataset::generate(profile.clone(), 25.0);
/// service.register_stream(profile.stream_id, profile.fps).unwrap();
///
/// // Interleave ingest and queries: results issued mid-ingest include
/// // the not-yet-sealed tail.
/// service.advance(&ds.frames).unwrap();
/// let class = ds.dominant_classes(1)[0];
/// let outcomes = service
///     .serve(&[focus_core::query::QueryRequest::new(class)])
///     .unwrap();
/// assert!(!outcomes[0].frames.is_empty());
///
/// let stats = service.stats();
/// assert_eq!(stats.queries_served, 1);
/// assert!(stats.tail_hit_fraction() > 0.0, "the tail answered part of it");
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct FocusService {
    config: ServiceConfig,
    /// The ground-truth CNN handed to newly registered streams' labelling
    /// lifecycles (the query server holds its own copy behind the epoch
    /// lock).
    gt_template: GroundTruthCnn,
    corpus: SegmentedCorpus,
    streams: BTreeMap<StreamId, StreamState>,
    server: QueryServer,
    scheduler: GpuScheduler,
    io: IoMeter,
    segments_sealed: usize,
    /// Sequence number of the next per-seal centroid delta file.
    next_centroid_delta: u64,
    compactions: usize,
    queries_served: AtomicUsize,
    candidates_served: AtomicUsize,
    tail_candidates_served: AtomicUsize,
}

impl std::fmt::Debug for FocusService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FocusService")
            .field("streams", &self.streams.len())
            .field("segments", &self.corpus.store().len())
            .finish()
    }
}

impl FocusService {
    /// Creates a fresh service over a new store at `dir`.
    pub fn create(
        dir: impl Into<PathBuf>,
        config: ServiceConfig,
        gt: GroundTruthCnn,
    ) -> Result<Self, SegmentError> {
        let store = SegmentStore::create(dir)?;
        Ok(Self::assemble(store, config, gt))
    }

    /// Reopens a service from a store directory: verifies and repairs the
    /// manifest ([`SegmentStore::open`]), reads the `service_state.json`
    /// sidecar and the per-seal centroid deltas, checks that every sealed
    /// cluster's centroid observation is resolvable, re-registers the
    /// recorded streams and resumes their cluster-key counters past the
    /// sealed segments.
    ///
    /// Ingest models restart from the bootstrap model and re-specialize on
    /// fresh samples (models are process state, not data); sealed records
    /// and their verdict-cache behaviour are unaffected.
    pub fn recover(
        dir: impl Into<PathBuf>,
        config: ServiceConfig,
        gt: GroundTruthCnn,
    ) -> Result<(Self, focus_index::OpenReport), SegmentError> {
        let dir = dir.into();
        let (store, report) = SegmentStore::open(&dir)?;
        let state_path = dir.join(SERVICE_STATE_FILE);
        let json = std::fs::read_to_string(&state_path).map_err(|source| {
            SegmentError::Persist(PersistError::Io {
                path: state_path.clone(),
                source,
            })
        })?;
        let state: ServiceState = serde_json::from_str(&json).map_err(|source| {
            SegmentError::Persist(PersistError::Format {
                path: Some(state_path.clone()),
                source,
            })
        })?;
        if state.version != SERVICE_STATE_VERSION {
            return Err(SegmentError::Persist(PersistError::VersionMismatch {
                path: Some(state_path),
                found: state.version,
                expected: SERVICE_STATE_VERSION,
            }));
        }
        let (centroids, next_delta) = Self::load_centroid_deltas(&dir)?;

        // Every sealed cluster must be verifiable after recovery, and new
        // cluster keys must continue past the sealed ones.
        let merged = store.merged_index()?;
        let mut next_keys: HashMap<StreamId, u64> = HashMap::new();
        for record in merged.clusters() {
            if !centroids.contains_key(&record.centroid_object) {
                return Err(SegmentError::Persist(PersistError::Io {
                    path: dir.clone(),
                    source: std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "sealed cluster {:?} has no centroid observation in any \
                             centroid delta",
                            record.key
                        ),
                    ),
                }));
            }
            let next = next_keys.entry(record.key.stream).or_insert(0);
            *next = (*next).max(record.key.local + 1);
        }

        let mut service = Self::assemble(store, config, gt);
        service.corpus.centroids = centroids;
        service.next_centroid_delta = next_delta;
        for (stream, fps) in state.streams {
            let stream = StreamId(stream);
            let mut pipeline = FramePipeline::new(stream, fps, service.config.worker.params);
            if let Some(next) = next_keys.get(&stream) {
                pipeline.start_cluster_keys_at(*next);
            }
            service.insert_stream(stream, pipeline);
        }
        Ok((service, report))
    }

    /// Unions every `centroids-NNNNNN.json` delta in `dir` and returns the
    /// map plus the next delta sequence number. Extra deltas (from a crash
    /// between delta write and segment seal, or from quarantined segments)
    /// are harmless supersets; a torn delta cannot exist (atomic writes)
    /// and a malformed one is a structured error.
    fn load_centroid_deltas(
        dir: &std::path::Path,
    ) -> Result<(HashMap<ObjectId, ObjectObservation>, u64), SegmentError> {
        let mut centroids = HashMap::new();
        let mut next_delta = 0u64;
        let entries = std::fs::read_dir(dir).map_err(|source| {
            SegmentError::Persist(PersistError::Io {
                path: dir.to_path_buf(),
                source,
            })
        })?;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(seq) = name
                .strip_prefix(CENTROID_DELTA_PREFIX)
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|digits| digits.parse::<u64>().ok())
            else {
                continue;
            };
            let path = entry.path();
            let json = std::fs::read_to_string(&path).map_err(|source| {
                SegmentError::Persist(PersistError::Io {
                    path: path.clone(),
                    source,
                })
            })?;
            let delta: CentroidDelta = serde_json::from_str(&json).map_err(|source| {
                SegmentError::Persist(PersistError::Format {
                    path: Some(path.clone()),
                    source,
                })
            })?;
            if delta.version != SERVICE_STATE_VERSION {
                return Err(SegmentError::Persist(PersistError::VersionMismatch {
                    path: Some(path),
                    found: delta.version,
                    expected: SERVICE_STATE_VERSION,
                }));
            }
            centroids.extend(delta.centroids);
            next_delta = next_delta.max(seq + 1);
        }
        Ok((centroids, next_delta))
    }

    fn assemble(store: SegmentStore, config: ServiceConfig, gt: GroundTruthCnn) -> Self {
        let bootstrap = IngestCnn::generic(config.worker.bootstrap_model);
        let corpus = SegmentedCorpus::new(store, HashMap::new(), bootstrap);
        let server = QueryServer::new(gt.clone(), config.gpus);
        let scheduler = GpuScheduler::new(config.gpus, config.priority, config.tick_secs);
        Self {
            gt_template: gt,
            config,
            corpus,
            streams: BTreeMap::new(),
            server,
            scheduler,
            io: IoMeter::new(),
            segments_sealed: 0,
            next_centroid_delta: 0,
            compactions: 0,
            queries_served: AtomicUsize::new(0),
            candidates_served: AtomicUsize::new(0),
            tail_candidates_served: AtomicUsize::new(0),
        }
    }

    /// Registers a stream; frames for unregistered streams panic in
    /// [`advance`](Self::advance). Persists the sidecar so the stream
    /// survives recovery.
    ///
    /// # Panics
    ///
    /// Panics if the stream is already registered.
    pub fn register_stream(&mut self, stream: StreamId, fps: u32) -> Result<(), SegmentError> {
        let pipeline = FramePipeline::new(stream, fps, self.config.worker.params);
        self.insert_stream(stream, pipeline);
        self.persist_state()
    }

    fn insert_stream(&mut self, stream: StreamId, pipeline: FramePipeline) {
        assert!(
            !self.streams.contains_key(&stream),
            "stream {} is already registered",
            stream.0
        );
        let state = StreamState {
            segmenter: StreamSegmenter::from_pipeline(pipeline, self.config.seal),
            lifecycle: SpecializationLifecycle::new(
                stream,
                self.config.worker.clone(),
                self.gt_template.clone(),
            ),
            model: IngestCnn::generic(self.config.worker.bootstrap_model),
            inferences_metered: 0,
        };
        self.streams.insert(stream, state);
    }

    /// Pushes a batch of live frames (any interleaving of registered
    /// streams, in stream order per stream). Seal-policy boundaries
    /// crossed during the call seal segments durably; retrain schedules
    /// coming due swap stream models and bump the verdict-cache epoch.
    /// All GPU work is submitted to the shared scheduler.
    ///
    /// # Panics
    ///
    /// Panics if a frame belongs to an unregistered stream.
    pub fn advance(&mut self, frames: &[Frame]) -> Result<AdvanceReport, SegmentError> {
        let spec_meter = GpuMeter::new();
        let mut report = AdvanceReport::default();
        for frame in frames {
            let stream = frame.stream_id;
            let (sealed, retrained) = {
                let state = self
                    .streams
                    .get_mut(&stream)
                    .unwrap_or_else(|| panic!("stream {} is not registered", stream.0));
                let StreamState {
                    segmenter,
                    lifecycle,
                    model,
                    inferences_metered,
                } = state;
                let part =
                    segmenter.push_frame_observed(frame, model.classifier.as_ref(), |obj, n| {
                        lifecycle.observe(obj, n, &spec_meter);
                    });
                let classified = segmenter.pipeline().stats().objects_classified;
                let new_inferences = classified - *inferences_metered;
                if new_inferences > 0 {
                    self.scheduler
                        .submit("ingest", model.cost_per_inference() * new_inferences);
                    *inferences_metered = classified;
                }
                let sealed = part.map(|part| {
                    let centroids = part_centroids(&part, segmenter.pipeline().centroids());
                    (part, centroids)
                });
                let retrained = lifecycle.maybe_retrain(frame.timestamp_secs);
                if let Some(m) = &retrained {
                    // Feature spaces of different models are not
                    // comparable: the old model's clusters seal into the
                    // tail before the swap.
                    segmenter.pipeline_mut().seal_epoch();
                    *model = m.clone();
                }
                (sealed, retrained)
            };
            if let Some((part, centroids)) = sealed {
                self.seal_durably(stream, part, centroids)?;
                report.segments_sealed += 1;
            }
            if let Some(model) = retrained {
                self.corpus.stream_models.insert(stream, model);
                // Conservative by design (the verdict cache would stay
                // correct: GT verdicts depend only on the observation and
                // the GT model, and object ids are never reused): bumping
                // the epoch on every model generation keeps cache lifetime
                // aligned with ingest epochs, at the cost of re-verifying
                // the working set after a retrain.
                self.server.invalidate();
                report.retrains += 1;
            }
            report.frames += 1;
        }
        let labelling = spec_meter.phase("specialization");
        self.scheduler.submit("specialization", labelling);
        Ok(report)
    }

    /// Serves a batch of queries over the snapshot-consistent union of
    /// sealed segments and every stream's hot tail. The tail overlay is
    /// built once per call; the verdict cache, dedupe and batched GT
    /// verification behave exactly as in [`QueryServer::serve`], and the
    /// query-side GPU work is submitted to the shared scheduler.
    pub fn serve(&self, requests: &[QueryRequest]) -> Result<Vec<QueryOutcome>, SegmentError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let tail = self.tail_snapshot();
        let mut plans = Vec::with_capacity(requests.len());
        let mut records = Vec::with_capacity(requests.len());
        // Accumulate accounting locally and commit only once every plan
        // succeeded: a planning error mid-batch serves nothing, so it must
        // also count nothing.
        let mut access = focus_index::SegmentAccess::default();
        let mut tail_candidates = 0usize;
        let mut candidates = 0usize;
        for request in requests {
            let planned = self.corpus.plan_with_tail(request, Some(&tail))?;
            access.merge(&planned.access);
            tail_candidates += planned.tail_records;
            candidates += planned.plan.candidates.len();
            plans.push(planned.plan);
            records.push(planned.records);
        }
        self.io.record_loads(access.cold_loads, access.bytes_read);
        self.io.record_cache_hits(access.cache_hits);
        self.tail_candidates_served
            .fetch_add(tail_candidates, Ordering::SeqCst);
        self.candidates_served
            .fetch_add(candidates, Ordering::SeqCst);
        let meter = GpuMeter::new();
        let outcomes = self.server.serve_resolved(
            &plans,
            &records,
            |id| {
                self.corpus
                    .centroids
                    .get(&id)
                    .or_else(|| tail.centroid(id))
                    .cloned()
            },
            &meter,
        );
        self.scheduler.submit("query", meter.phase("query"));
        self.queries_served
            .fetch_add(requests.len(), Ordering::SeqCst);
        Ok(outcomes)
    }

    /// A snapshot of every stream's not-yet-sealed records, taken at one
    /// instant (streams in id order).
    pub fn tail_snapshot(&self) -> TailOverlay {
        let mut tail = TailOverlay::new();
        for state in self.streams.values() {
            let (index, centroids) = state.segmenter.pipeline().peek_segment();
            if !index.is_empty() {
                tail.add_part(index, centroids);
            }
        }
        tail
    }

    /// One background maintenance tick: seals every stream tail that has
    /// hit its seal budget (exactly the segments the next frame push would
    /// have sealed, so maintenance never changes the partitioning),
    /// compacts the store when the small-segment count crosses the
    /// configured threshold, and drains one GPU-scheduler tick.
    pub fn maintain(&mut self) -> Result<MaintenanceReport, SegmentError> {
        let mut report = MaintenanceReport::default();
        let due: Vec<StreamId> = self
            .streams
            .iter()
            .filter(|(_, s)| s.segmenter.should_seal())
            .map(|(id, _)| *id)
            .collect();
        for stream in due {
            // seal_pending on a tail that emptied since the filter ran is
            // a no-op, so no re-check is needed.
            if self.seal_stream_unconditionally(stream)? {
                report.segments_sealed += 1;
            }
        }
        let small = self
            .corpus
            .store()
            .segments()
            .iter()
            .filter(|m| m.clusters <= self.config.small_segment_clusters)
            .count();
        if small >= self.config.compact_small_threshold {
            report.segments_folded = self
                .corpus
                .store_mut()
                .compact(self.config.compact_max_clusters)?;
            if report.segments_folded > 0 {
                self.compactions += 1;
            }
        }
        report.tick = self.scheduler.tick();
        Ok(report)
    }

    /// Unconditionally seals every stream's pending tail into the store
    /// (shutdown / checkpoint). After this, [`serve`](Self::serve) over
    /// the (now empty) tail and a cold recovery answer identically.
    pub fn seal_all(&mut self) -> Result<Vec<SegmentMeta>, SegmentError> {
        let streams: Vec<StreamId> = self.streams.keys().copied().collect();
        let before = self.corpus.store().len();
        for stream in streams {
            self.seal_stream_unconditionally(stream)?;
        }
        Ok(self.corpus.store().segments()[before..].to_vec())
    }

    /// Drains one stream's pending tail and seals it durably. Returns
    /// whether a segment was sealed.
    fn seal_stream_unconditionally(&mut self, stream: StreamId) -> Result<bool, SegmentError> {
        let (part, centroids) = {
            let state = self.streams.get_mut(&stream).expect("registered stream");
            let part = state.segmenter.seal_pending();
            if part.is_empty() {
                return Ok(false);
            }
            let centroids = part_centroids(&part, state.segmenter.pipeline().centroids());
            (part, centroids)
        };
        self.seal_durably(stream, part, centroids)?;
        Ok(true)
    }

    /// [`seal_part`](Self::seal_part) with the failure path a live service
    /// needs: if the durable write fails, the drained records are restored
    /// into the stream's hot tail ([`FramePipeline::restore_drained`]), so
    /// they stay visible to [`serve`](Self::serve) and the next seal
    /// attempt re-drains them — a transient I/O error never silently loses
    /// a time window.
    fn seal_durably(
        &mut self,
        stream: StreamId,
        part: TopKIndex,
        centroids: Vec<(ObjectId, ObjectObservation)>,
    ) -> Result<(), SegmentError> {
        if let Err(e) = self.seal_part(&part, centroids) {
            self.streams
                .get_mut(&stream)
                .expect("registered stream")
                .segmenter
                .pipeline_mut()
                .restore_drained(part);
            return Err(e);
        }
        Ok(())
    }

    /// Seals one drained part durably. Ordering: the part's centroid delta
    /// is persisted *first* (an extra delta is harmless; a segment whose
    /// centroids are missing would be unrecoverable), then the segment
    /// file + manifest. Each seal's sidecar I/O is proportional to the
    /// part, not to the service's history.
    fn seal_part(
        &mut self,
        part: &TopKIndex,
        mut centroids: Vec<(ObjectId, ObjectObservation)>,
    ) -> Result<(), SegmentError> {
        centroids.sort_by_key(|(id, _)| *id);
        let delta = CentroidDelta {
            version: SERVICE_STATE_VERSION,
            centroids,
        };
        let json = serde_json::to_string(&delta)
            .map_err(|source| SegmentError::Persist(PersistError::Format { path: None, source }))?;
        let path = self.corpus.store().dir().join(format!(
            "{CENTROID_DELTA_PREFIX}{:06}.json",
            self.next_centroid_delta
        ));
        write_atomic(&path, &json)
            .map_err(|source| SegmentError::Persist(PersistError::Io { path, source }))?;
        self.next_centroid_delta += 1;
        self.corpus.centroids.extend(delta.centroids);
        let meta = self.corpus.store_mut().seal(part)?;
        if meta.is_some() {
            self.segments_sealed += 1;
        }
        Ok(())
    }

    /// Writes the durable stream registry atomically next to the manifest.
    fn persist_state(&self) -> Result<(), SegmentError> {
        let state = ServiceState {
            version: SERVICE_STATE_VERSION,
            streams: self
                .streams
                .iter()
                .map(|(id, s)| (id.0, s.segmenter.pipeline().fps()))
                .collect(),
        };
        let json = serde_json::to_string(&state)
            .map_err(|source| SegmentError::Persist(PersistError::Format { path: None, source }))?;
        let path = self.corpus.store().dir().join(SERVICE_STATE_FILE);
        write_atomic(&path, &json)
            .map_err(|source| SegmentError::Persist(PersistError::Io { path, source }))
    }

    /// Replaces the ground-truth CNN everywhere it is consulted — the
    /// query server's verification (bumping the verdict-cache epoch) and
    /// every stream's labelling lifecycle.
    pub fn retrain_ground_truth(&mut self, gt: GroundTruthCnn) {
        self.server.retrain_ground_truth(gt.clone());
        for state in self.streams.values_mut() {
            state.lifecycle.set_ground_truth(gt.clone());
        }
        self.gt_template = gt;
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The embedded query server (verdict cache, GT epoch).
    pub fn query_server(&self) -> &QueryServer {
        &self.server
    }

    /// The shared GPU scheduler.
    pub fn scheduler(&self) -> &GpuScheduler {
        &self.scheduler
    }

    /// The query-side view of the corpus (store, centroids, routing
    /// models).
    pub fn corpus(&self) -> &SegmentedCorpus {
        &self.corpus
    }

    /// The durable segment store.
    pub fn store(&self) -> &SegmentStore {
        self.corpus.store()
    }

    /// The live ingest model of one stream (bootstrap model until the
    /// first specialization).
    pub fn stream_model(&self, stream: StreamId) -> Option<&IngestCnn> {
        self.streams.get(&stream).map(|s| &s.model)
    }

    /// Unified stats snapshot across every subsystem.
    pub fn stats(&self) -> ServiceStats {
        let mut frames = 0;
        let mut objects = 0;
        let mut retrains = 0;
        for state in self.streams.values() {
            let stats = state.segmenter.pipeline().stats();
            frames += stats.frames;
            objects += stats.objects;
            retrains += state.lifecycle.retrains();
        }
        ServiceStats {
            streams: self.streams.len(),
            frames_ingested: frames,
            objects_indexed: objects,
            retrains,
            segments: self.corpus.store().len(),
            store_clusters: self.corpus.store().total_clusters(),
            segments_sealed: self.segments_sealed,
            compactions: self.compactions,
            queries_served: self.queries_served.load(Ordering::SeqCst),
            candidates_served: self.candidates_served.load(Ordering::SeqCst),
            tail_candidates_served: self.tail_candidates_served.load(Ordering::SeqCst),
            cache: self.server.cache_stats(),
            io: self.io.snapshot(),
            lru: self.corpus.store().cache_occupancy(),
            gpu: self.scheduler.stats(),
        }
    }
}

/// The centroid observations behind a drained part's records, read from
/// the pipeline's cumulative centroid map.
fn part_centroids(
    part: &TopKIndex,
    centroids: &HashMap<ObjectId, ObjectObservation>,
) -> Vec<(ObjectId, ObjectObservation)> {
    part.clusters()
        .map(|record| {
            (
                record.centroid_object,
                centroids[&record.centroid_object].clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_video::profile::profile_by_name;
    use focus_video::VideoDataset;
    use std::path::PathBuf;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("focus_service_unit_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quiet_config() -> ServiceConfig {
        ServiceConfig {
            worker: StreamWorkerConfig {
                bootstrap_secs: 1e9,
                retrain_interval_secs: 1e9,
                gt_label_fraction: 0.0,
                ..StreamWorkerConfig::default()
            },
            seal: SealPolicy::every_secs(10.0),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn service_stats_fold_every_subsystem_and_serialize() {
        let profile = profile_by_name("auburn_c").unwrap();
        let ds = VideoDataset::generate(profile.clone(), 25.0);
        let dir = test_dir("stats");
        let mut service =
            FocusService::create(&dir, quiet_config(), GroundTruthCnn::resnet152()).unwrap();
        service
            .register_stream(profile.stream_id, profile.fps)
            .unwrap();
        service.advance(&ds.frames).unwrap();
        let class = ds.dominant_classes(1)[0];
        service.serve(&[QueryRequest::new(class)]).unwrap();
        service.maintain().unwrap();

        let stats = service.stats();
        assert_eq!(stats.streams, 1);
        assert_eq!(stats.frames_ingested, ds.frames.len());
        assert_eq!(stats.objects_indexed, ds.object_count());
        assert!(stats.segments >= 2);
        assert_eq!(stats.queries_served, 1);
        assert!(stats.candidates_served > 0);
        assert!(stats.cache.misses > 0, "fresh verdicts were computed");
        assert!(stats.gpu.ingest_submitted_secs > 0.0);
        assert!(stats.gpu.query_submitted_secs > 0.0);
        assert_eq!(stats.gpu.ticks, 1);
        assert!(stats.tail_hit_fraction() >= 0.0);

        // The whole snapshot is one serde-serializable struct and
        // round-trips.
        let json = serde_json::to_string(&stats).unwrap();
        let back: ServiceStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_and_query_share_one_gpu_budget() {
        let profile = profile_by_name("auburn_c").unwrap();
        let ds = VideoDataset::generate(profile.clone(), 20.0);
        let dir = test_dir("budget");
        let config = ServiceConfig {
            gpus: GpuClusterSpec::new(2),
            priority: GpuPriorityPolicy::QueryFirst,
            tick_secs: 0.05,
            ..quiet_config()
        };
        let mut service = FocusService::create(&dir, config, GroundTruthCnn::resnet152()).unwrap();
        service
            .register_stream(profile.stream_id, profile.fps)
            .unwrap();
        service.advance(&ds.frames).unwrap();
        let class = ds.dominant_classes(1)[0];
        service.serve(&[QueryRequest::new(class)]).unwrap();

        // Both sides were charged against the same scheduler, and a
        // query-first tick under backlog serves the query side first.
        let tick = service.maintain().unwrap().tick;
        let stats = service.scheduler().stats();
        assert!(stats.ingest_submitted_secs > 0.0);
        assert!(stats.query_submitted_secs > 0.0);
        assert!(
            (stats.ingest_served_secs
                + stats.query_served_secs
                + stats.ingest_backlog_secs
                + stats.query_backlog_secs
                - stats.ingest_submitted_secs
                - stats.query_submitted_secs)
                .abs()
                < 1e-9,
            "budget conservation"
        );
        if tick.query_backlog_secs > 0.0 {
            assert_eq!(
                tick.ingest_served_secs, 0.0,
                "query-first never serves ingest while query work is queued"
            );
        }
        // The scheduler's meter carries the ordinary per-phase accounting.
        assert!(service.scheduler().meter().phase("ingest").seconds() > 0.0);
        assert!(service.scheduler().meter().phase("query").seconds() > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn advancing_an_unregistered_stream_panics() {
        let profile = profile_by_name("auburn_c").unwrap();
        let ds = VideoDataset::generate(profile, 2.0);
        let dir = test_dir("unregistered");
        let mut service =
            FocusService::create(&dir, quiet_config(), GroundTruthCnn::resnet152()).unwrap();
        let _ = service.advance(&ds.frames);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn double_registration_panics() {
        let dir = test_dir("double_reg");
        let mut service =
            FocusService::create(&dir, quiet_config(), GroundTruthCnn::resnet152()).unwrap();
        service.register_stream(StreamId(1), 30).unwrap();
        let _ = service.register_stream(StreamId(1), 30);
    }

    #[test]
    fn empty_serve_is_a_no_op() {
        let dir = test_dir("empty_serve");
        let service =
            FocusService::create(&dir, quiet_config(), GroundTruthCnn::resnet152()).unwrap();
        assert!(service.serve(&[]).unwrap().is_empty());
        assert_eq!(service.stats().queries_served, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
