//! The live Focus service: one long-lived object that ingests and serves
//! at the same time.
//!
//! The batch drivers run the paper's two sides as disjoint phases — ingest
//! finishes, *then* queries are served — so frames indexed since the last
//! segment seal are invisible to queries and nothing arbitrates the GPU
//! between the sides. [`FocusService`] unifies them:
//!
//! * **Hot tail + sealed past** (LSM-style read path): each stream owns a
//!   [`StreamSegmenter`] whose pipeline accumulates not-yet-sealed records
//!   in memory; sealed segments live in the durable [`SegmentStore`]. A
//!   [`serve`](FocusService::serve) call snapshots every stream's tail
//!   once ([`FramePipeline::peek_segment`]), overlays it on the store
//!   ([`SegmentedCorpus::plan_with_tail`]) and answers from the union —
//!   proven byte-identical to sealing everything first and then querying
//!   (`tests/live_service.rs`).
//! * **Snapshot consistency**: the tail overlay is built once per serve
//!   call, so every query of the call sees the same instant; the verdict
//!   cache keys by `(centroid, ground-truth epoch)` exactly as in the
//!   standalone [`QueryServer`], so nothing cached for the current epoch
//!   is ever re-verified.
//! * **Specialization behind the service**: each stream runs the
//!   bootstrap → specialize → retrain lifecycle
//!   ([`SpecializationLifecycle`]); a retrain seals the pipeline's model
//!   epoch, installs the stream's new routing model, and bumps the query
//!   server's verdict-cache epoch automatically.
//! * **One GPU budget**: ingest classification, specialization labelling
//!   and query-time GT verification are all submitted to a shared
//!   [`GpuScheduler`], whose priority policy decides who gets capacity
//!   when both sides want it (the paper's §5 tradeoff, live).
//! * **Background maintenance**: [`maintain`](FocusService::maintain)
//!   seals tails that hit their [`SealPolicy`] budget, triggers
//!   [`compact`](focus_index::SegmentStore::compact) when the
//!   small-segment count crosses a threshold, and drains one scheduler
//!   tick.
//! * **Durability**: the service persists a `service_state.json` stream
//!   registry plus one append-only `centroids-NNNNNN.json` delta per seal
//!   (written *before* the segment, so a sealed segment is always
//!   verifiable), and [`recover`](FocusService::recover) reopens the
//!   manifest, unions the deltas, resumes cluster-key counters past the
//!   sealed segments and keeps ingesting.
//!
//! See `docs/service.md` for the lifecycle walkthrough.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};

use focus_cnn::GroundTruthCnn;
use focus_index::persist::{write_atomic, PersistError};
use focus_index::{
    LruOccupancy, SegmentError, SegmentFormat, SegmentMeta, SegmentStore, TopKIndex,
};
use focus_runtime::{
    GpuClusterSpec, GpuMeter, GpuPriorityPolicy, GpuScheduler, GpuSchedulerStats, IoMeter, IoStats,
    TickReport,
};
use focus_video::{Frame, ObjectId, ObjectObservation, StreamId};

use crate::adapt::{
    AdaptationConfig, GovernorConfig, Reconfiguration, StreamController, WorkloadGovernor,
};
use crate::ingest::IngestCnn;
use crate::params::SelectedConfiguration;
use crate::pipeline::FramePipeline;
use crate::query::anytime::{run_anytime, AnytimeOutcome, AnytimePartial};
use crate::query::segmented::{SegmentedCorpus, TailOverlay};
use crate::query::{QueryOutcome, QueryRequest};
use crate::query_server::{CacheStats, QueryServer};
use crate::segment_ingest::{SealPolicy, StreamSegmenter};
use crate::serving::ServingStats;
use crate::worker::{SpecializationLifecycle, StreamWorkerConfig};

/// Name of the service's durable sidecar next to the store's manifest.
pub const SERVICE_STATE_FILE: &str = "service_state.json";

/// Version of the service-state sidecar format.
pub const SERVICE_STATE_VERSION: u32 = 1;

/// File-name prefix of the per-seal centroid delta files (see
/// [`FocusService::recover`]).
pub const CENTROID_DELTA_PREFIX: &str = "centroids-";

/// Configuration of a [`FocusService`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Per-stream ingest parameters and specialization lifecycle
    /// (bootstrap model, retrain schedule, GT-labelling fraction).
    pub worker: StreamWorkerConfig,
    /// When a stream's pending records become an immutable segment.
    pub seal: SealPolicy,
    /// The GPU fleet shared by ingest and queries.
    pub gpus: GpuClusterSpec,
    /// How the shared fleet's capacity is split between ingest and query
    /// backlogs.
    pub priority: GpuPriorityPolicy,
    /// Wall-clock length of one scheduler tick
    /// ([`FocusService::maintain`] drains one tick per call).
    pub tick_secs: f64,
    /// A live segment with at most this many clusters counts as *small*
    /// for the compaction trigger.
    pub small_segment_clusters: usize,
    /// Maintenance compacts the store once this many small segments are
    /// live.
    pub compact_small_threshold: usize,
    /// Fold budget handed to [`SegmentStore::compact`]: adjacent segments
    /// are merged while their combined record count stays within this.
    pub compact_max_clusters: usize,
    /// On-disk format newly sealed segments are written in. Binary by
    /// default; pinning [`SegmentFormat::Json`] keeps a store
    /// human-readable (existing JSON segments are still served either way,
    /// and migrated when [`ServiceConfig::migrate_per_maintain`] allows).
    #[serde(default)]
    pub seal_format: SegmentFormat,
    /// JSON segments rewritten to the binary format per maintenance tick
    /// ([`SegmentStore::migrate_format`]; 0 disables migration — the value
    /// a config persisted before this field existed deserializes to).
    #[serde(default)]
    pub migrate_per_maintain: usize,
    /// Manifest-adjacent segments prefetched into the cache per maintenance
    /// tick ([`SegmentStore::prefetch_adjacent`]; 0 disables prefetch —
    /// the value a config persisted before this field existed deserializes
    /// to).
    #[serde(default)]
    pub prefetch_per_maintain: usize,
    /// Drift-aware per-stream adaptation (`None` disables it): every
    /// stream gets a [`StreamController`] auditing the live class
    /// distribution and re-selecting the configuration when it drifts
    /// (see [`crate::adapt`]).
    #[serde(default)]
    pub adaptation: Option<AdaptationConfig>,
    /// Workload-driven GPU governor (`None` disables it): retargets a
    /// `Weighted` [`GpuPriorityPolicy`] from the observed backlogs each
    /// maintenance tick.
    #[serde(default)]
    pub governor: Option<GovernorConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            worker: StreamWorkerConfig::default(),
            seal: SealPolicy::default(),
            gpus: GpuClusterSpec::default(),
            priority: GpuPriorityPolicy::QueryFirst,
            tick_secs: 1.0,
            small_segment_clusters: 32,
            compact_small_threshold: 8,
            compact_max_clusters: 256,
            seal_format: SegmentFormat::Binary,
            migrate_per_maintain: 2,
            prefetch_per_maintain: 2,
            adaptation: None,
            governor: None,
        }
    }
}

/// What one [`FocusService::advance`] call did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdvanceReport {
    /// Frames pushed.
    pub frames: usize,
    /// Segments sealed to the store by seal-policy boundaries crossed
    /// during the call.
    pub segments_sealed: usize,
    /// Specialized models (re)trained during the call (each bumped the
    /// verdict-cache epoch).
    pub retrains: usize,
}

/// What one [`FocusService::maintain`] tick did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceReport {
    /// Segments sealed because their stream's tail had hit a seal budget.
    pub segments_sealed: usize,
    /// Segments folded away by compaction (zero when the small-segment
    /// trigger was not crossed).
    pub segments_folded: usize,
    /// JSON segments rewritten to the binary format this tick (see
    /// [`ServiceConfig::migrate_per_maintain`]).
    #[serde(default)]
    pub segments_migrated: usize,
    /// Recently-cold-adjacent segments prefetched into the cache this tick
    /// (see [`ServiceConfig::prefetch_per_maintain`]).
    #[serde(default)]
    pub segments_prefetched: usize,
    /// Streams whose controller detected drift and installed a re-selected
    /// configuration during this tick.
    #[serde(default)]
    pub reconfigured_streams: usize,
    /// The query share the workload governor retargeted the scheduler to,
    /// when it acted this tick.
    #[serde(default)]
    pub governor_query_share: Option<f64>,
    /// The GPU scheduler tick drained by this call.
    pub tick: TickReport,
}

/// Unified, serializable snapshot of everything the service is doing:
/// ingest progress, storage shape, verdict-cache activity, storage I/O,
/// segment-LRU occupancy and the shared GPU scheduler's breakdown — one
/// struct instead of four separate snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Streams registered.
    pub streams: usize,
    /// Frames pushed across all streams.
    pub frames_ingested: usize,
    /// Object observations indexed across all streams.
    pub objects_indexed: usize,
    /// Specialized models (re)trained across all streams.
    pub retrains: usize,
    /// Drift-triggered configuration re-selections installed across all
    /// streams (see [`crate::adapt::StreamController`]).
    #[serde(default)]
    pub reconfigurations: usize,
    /// Audit labels drawn by the adaptation controllers (each one a GT
    /// inference on the shared budget, phase `"audit"`).
    #[serde(default)]
    pub audit_labels: usize,
    /// Times the workload governor retargeted the scheduler's query share.
    #[serde(default)]
    pub governor_retargets: usize,
    /// Live segments in the store.
    pub segments: usize,
    /// Cluster records in live segments.
    pub store_clusters: usize,
    /// Segments sealed since the service started.
    pub segments_sealed: usize,
    /// Maintenance compactions run.
    pub compactions: usize,
    /// Queries served.
    pub queries_served: usize,
    /// Candidate clusters served across all queries.
    pub candidates_served: usize,
    /// Candidates resolved from the in-memory tail (the rest came from
    /// sealed segments).
    pub tail_candidates_served: usize,
    /// Verdict-cache activity of the embedded [`QueryServer`].
    pub cache: CacheStats,
    /// Storage-I/O counters (cold loads, cache hits, bytes).
    pub io: IoStats,
    /// Tiered segment-cache snapshot: decoded-block and raw-bytes
    /// occupancy plus per-tier hit counters, so dashboards see where cold
    /// reads actually land.
    pub lru: LruOccupancy,
    /// Shared GPU scheduler breakdown (per-phase submissions, per-side
    /// served/backlog, utilization inputs).
    pub gpu: GpuSchedulerStats,
    /// Request-plane SLO counters and latency histograms (admission,
    /// shedding, deadlines). Empty unless a
    /// [`RequestPlane`](crate::serving::RequestPlane) fronts the service —
    /// see [`RequestPlane::stats`](crate::serving::RequestPlane::stats).
    #[serde(default)]
    pub serving: ServingStats,
}

impl ServiceStats {
    /// Fraction of served candidates that were resolved from the hot tail
    /// (0.0 before any query).
    pub fn tail_hit_fraction(&self) -> f64 {
        if self.candidates_served == 0 {
            0.0
        } else {
            self.tail_candidates_served as f64 / self.candidates_served as f64
        }
    }
}

/// Durable sidecar: the registered streams (segment files and the
/// manifest know nothing about stream frame rates) plus each stream's
/// historical query routing. Rewritten atomically on every
/// [`FocusService::register_stream`] and on every model install (retrain
/// or reconfiguration).
#[derive(Debug, Serialize, Deserialize)]
struct ServiceState {
    version: u32,
    /// `(stream id, fps)` for every registered stream.
    streams: Vec<(u32, u32)>,
    /// Per-stream folded routing of every specialized model generation —
    /// the retired ones plus the one live at persist time (a restart
    /// effectively retires it too: models are process state and restart
    /// from bootstrap, but the records they indexed are durable and must
    /// stay findable under their routing). Absent for streams that never
    /// specialized. Missing in pre-adaptation sidecars (`serde(default)`).
    #[serde(default)]
    retired_routes: Vec<(u32, crate::query::segmented::RetiredRouting)>,
}

/// One durable centroid delta: the observations behind one sealed
/// segment's records (segment files store records, not observations, and
/// the GT-CNN needs the observation to verify a centroid at query time).
///
/// Deltas are append-only — one `centroids-NNNNNN.json` file per seal,
/// written atomically *before* the segment itself — so each seal's sidecar
/// I/O is proportional to that segment, not to the service's lifetime, and
/// a crash between the two writes leaves a harmless extra delta, never an
/// unverifiable segment. [`FocusService::recover`] unions every delta.
#[derive(Debug, Serialize, Deserialize)]
struct CentroidDelta {
    version: u32,
    /// Centroid observations, sorted by object id for deterministic bytes.
    centroids: Vec<(ObjectId, ObjectObservation)>,
}

/// Per-stream live state: the incremental segmenter (hot tail) plus the
/// specialization lifecycle and the live ingest model.
struct StreamState {
    segmenter: StreamSegmenter,
    lifecycle: SpecializationLifecycle,
    /// The drift-aware adaptation controller (present when the service
    /// runs with [`ServiceConfig::adaptation`]).
    controller: Option<StreamController>,
    model: IngestCnn,
    /// Classifications already submitted to the scheduler (per-frame
    /// deltas, exact inference counts — no float telescoping).
    inferences_metered: usize,
}

/// The live Focus service (see the module docs).
///
/// # Examples
///
/// ```
/// use focus_core::prelude::*;
/// use focus_core::service::{FocusService, ServiceConfig};
/// use focus_cnn::GroundTruthCnn;
/// use focus_video::profile::profile_by_name;
///
/// let dir = std::env::temp_dir().join("focus_service_doc");
/// let _ = std::fs::remove_dir_all(&dir);
/// let mut service = FocusService::create(
///     &dir,
///     ServiceConfig {
///         seal: SealPolicy::every_secs(10.0),
///         ..ServiceConfig::default()
///     },
///     GroundTruthCnn::resnet152(),
/// )
/// .unwrap();
///
/// let profile = profile_by_name("auburn_c").unwrap();
/// let ds = focus_video::VideoDataset::generate(profile.clone(), 25.0);
/// service.register_stream(profile.stream_id, profile.fps).unwrap();
///
/// // Interleave ingest and queries: results issued mid-ingest include
/// // the not-yet-sealed tail.
/// service.advance(&ds.frames).unwrap();
/// let class = ds.dominant_classes(1)[0];
/// let outcomes = service
///     .serve(&[focus_core::query::QueryRequest::new(class)])
///     .unwrap();
/// assert!(!outcomes[0].frames.is_empty());
///
/// let stats = service.stats();
/// assert_eq!(stats.queries_served, 1);
/// assert!(stats.tail_hit_fraction() > 0.0, "the tail answered part of it");
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct FocusService {
    config: ServiceConfig,
    /// The ground-truth CNN handed to newly registered streams' labelling
    /// lifecycles (the query server holds its own copy behind the epoch
    /// lock).
    gt_template: GroundTruthCnn,
    corpus: SegmentedCorpus,
    streams: BTreeMap<StreamId, StreamState>,
    server: QueryServer,
    scheduler: GpuScheduler,
    governor: Option<WorkloadGovernor>,
    io: IoMeter,
    segments_sealed: usize,
    reconfigurations: usize,
    /// Sequence number of the next per-seal centroid delta file.
    next_centroid_delta: u64,
    compactions: usize,
    queries_served: AtomicUsize,
    candidates_served: AtomicUsize,
    tail_candidates_served: AtomicUsize,
}

impl std::fmt::Debug for FocusService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FocusService")
            .field("streams", &self.streams.len())
            .field("segments", &self.corpus.store().len())
            .finish()
    }
}

impl FocusService {
    /// Creates a fresh service over a new store at `dir`.
    pub fn create(
        dir: impl Into<PathBuf>,
        config: ServiceConfig,
        gt: GroundTruthCnn,
    ) -> Result<Self, SegmentError> {
        let store = SegmentStore::create(dir)?;
        Ok(Self::assemble(store, config, gt))
    }

    /// Reopens a service from a store directory: verifies and repairs the
    /// manifest ([`SegmentStore::open`]), reads the `service_state.json`
    /// sidecar and the per-seal centroid deltas, checks that every sealed
    /// cluster's centroid observation is resolvable, re-registers the
    /// recorded streams and resumes their cluster-key counters past the
    /// sealed segments.
    ///
    /// Ingest models restart from the bootstrap model and re-specialize on
    /// fresh samples (models are process state, not data); sealed records
    /// and their verdict-cache behaviour are unaffected.
    pub fn recover(
        dir: impl Into<PathBuf>,
        config: ServiceConfig,
        gt: GroundTruthCnn,
    ) -> Result<(Self, focus_index::OpenReport), SegmentError> {
        let dir = dir.into();
        let (store, report) = SegmentStore::open(&dir)?;
        let state_path = dir.join(SERVICE_STATE_FILE);
        let json = std::fs::read_to_string(&state_path).map_err(|source| {
            SegmentError::Persist(PersistError::Io {
                path: state_path.clone(),
                source,
            })
        })?;
        let state: ServiceState = serde_json::from_str(&json).map_err(|source| {
            SegmentError::Persist(PersistError::Format {
                path: Some(state_path.clone()),
                source,
            })
        })?;
        if state.version != SERVICE_STATE_VERSION {
            return Err(SegmentError::Persist(PersistError::VersionMismatch {
                path: Some(state_path),
                found: state.version,
                expected: SERVICE_STATE_VERSION,
            }));
        }
        let (centroids, next_delta) = Self::load_centroid_deltas(&dir)?;

        // Every sealed cluster must be verifiable after recovery, and new
        // cluster keys must continue past the sealed ones.
        let merged = store.merged_index()?;
        let mut next_keys: HashMap<StreamId, u64> = HashMap::new();
        for record in merged.clusters() {
            if !centroids.contains_key(&record.centroid_object) {
                return Err(SegmentError::Persist(PersistError::Io {
                    path: dir.clone(),
                    source: std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "sealed cluster {:?} has no centroid observation in any \
                             centroid delta",
                            record.key
                        ),
                    ),
                }));
            }
            let next = next_keys.entry(record.key.stream).or_insert(0);
            *next = (*next).max(record.key.local + 1);
        }

        let mut service = Self::assemble(store, config, gt);
        service.corpus.centroids = centroids;
        service.next_centroid_delta = next_delta;
        for (stream, fps) in state.streams {
            let stream = StreamId(stream);
            let mut pipeline = FramePipeline::new(stream, fps, service.config.worker.params);
            if let Some(next) = next_keys.get(&stream) {
                pipeline.start_cluster_keys_at(*next);
            }
            service.insert_stream(stream, pipeline);
        }
        // Every specialized generation that ever indexed records — the
        // retired ones and the one live at crash time — stays in the query
        // routing, so sealed epochs posted under OTHER remain reachable
        // after recovery exactly as before it.
        for (stream, routing) in state.retired_routes {
            service
                .corpus
                .retired_routes
                .insert(StreamId(stream), routing);
        }
        Ok((service, report))
    }

    /// Unions every `centroids-NNNNNN.json` delta in `dir` and returns the
    /// map plus the next delta sequence number. Extra deltas (from a crash
    /// between delta write and segment seal, or from quarantined segments)
    /// are harmless supersets; a torn delta cannot exist (atomic writes)
    /// and a malformed one is a structured error.
    fn load_centroid_deltas(
        dir: &std::path::Path,
    ) -> Result<(HashMap<ObjectId, ObjectObservation>, u64), SegmentError> {
        let mut centroids = HashMap::new();
        let mut next_delta = 0u64;
        let entries = std::fs::read_dir(dir).map_err(|source| {
            SegmentError::Persist(PersistError::Io {
                path: dir.to_path_buf(),
                source,
            })
        })?;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(seq) = name
                .strip_prefix(CENTROID_DELTA_PREFIX)
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|digits| digits.parse::<u64>().ok())
            else {
                continue;
            };
            let path = entry.path();
            let json = std::fs::read_to_string(&path).map_err(|source| {
                SegmentError::Persist(PersistError::Io {
                    path: path.clone(),
                    source,
                })
            })?;
            let delta: CentroidDelta = serde_json::from_str(&json).map_err(|source| {
                SegmentError::Persist(PersistError::Format {
                    path: Some(path.clone()),
                    source,
                })
            })?;
            if delta.version != SERVICE_STATE_VERSION {
                return Err(SegmentError::Persist(PersistError::VersionMismatch {
                    path: Some(path),
                    found: delta.version,
                    expected: SERVICE_STATE_VERSION,
                }));
            }
            centroids.extend(delta.centroids);
            next_delta = next_delta.max(seq + 1);
        }
        Ok((centroids, next_delta))
    }

    fn assemble(store: SegmentStore, config: ServiceConfig, gt: GroundTruthCnn) -> Self {
        let store = store.with_seal_format(config.seal_format);
        let bootstrap = IngestCnn::generic(config.worker.bootstrap_model);
        let corpus = SegmentedCorpus::new(store, HashMap::new(), bootstrap);
        let server = QueryServer::new(gt.clone(), config.gpus);
        let scheduler = GpuScheduler::new(config.gpus, config.priority, config.tick_secs);
        let governor = config.governor.map(WorkloadGovernor::new);
        Self {
            gt_template: gt,
            config,
            corpus,
            streams: BTreeMap::new(),
            server,
            scheduler,
            governor,
            io: IoMeter::new(),
            segments_sealed: 0,
            reconfigurations: 0,
            next_centroid_delta: 0,
            compactions: 0,
            queries_served: AtomicUsize::new(0),
            candidates_served: AtomicUsize::new(0),
            tail_candidates_served: AtomicUsize::new(0),
        }
    }

    /// Registers a stream; frames for unregistered streams panic in
    /// [`advance`](Self::advance). Persists the sidecar so the stream
    /// survives recovery.
    ///
    /// # Panics
    ///
    /// Panics if the stream is already registered.
    pub fn register_stream(&mut self, stream: StreamId, fps: u32) -> Result<(), SegmentError> {
        let pipeline = FramePipeline::new(stream, fps, self.config.worker.params);
        self.insert_stream(stream, pipeline);
        self.persist_state()
    }

    fn insert_stream(&mut self, stream: StreamId, pipeline: FramePipeline) {
        assert!(
            !self.streams.contains_key(&stream),
            "stream {} is already registered",
            stream.0
        );
        let controller = self.config.adaptation.clone().map(|config| {
            StreamController::new(stream, pipeline.fps(), config, self.gt_template.clone())
        });
        let state = StreamState {
            segmenter: StreamSegmenter::from_pipeline(pipeline, self.config.seal),
            lifecycle: SpecializationLifecycle::new(
                stream,
                self.config.worker.clone(),
                self.gt_template.clone(),
            ),
            controller,
            model: IngestCnn::generic(self.config.worker.bootstrap_model),
            inferences_metered: 0,
        };
        self.streams.insert(stream, state);
    }

    /// Pushes a batch of live frames (any interleaving of registered
    /// streams, in stream order per stream). Seal-policy boundaries
    /// crossed during the call seal segments durably; retrain schedules
    /// coming due swap stream models and bump the verdict-cache epoch.
    /// All GPU work is submitted to the shared scheduler.
    ///
    /// # Panics
    ///
    /// Panics if a frame belongs to an unregistered stream.
    pub fn advance(&mut self, frames: &[Frame]) -> Result<AdvanceReport, SegmentError> {
        let spec_meter = GpuMeter::new();
        let mut report = AdvanceReport::default();
        for frame in frames {
            let stream = frame.stream_id;
            let (sealed, retrained) = {
                let state = self
                    .streams
                    .get_mut(&stream)
                    .unwrap_or_else(|| panic!("stream {} is not registered", stream.0));
                let StreamState {
                    segmenter,
                    lifecycle,
                    controller,
                    model,
                    inferences_metered,
                } = state;
                if let Some(controller) = controller.as_mut() {
                    controller.note_frame(frame);
                }
                let part =
                    segmenter.push_frame_observed(frame, model.classifier.as_ref(), |obj, n| {
                        lifecycle.observe(obj, n, &spec_meter);
                        if let Some(controller) = controller.as_mut() {
                            controller.observe(obj, n, &spec_meter);
                        }
                    });
                let classified = segmenter.pipeline().stats().objects_classified;
                let new_inferences = classified - *inferences_metered;
                if new_inferences > 0 {
                    self.scheduler
                        .submit("ingest", model.cost_per_inference() * new_inferences);
                    *inferences_metered = classified;
                }
                let sealed = part.map(|part| {
                    let centroids = part_centroids(&part, segmenter.pipeline().centroids());
                    (part, centroids)
                });
                let retrained = lifecycle.maybe_retrain(frame.timestamp_secs);
                if let Some(m) = &retrained {
                    // Feature spaces of different models are not
                    // comparable: the old model's clusters seal into the
                    // tail before the swap.
                    segmenter.pipeline_mut().seal_epoch();
                    *model = m.clone();
                    // The specialization sample's class mix becomes the
                    // drift detector's reference: the configuration now in
                    // force was chosen for exactly that distribution.
                    if let Some(controller) = controller.as_mut() {
                        controller.set_reference(lifecycle.sample_class_histogram());
                    }
                }
                (sealed, retrained)
            };
            if let Some((part, centroids)) = sealed {
                self.seal_durably(stream, part, centroids)?;
                report.segments_sealed += 1;
            }
            if let Some(model) = retrained {
                self.corpus.install_stream_model(stream, model);
                // Conservative by design (the verdict cache would stay
                // correct: GT verdicts depend only on the observation and
                // the GT model, and object ids are never reused): bumping
                // the epoch on every model generation keeps cache lifetime
                // aligned with ingest epochs, at the cost of re-verifying
                // the working set after a retrain.
                self.server.invalidate();
                // The new generation's routing must survive a restart.
                self.persist_state()?;
                report.retrains += 1;
            }
            report.frames += 1;
        }
        let labelling = spec_meter.phase("specialization");
        self.scheduler.submit("specialization", labelling);
        self.scheduler.submit("audit", spec_meter.phase("audit"));
        Ok(report)
    }

    /// Frames pushed since each registered stream's last durable seal —
    /// exactly the suffix of that stream's pushed frame sequence whose
    /// records live only in the in-memory tail. A coordinator that keeps a
    /// replay buffer per stream trims it to this count after every
    /// [`advance`](Self::advance)/[`maintain`](Self::maintain): replaying
    /// the retained suffix into a [`recover`](Self::recover)ed service
    /// rebuilds the tail byte-identically (each seal starts a fresh
    /// pipeline epoch, so the tail is a pure function of these frames).
    pub fn pending_frames_by_stream(&self) -> BTreeMap<StreamId, usize> {
        self.streams
            .iter()
            .map(|(stream, state)| (*stream, state.segmenter.pending_frames()))
            .collect()
    }

    /// The registered streams and their frame rates.
    pub fn registered_streams(&self) -> BTreeMap<StreamId, u32> {
        self.streams
            .iter()
            .map(|(stream, state)| (*stream, state.segmenter.pipeline().fps()))
            .collect()
    }

    /// Serves a batch of queries over the snapshot-consistent union of
    /// sealed segments and every stream's hot tail. The tail overlay is
    /// built once per call; the verdict cache, dedupe and batched GT
    /// verification behave exactly as in [`QueryServer::serve`], and the
    /// query-side GPU work is submitted to the shared scheduler.
    pub fn serve(&self, requests: &[QueryRequest]) -> Result<Vec<QueryOutcome>, SegmentError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let tail = self.tail_snapshot();
        let mut plans = Vec::with_capacity(requests.len());
        let mut records = Vec::with_capacity(requests.len());
        // Accumulate accounting locally and commit only once every plan
        // succeeded: a planning error mid-batch serves nothing, so it must
        // also count nothing.
        let mut access = focus_index::SegmentAccess::default();
        let mut tail_candidates = 0usize;
        let mut candidates = 0usize;
        for request in requests {
            let planned = self.corpus.plan_with_tail(request, Some(&tail))?;
            access.merge(&planned.access);
            tail_candidates += planned.tail_records;
            candidates += planned.plan.candidates.len();
            plans.push(planned.plan);
            records.push(planned.records);
        }
        self.io.record_loads(access.cold_loads, access.bytes_read);
        self.io.record_cache_hits(access.cache_hits);
        self.io
            .record_blocks(access.blocks_read, access.block_raw_hits, access.block_hits);
        self.tail_candidates_served
            .fetch_add(tail_candidates, Ordering::SeqCst);
        self.candidates_served
            .fetch_add(candidates, Ordering::SeqCst);
        let meter = GpuMeter::new();
        let outcomes = self.server.serve_resolved(
            &plans,
            &records,
            |id| {
                self.corpus
                    .centroids
                    .get(&id)
                    .or_else(|| tail.centroid(id))
                    .cloned()
            },
            &meter,
        );
        self.scheduler.submit("query", meter.phase("query"));
        self.queries_served
            .fetch_add(requests.len(), Ordering::SeqCst);
        Ok(outcomes)
    }

    /// Serves one query incrementally through the anytime loop
    /// ([`crate::query::anytime`]): the candidate set is chunked by
    /// sealed segment (plus the hot tail), GT verification is spent
    /// adaptively on the most promising chunk, and the returned
    /// [`AnytimeOutcome`] carries every round's [`AnytimePartial`]. The
    /// per-round verification work is submitted to the shared scheduler
    /// under the `"anytime"` phase, so interactive anytime queries
    /// coexist with exact queries and ingest on one GPU budget.
    ///
    /// Termination (budget / confidence / exhaustion) follows
    /// `request.anytime`; run to candidate exhaustion, the outcome's
    /// frames and objects are byte-identical to [`serve`](Self::serve)'s.
    pub fn serve_anytime(&self, request: &QueryRequest) -> Result<AnytimeOutcome, SegmentError> {
        self.serve_anytime_with(request, |_| {})
    }

    /// [`serve_anytime`](Self::serve_anytime), streaming each round's
    /// [`AnytimePartial`] to `on_partial` as it is produced — the hook the
    /// request plane's streaming-partials dispatch uses.
    pub fn serve_anytime_with(
        &self,
        request: &QueryRequest,
        on_partial: impl FnMut(&AnytimePartial),
    ) -> Result<AnytimeOutcome, SegmentError> {
        let tail = self.tail_snapshot();
        let plan = self.corpus.plan_anytime_with_tail(request, Some(&tail))?;
        self.io
            .record_loads(plan.access.cold_loads, plan.access.bytes_read);
        self.io.record_cache_hits(plan.access.cache_hits);
        self.io.record_blocks(
            plan.access.blocks_read,
            plan.access.block_raw_hits,
            plan.access.block_hits,
        );
        self.tail_candidates_served
            .fetch_add(plan.tail_records, Ordering::SeqCst);
        self.candidates_served
            .fetch_add(plan.total_candidates(), Ordering::SeqCst);
        let meter = GpuMeter::new();
        let outcome = run_anytime(
            &self.server,
            &plan,
            &request.anytime,
            |id| {
                self.corpus
                    .centroids
                    .get(&id)
                    .or_else(|| tail.centroid(id))
                    .cloned()
            },
            &meter,
            on_partial,
        );
        self.scheduler.submit("anytime", meter.phase("anytime"));
        self.queries_served.fetch_add(1, Ordering::SeqCst);
        Ok(outcome)
    }

    /// A snapshot of every stream's not-yet-sealed records, taken at one
    /// instant (streams in id order).
    pub fn tail_snapshot(&self) -> TailOverlay {
        let mut tail = TailOverlay::new();
        for state in self.streams.values() {
            let (index, centroids) = state.segmenter.pipeline().peek_segment();
            if !index.is_empty() {
                tail.add_part(index, centroids);
            }
        }
        tail
    }

    /// One background maintenance tick: seals every stream tail that has
    /// hit its seal budget (exactly the segments the next frame push would
    /// have sealed, so maintenance never changes the partitioning),
    /// compacts the store when the small-segment count crosses the
    /// configured threshold, migrates a bounded number of JSON segments to
    /// the binary format and prefetches segments adjacent to recently-cold
    /// ones (see [`ServiceConfig::migrate_per_maintain`] /
    /// [`ServiceConfig::prefetch_per_maintain`]), runs the adaptation
    /// controllers (drift check → re-select → install, when
    /// [`ServiceConfig::adaptation`] is on) and the workload governor
    /// (when [`ServiceConfig::governor`] is on), and drains one
    /// GPU-scheduler tick.
    pub fn maintain(&mut self) -> Result<MaintenanceReport, SegmentError> {
        let mut report = MaintenanceReport::default();
        let due: Vec<StreamId> = self
            .streams
            .iter()
            .filter(|(_, s)| s.segmenter.should_seal())
            .map(|(id, _)| *id)
            .collect();
        for stream in due {
            // seal_pending on a tail that emptied since the filter ran is
            // a no-op, so no re-check is needed.
            if self.seal_stream_unconditionally(stream)? {
                report.segments_sealed += 1;
            }
        }
        let small = self
            .corpus
            .store()
            .segments()
            .iter()
            .filter(|m| m.clusters <= self.config.small_segment_clusters)
            .count();
        if small >= self.config.compact_small_threshold {
            report.segments_folded = self
                .corpus
                .store_mut()
                .compact(self.config.compact_max_clusters)?;
            if report.segments_folded > 0 {
                self.compactions += 1;
            }
        }
        // Format migration and adjacency prefetch are steady background
        // work: a bounded budget each tick, never a stop-the-world pass.
        if self.config.migrate_per_maintain > 0 {
            report.segments_migrated = self
                .corpus
                .store_mut()
                .migrate_format(self.config.migrate_per_maintain)?;
        }
        if self.config.prefetch_per_maintain > 0 {
            report.segments_prefetched = self
                .corpus
                .store()
                .prefetch_adjacent(self.config.prefetch_per_maintain)?;
        }

        // Drift check → re-select → install, one pass over the streams.
        // Re-selection sweeps charge the adaptation meter ("selection"),
        // which is submitted to the shared scheduler below — adapting
        // competes for the same GPU budget as ingest and queries.
        let adapt_meter = GpuMeter::new();
        let mut reconfigured: Vec<(StreamId, Reconfiguration)> = Vec::new();
        for (stream, state) in self.streams.iter_mut() {
            if let Some(controller) = state.controller.as_mut() {
                let now = controller.last_seen_secs();
                if let Some(event) = controller.maybe_reconfigure(now, &adapt_meter) {
                    reconfigured.push((*stream, event));
                }
            }
        }
        self.scheduler
            .submit("selection", adapt_meter.phase("selection"));
        for (stream, event) in reconfigured {
            self.install_configuration(stream, &event.selection)?;
            report.reconfigured_streams += 1;
        }

        if let Some(governor) = self.governor.as_mut() {
            report.governor_query_share = governor.tick(&self.scheduler);
        }
        report.tick = self.scheduler.tick();
        Ok(report)
    }

    /// Installs a (re-)selected configuration on one stream through the
    /// model-epoch seal machinery — the same path a scheduled retrain
    /// takes, plus the parameter switch:
    ///
    /// 1. the old configuration's live epoch seals into the hot tail
    ///    (records indexed before the switch are untouched and stay
    ///    reachable, byte-identical to a seal-then-reconfigure reference —
    ///    `tests/adaptive_drift.rs` pins this);
    /// 2. the pipeline's parameters (K, clustering threshold) switch on
    ///    the now-empty epoch;
    /// 3. the stream's ingest model and query routing swap, and the
    ///    verdict-cache epoch bumps exactly as after a retrain.
    ///
    /// The adaptation controllers call this on drift; it is public so an
    /// operator (or a test building a reference run) can install a
    /// configuration by hand.
    ///
    /// # Panics
    ///
    /// Panics if the stream is not registered.
    pub fn install_configuration(
        &mut self,
        stream: StreamId,
        selection: &SelectedConfiguration,
    ) -> Result<(), SegmentError> {
        let state = self
            .streams
            .get_mut(&stream)
            .unwrap_or_else(|| panic!("stream {} is not registered", stream.0));
        let pipeline = state.segmenter.pipeline_mut();
        pipeline.seal_epoch();
        pipeline.set_params(selection.params);
        state.model = selection.model.clone();
        self.corpus
            .install_stream_model(stream, selection.model.clone());
        // Conservative, matching the retrain path: GT verdicts would stay
        // valid, but keeping cache lifetime aligned with configuration
        // epochs is cheap and simple.
        self.server.invalidate();
        self.reconfigurations += 1;
        // The new generation's routing must survive a restart.
        self.persist_state()
    }

    /// Unconditionally seals every stream's pending tail into the store
    /// (shutdown / checkpoint). After this, [`serve`](Self::serve) over
    /// the (now empty) tail and a cold recovery answer identically.
    pub fn seal_all(&mut self) -> Result<Vec<SegmentMeta>, SegmentError> {
        let streams: Vec<StreamId> = self.streams.keys().copied().collect();
        let before = self.corpus.store().len();
        for stream in streams {
            self.seal_stream_unconditionally(stream)?;
        }
        Ok(self.corpus.store().segments()[before..].to_vec())
    }

    /// Drains one stream's pending tail and seals it durably. Returns
    /// whether a segment was sealed.
    fn seal_stream_unconditionally(&mut self, stream: StreamId) -> Result<bool, SegmentError> {
        let (part, centroids) = {
            let state = self.streams.get_mut(&stream).expect("registered stream");
            let part = state.segmenter.seal_pending();
            if part.is_empty() {
                return Ok(false);
            }
            let centroids = part_centroids(&part, state.segmenter.pipeline().centroids());
            (part, centroids)
        };
        self.seal_durably(stream, part, centroids)?;
        Ok(true)
    }

    /// [`seal_part`](Self::seal_part) with the failure path a live service
    /// needs: if the durable write fails, the drained records are restored
    /// into the stream's hot tail ([`FramePipeline::restore_drained`]), so
    /// they stay visible to [`serve`](Self::serve) and the next seal
    /// attempt re-drains them — a transient I/O error never silently loses
    /// a time window.
    fn seal_durably(
        &mut self,
        stream: StreamId,
        part: TopKIndex,
        centroids: Vec<(ObjectId, ObjectObservation)>,
    ) -> Result<(), SegmentError> {
        if let Err(e) = self.seal_part(&part, centroids) {
            self.streams
                .get_mut(&stream)
                .expect("registered stream")
                .segmenter
                .pipeline_mut()
                .restore_drained(part);
            return Err(e);
        }
        Ok(())
    }

    /// Seals one drained part durably. Ordering: the part's centroid delta
    /// is persisted *first* (an extra delta is harmless; a segment whose
    /// centroids are missing would be unrecoverable), then the segment
    /// file + manifest. Each seal's sidecar I/O is proportional to the
    /// part, not to the service's history.
    fn seal_part(
        &mut self,
        part: &TopKIndex,
        mut centroids: Vec<(ObjectId, ObjectObservation)>,
    ) -> Result<(), SegmentError> {
        centroids.sort_by_key(|(id, _)| *id);
        let delta = CentroidDelta {
            version: SERVICE_STATE_VERSION,
            centroids,
        };
        let json = serde_json::to_string(&delta)
            .map_err(|source| SegmentError::Persist(PersistError::Format { path: None, source }))?;
        let path = self.corpus.store().dir().join(format!(
            "{CENTROID_DELTA_PREFIX}{:06}.json",
            self.next_centroid_delta
        ));
        write_atomic(&path, &json)
            .map_err(|source| SegmentError::Persist(PersistError::Io { path, source }))?;
        self.next_centroid_delta += 1;
        self.corpus.centroids.extend(delta.centroids);
        let meta = self.corpus.store_mut().seal(part)?;
        if meta.is_some() {
            self.segments_sealed += 1;
        }
        Ok(())
    }

    /// Writes the durable stream registry and routing history atomically
    /// next to the manifest.
    fn persist_state(&self) -> Result<(), SegmentError> {
        // Persist each stream's routing history as it would look after a
        // restart: the already-retired generations plus the live model
        // (models are process state — a recovered service restarts from
        // the bootstrap model, which turns today's live specialized model
        // into one more retired generation).
        let mut retired_routes = Vec::new();
        for id in self.streams.keys() {
            let mut routing = self
                .corpus
                .retired_routes
                .get(id)
                .cloned()
                .unwrap_or_default();
            if let Some(model) = self.corpus.stream_models.get(id) {
                if let Some(classes) = model.specialized_classes.as_deref() {
                    routing.retire(classes);
                }
            }
            if routing.generations > 0 {
                retired_routes.push((id.0, routing));
            }
        }
        let state = ServiceState {
            version: SERVICE_STATE_VERSION,
            streams: self
                .streams
                .iter()
                .map(|(id, s)| (id.0, s.segmenter.pipeline().fps()))
                .collect(),
            retired_routes,
        };
        let json = serde_json::to_string(&state)
            .map_err(|source| SegmentError::Persist(PersistError::Format { path: None, source }))?;
        let path = self.corpus.store().dir().join(SERVICE_STATE_FILE);
        write_atomic(&path, &json)
            .map_err(|source| SegmentError::Persist(PersistError::Io { path, source }))
    }

    /// Replaces the ground-truth CNN everywhere it is consulted — the
    /// query server's verification (bumping the verdict-cache epoch) and
    /// every stream's labelling lifecycle.
    pub fn retrain_ground_truth(&mut self, gt: GroundTruthCnn) {
        self.server.retrain_ground_truth(gt.clone());
        for state in self.streams.values_mut() {
            state.lifecycle.set_ground_truth(gt.clone());
            if let Some(controller) = state.controller.as_mut() {
                controller.set_ground_truth(gt.clone());
            }
        }
        self.gt_template = gt;
    }

    /// The adaptation controller of one stream (`None` for unregistered
    /// streams or when the service runs without
    /// [`ServiceConfig::adaptation`]).
    pub fn stream_controller(&self, stream: StreamId) -> Option<&StreamController> {
        self.streams.get(&stream)?.controller.as_ref()
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The embedded query server (verdict cache, GT epoch).
    pub fn query_server(&self) -> &QueryServer {
        &self.server
    }

    /// The shared GPU scheduler.
    pub fn scheduler(&self) -> &GpuScheduler {
        &self.scheduler
    }

    /// The query-side view of the corpus (store, centroids, routing
    /// models).
    pub fn corpus(&self) -> &SegmentedCorpus {
        &self.corpus
    }

    /// The durable segment store.
    pub fn store(&self) -> &SegmentStore {
        self.corpus.store()
    }

    /// The live ingest model of one stream (bootstrap model until the
    /// first specialization).
    pub fn stream_model(&self, stream: StreamId) -> Option<&IngestCnn> {
        self.streams.get(&stream).map(|s| &s.model)
    }

    /// Unified stats snapshot across every subsystem.
    pub fn stats(&self) -> ServiceStats {
        let mut frames = 0;
        let mut objects = 0;
        let mut retrains = 0;
        let mut audit_labels = 0;
        for state in self.streams.values() {
            let stats = state.segmenter.pipeline().stats();
            frames += stats.frames;
            objects += stats.objects;
            retrains += state.lifecycle.retrains();
            if let Some(controller) = state.controller.as_ref() {
                audit_labels += controller.audit_labels();
            }
        }
        ServiceStats {
            streams: self.streams.len(),
            frames_ingested: frames,
            objects_indexed: objects,
            retrains,
            reconfigurations: self.reconfigurations,
            audit_labels,
            governor_retargets: self.governor.as_ref().map_or(0, |g| g.retargets()),
            segments: self.corpus.store().len(),
            store_clusters: self.corpus.store().total_clusters(),
            segments_sealed: self.segments_sealed,
            compactions: self.compactions,
            queries_served: self.queries_served.load(Ordering::SeqCst),
            candidates_served: self.candidates_served.load(Ordering::SeqCst),
            tail_candidates_served: self.tail_candidates_served.load(Ordering::SeqCst),
            cache: self.server.cache_stats(),
            io: self.io.snapshot(),
            lru: self.corpus.store().cache_occupancy(),
            gpu: self.scheduler.stats(),
            serving: ServingStats::default(),
        }
    }
}

/// The centroid observations behind a drained part's records, read from
/// the pipeline's cumulative centroid map.
fn part_centroids(
    part: &TopKIndex,
    centroids: &HashMap<ObjectId, ObjectObservation>,
) -> Vec<(ObjectId, ObjectObservation)> {
    part.clusters()
        .map(|record| {
            (
                record.centroid_object,
                centroids[&record.centroid_object].clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_video::profile::profile_by_name;
    use focus_video::VideoDataset;
    use std::path::PathBuf;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("focus_service_unit_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quiet_config() -> ServiceConfig {
        ServiceConfig {
            worker: StreamWorkerConfig {
                bootstrap_secs: 1e9,
                retrain_interval_secs: 1e9,
                gt_label_fraction: 0.0,
                ..StreamWorkerConfig::default()
            },
            seal: SealPolicy::every_secs(10.0),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn service_stats_fold_every_subsystem_and_serialize() {
        let profile = profile_by_name("auburn_c").unwrap();
        let ds = VideoDataset::generate(profile.clone(), 25.0);
        let dir = test_dir("stats");
        let mut service =
            FocusService::create(&dir, quiet_config(), GroundTruthCnn::resnet152()).unwrap();
        service
            .register_stream(profile.stream_id, profile.fps)
            .unwrap();
        service.advance(&ds.frames).unwrap();
        let class = ds.dominant_classes(1)[0];
        service.serve(&[QueryRequest::new(class)]).unwrap();
        service.maintain().unwrap();

        let stats = service.stats();
        assert_eq!(stats.streams, 1);
        assert_eq!(stats.frames_ingested, ds.frames.len());
        assert_eq!(stats.objects_indexed, ds.object_count());
        assert!(stats.segments >= 2);
        assert_eq!(stats.queries_served, 1);
        assert!(stats.candidates_served > 0);
        assert!(stats.cache.misses > 0, "fresh verdicts were computed");
        assert!(stats.gpu.ingest_submitted_secs > 0.0);
        assert!(stats.gpu.query_submitted_secs > 0.0);
        assert_eq!(stats.gpu.ticks, 1);
        assert!(stats.tail_hit_fraction() >= 0.0);

        // The whole snapshot is one serde-serializable struct and
        // round-trips.
        let json = serde_json::to_string(&stats).unwrap();
        let back: ServiceStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_and_query_share_one_gpu_budget() {
        let profile = profile_by_name("auburn_c").unwrap();
        let ds = VideoDataset::generate(profile.clone(), 20.0);
        let dir = test_dir("budget");
        let config = ServiceConfig {
            gpus: GpuClusterSpec::new(2),
            priority: GpuPriorityPolicy::QueryFirst,
            tick_secs: 0.05,
            ..quiet_config()
        };
        let mut service = FocusService::create(&dir, config, GroundTruthCnn::resnet152()).unwrap();
        service
            .register_stream(profile.stream_id, profile.fps)
            .unwrap();
        service.advance(&ds.frames).unwrap();
        let class = ds.dominant_classes(1)[0];
        service.serve(&[QueryRequest::new(class)]).unwrap();

        // Both sides were charged against the same scheduler, and a
        // query-first tick under backlog serves the query side first.
        let tick = service.maintain().unwrap().tick;
        let stats = service.scheduler().stats();
        assert!(stats.ingest_submitted_secs > 0.0);
        assert!(stats.query_submitted_secs > 0.0);
        assert!(
            (stats.ingest_served_secs
                + stats.query_served_secs
                + stats.ingest_backlog_secs
                + stats.query_backlog_secs
                - stats.ingest_submitted_secs
                - stats.query_submitted_secs)
                .abs()
                < 1e-9,
            "budget conservation"
        );
        if tick.query_backlog_secs > 0.0 {
            assert_eq!(
                tick.ingest_served_secs, 0.0,
                "query-first never serves ingest while query work is queued"
            );
        }
        // The scheduler's meter carries the ordinary per-phase accounting.
        assert!(service.scheduler().meter().phase("ingest").seconds() > 0.0);
        assert!(service.scheduler().meter().phase("query").seconds() > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adaptive_service_audits_on_the_shared_budget() {
        let profile = profile_by_name("auburn_c").unwrap();
        let ds = VideoDataset::generate(profile.clone(), 30.0);
        let dir = test_dir("adaptive_audit");
        let config = ServiceConfig {
            adaptation: Some(crate::adapt::AdaptationConfig {
                audit_fraction: 0.05,
                ..crate::adapt::AdaptationConfig::default()
            }),
            ..quiet_config()
        };
        let mut service = FocusService::create(&dir, config, GroundTruthCnn::resnet152()).unwrap();
        service
            .register_stream(profile.stream_id, profile.fps)
            .unwrap();
        service.advance(&ds.frames).unwrap();
        service.maintain().unwrap();

        let stats = service.stats();
        assert!(stats.audit_labels > 0, "the controller drew audit labels");
        assert_eq!(stats.reconfigurations, 0, "no drift, no reconfiguration");
        // Audit labelling went through the shared scheduler as ingest-side
        // work.
        assert!(stats.gpu.submitted_by_phase["audit"] > 0.0);
        assert!(
            service.stream_controller(profile.stream_id).is_some(),
            "controller attached to the stream"
        );
        // The whole snapshot still round-trips.
        let json = serde_json::to_string(&stats).unwrap();
        let back: ServiceStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retired_routing_survives_recovery() {
        use crate::ingest::IngestParams;
        use crate::params::{ConfigurationPoint, ModelChoice, SelectedConfiguration};
        use focus_cnn::{Classifier, ModelSpec, SpecializedCnn, OTHER_CLASS};
        use focus_video::ClassId;

        fn selection_of(model: IngestCnn, k: usize) -> SelectedConfiguration {
            SelectedConfiguration {
                point: ConfigurationPoint {
                    model: ModelChoice::Generic(ModelSpec::cheap_cnn_1()),
                    k,
                    threshold: 1.5,
                    ingest_cost_norm: 0.0,
                    query_latency_norm: 0.0,
                    precision: 1.0,
                    recall: 1.0,
                    worst_precision: 1.0,
                    worst_recall: 1.0,
                },
                model,
                params: IngestParams {
                    k,
                    ..IngestParams::default()
                },
                met_targets: true,
            }
        }

        let profile = profile_by_name("auburn_c").unwrap();
        let ds = VideoDataset::generate(profile.clone(), 120.0);
        let gt = GroundTruthCnn::resnet152();
        let sample: Vec<_> = ds
            .objects()
            .map(|o| (o.clone(), gt.classify_top1(o)))
            .collect();
        // Gen 1 specializes WITHOUT some class C (its records post under
        // OTHER); gen 2 specializes FOR C.
        let gen1 = IngestCnn::specialized(
            SpecializedCnn::train(
                "recover-gen1",
                focus_cnn::specialize::SpecializationLevel::Medium,
                &sample,
                1,
            )
            .unwrap(),
        );
        let gen2 = IngestCnn::specialized(
            SpecializedCnn::train(
                "recover-gen2",
                focus_cnn::specialize::SpecializationLevel::Medium,
                &sample,
                8,
            )
            .unwrap(),
        );
        // The split class must really occur during the gen1 era (the GT
        // sample's tail ranks can be flicker-only labels with no objects
        // behind them), so gen1-era OTHER records of it exist. The gen1
        // era covers three quarters of the recording because the
        // generator's busy/quiet bursts can keep a class entirely out of
        // the first half.
        let cut = ds.frames.len() * 3 / 4;
        let occurs = |class: ClassId, frames: &[Frame]| {
            frames
                .iter()
                .flat_map(|f| f.objects.iter())
                .filter(|o| o.true_class == class)
                .count()
                > 20
        };
        let split_class = *gen2
            .specialized_classes
            .as_ref()
            .unwrap()
            .iter()
            .find(|c| {
                !gen1.specialized_classes.as_ref().unwrap().contains(c)
                    && occurs(**c, &ds.frames[..cut])
            })
            .expect("gen2 covers a real class gen1 lacks");

        let dir = test_dir("retired_recover");
        let mut service =
            FocusService::create(&dir, quiet_config(), GroundTruthCnn::resnet152()).unwrap();
        service
            .register_stream(profile.stream_id, profile.fps)
            .unwrap();
        service
            .install_configuration(profile.stream_id, &selection_of(gen1, 4))
            .unwrap();
        service.advance(&ds.frames[..cut]).unwrap();
        service
            .install_configuration(profile.stream_id, &selection_of(gen2, 4))
            .unwrap();
        service.advance(&ds.frames[cut..]).unwrap();
        service.seal_all().unwrap();
        let request = QueryRequest::new(split_class);
        let before = service.serve(std::slice::from_ref(&request)).unwrap();
        assert!(
            !before[0].frames.is_empty(),
            "the split class has gen1-era records"
        );
        drop(service);

        // A recovered service has no models (process state), but the
        // routing history must still reach gen1's OTHER-indexed epochs.
        let (recovered, _) =
            FocusService::recover(&dir, quiet_config(), GroundTruthCnn::resnet152()).unwrap();
        let routing = &recovered.corpus().retired_routes[&profile.stream_id];
        assert!(routing.generations >= 2);
        assert!(routing.specialized_union.contains(&split_class));
        assert!(!routing.specialized_intersection.contains(&split_class));
        assert_eq!(
            recovered.corpus().route(profile.stream_id, split_class),
            split_class,
            "no live override after recovery: the default generic routes"
        );
        let after = recovered.serve(std::slice::from_ref(&request)).unwrap();
        assert_eq!(
            serde_json::to_string(&before[0].frames).unwrap(),
            serde_json::to_string(&after[0].frames).unwrap(),
            "recovery must not hide any generation's records"
        );
        // And OTHER records really were involved (the scan needed the
        // retired routing, not just the class itself).
        let other_records = recovered
            .corpus()
            .lookup(OTHER_CLASS, &focus_index::QueryFilter::any())
            .unwrap();
        assert!(!other_records.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn governor_retargets_the_shared_scheduler() {
        let profile = profile_by_name("auburn_c").unwrap();
        let ds = VideoDataset::generate(profile.clone(), 30.0);
        let dir = test_dir("governor");
        let config = ServiceConfig {
            priority: GpuPriorityPolicy::Weighted { query_share: 0.9 },
            governor: Some(crate::adapt::GovernorConfig::default()),
            ..quiet_config()
        };
        let mut service = FocusService::create(&dir, config, GroundTruthCnn::resnet152()).unwrap();
        service
            .register_stream(profile.stream_id, profile.fps)
            .unwrap();
        // A pure-ingest backlog: the governor must walk the query share
        // down towards ingest.
        service.advance(&ds.frames).unwrap();
        let report = service.maintain().unwrap();
        let share = report
            .governor_query_share
            .expect("imbalanced backlog retargets");
        assert!(share < 0.9);
        let stats = service.stats();
        assert_eq!(stats.governor_retargets, 1);
        assert_eq!(stats.gpu.retargets, 1);
        assert_eq!(
            service.scheduler().policy(),
            GpuPriorityPolicy::Weighted { query_share: share }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn advancing_an_unregistered_stream_panics() {
        let profile = profile_by_name("auburn_c").unwrap();
        let ds = VideoDataset::generate(profile, 2.0);
        let dir = test_dir("unregistered");
        let mut service =
            FocusService::create(&dir, quiet_config(), GroundTruthCnn::resnet152()).unwrap();
        let _ = service.advance(&ds.frames);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn double_registration_panics() {
        let dir = test_dir("double_reg");
        let mut service =
            FocusService::create(&dir, quiet_config(), GroundTruthCnn::resnet152()).unwrap();
        service.register_stream(StreamId(1), 30).unwrap();
        let _ = service.register_stream(StreamId(1), 30);
    }

    #[test]
    fn empty_serve_is_a_no_op() {
        let dir = test_dir("empty_serve");
        let service =
            FocusService::create(&dir, quiet_config(), GroundTruthCnn::resnet152()).unwrap();
        assert!(service.serve(&[]).unwrap().is_empty());
        assert_eq!(service.stats().queries_served, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
