//! System-level configuration: accuracy targets and trade-off policies.

use serde::{Deserialize, Serialize};

/// The user-specified accuracy targets relative to the ground-truth CNN
/// (§3 of the paper). Defaults to 95% precision and 95% recall, the paper's
/// default evaluation setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyTarget {
    /// Minimum precision: of the frames returned, the fraction that really
    /// contain the queried class according to the ground-truth CNN.
    pub precision: f64,
    /// Minimum recall: of the frames that contain the queried class
    /// according to the ground-truth CNN, the fraction that is returned.
    pub recall: f64,
}

impl Default for AccuracyTarget {
    fn default() -> Self {
        Self {
            precision: 0.95,
            recall: 0.95,
        }
    }
}

impl AccuracyTarget {
    /// A target with the given precision and recall.
    ///
    /// # Panics
    ///
    /// Panics if either value is outside `[0, 1]`.
    pub fn new(precision: f64, recall: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&precision) && (0.0..=1.0).contains(&recall),
            "accuracy targets must lie in [0, 1]"
        );
        Self { precision, recall }
    }

    /// A symmetric target (the paper evaluates 95%, 97%, 98% and 99%).
    pub fn both(value: f64) -> Self {
        Self::new(value, value)
    }

    /// Whether a measured (precision, recall) pair meets this target.
    pub fn met_by(&self, precision: f64, recall: f64) -> bool {
        precision + 1e-9 >= self.precision && recall + 1e-9 >= self.recall
    }
}

/// How Focus balances ingest cost against query latency once the accuracy
/// targets are met (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TradeoffPolicy {
    /// Minimize ingest cost (`Focus-Opt-Ingest`): best when most videos are
    /// never queried.
    OptIngest,
    /// Minimize the sum of ingest and query GPU cycles (`Focus-Balance`),
    /// the paper's default.
    #[default]
    Balance,
    /// Minimize query latency (`Focus-Opt-Query`): best when fast query
    /// turnaround matters more than ingest cost.
    OptQuery,
}

impl TradeoffPolicy {
    /// All policies, in the order the paper presents them.
    pub fn all() -> [TradeoffPolicy; 3] {
        [
            TradeoffPolicy::OptIngest,
            TradeoffPolicy::Balance,
            TradeoffPolicy::OptQuery,
        ]
    }

    /// Display name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            TradeoffPolicy::OptIngest => "Focus-Opt-Ingest",
            TradeoffPolicy::Balance => "Focus-Balance",
            TradeoffPolicy::OptQuery => "Focus-Opt-Query",
        }
    }
}

impl std::fmt::Display for TradeoffPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which of Focus's ingest-time components are enabled. Used for the
/// component-breakdown ablation of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AblationMode {
    /// Generic compressed ingest CNN only; no specialization, no clustering
    /// (every object is its own cluster).
    CompressedOnly,
    /// Compressed + per-stream specialized ingest CNN; no clustering.
    CompressedSpecialized,
    /// The full system: compressed + specialized + clustering.
    Full,
}

impl AblationMode {
    /// All modes, in the order Figure 8 stacks them.
    pub fn all() -> [AblationMode; 3] {
        [
            AblationMode::CompressedOnly,
            AblationMode::CompressedSpecialized,
            AblationMode::Full,
        ]
    }

    /// Whether specialization is part of this mode.
    pub fn specialization(&self) -> bool {
        !matches!(self, AblationMode::CompressedOnly)
    }

    /// Whether ingest-time clustering is part of this mode.
    pub fn clustering(&self) -> bool {
        matches!(self, AblationMode::Full)
    }

    /// Display label matching Figure 8.
    pub fn label(&self) -> &'static str {
        match self {
            AblationMode::CompressedOnly => "Compressed model",
            AblationMode::CompressedSpecialized => "+ Specialized model",
            AblationMode::Full => "+ Clustering",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_target_is_95_95() {
        let t = AccuracyTarget::default();
        assert_eq!(t.precision, 0.95);
        assert_eq!(t.recall, 0.95);
    }

    #[test]
    fn met_by_compares_both_metrics() {
        let t = AccuracyTarget::both(0.95);
        assert!(t.met_by(0.95, 0.95));
        assert!(t.met_by(1.0, 0.99));
        assert!(!t.met_by(0.94, 0.99));
        assert!(!t.met_by(0.99, 0.90));
    }

    #[test]
    #[should_panic(expected = "accuracy targets must lie in [0, 1]")]
    fn invalid_target_panics() {
        let _ = AccuracyTarget::new(1.5, 0.9);
    }

    #[test]
    fn policies_and_names() {
        assert_eq!(TradeoffPolicy::all().len(), 3);
        assert_eq!(TradeoffPolicy::default(), TradeoffPolicy::Balance);
        assert_eq!(TradeoffPolicy::Balance.to_string(), "Focus-Balance");
        assert_eq!(TradeoffPolicy::OptIngest.name(), "Focus-Opt-Ingest");
        assert_eq!(TradeoffPolicy::OptQuery.name(), "Focus-Opt-Query");
    }

    #[test]
    fn ablation_modes_enable_components_cumulatively() {
        assert!(!AblationMode::CompressedOnly.specialization());
        assert!(!AblationMode::CompressedOnly.clustering());
        assert!(AblationMode::CompressedSpecialized.specialization());
        assert!(!AblationMode::CompressedSpecialized.clustering());
        assert!(AblationMode::Full.specialization());
        assert!(AblationMode::Full.clustering());
        assert_eq!(AblationMode::all().len(), 3);
        assert_eq!(AblationMode::Full.label(), "+ Clustering");
    }
}
