//! Accuracy evaluation against the ground-truth CNN.
//!
//! The paper (§6.1) defines ground truth at one-second granularity: a class
//! is *present* in a one-second segment if the GT-CNN reports that class in
//! at least 50% of the segment's frames. This smooths out the GT-CNN's
//! occasional per-frame flicker. Precision and recall of a query are then
//! measured over segments: a segment counts as retrieved if the query
//! returned at least one frame inside it.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use focus_cnn::Classifier;
use focus_video::{ClassId, FrameId, VideoDataset};

/// Fraction of a segment's frames that must contain the class for the
/// segment to count as ground-truth positive (the paper's 50% rule).
pub const SEGMENT_PRESENCE_THRESHOLD: f64 = 0.5;

/// Precision/recall report for one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Fraction of retrieved segments that are ground-truth positive.
    pub precision: f64,
    /// Fraction of ground-truth-positive segments that were retrieved.
    pub recall: f64,
    /// Number of ground-truth-positive segments.
    pub truth_segments: usize,
    /// Number of segments retrieved by the query.
    pub retrieved_segments: usize,
    /// Number of retrieved segments that are ground-truth positive.
    pub correct_segments: usize,
}

impl AccuracyReport {
    /// F1 score of the report (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Per-frame ground-truth class sets, computed once per dataset and reused
/// across queries (running the GT-CNN over every object is the expensive
/// oracle step, so callers should share one `GroundTruthLabels`).
#[derive(Debug, Clone, Default)]
pub struct GroundTruthLabels {
    /// For every frame with motion: the set of classes the GT-CNN reports.
    frame_classes: HashMap<FrameId, HashSet<ClassId>>,
    /// Frames per second of the underlying stream (segment size).
    fps: u32,
    /// How many frames of the dataset fall into each one-second segment.
    /// Derived from the actual frames present, so subsampled or
    /// non-contiguous datasets (frame sampling, spread-out parameter-
    /// selection samples) are handled correctly.
    segment_frames: HashMap<u64, usize>,
}

impl GroundTruthLabels {
    /// Labels every object of `dataset` with `gt` and records the per-frame
    /// class sets.
    pub fn compute(dataset: &VideoDataset, gt: &dyn Classifier) -> Self {
        let fps = dataset.profile.fps;
        let mut frame_classes: HashMap<FrameId, HashSet<ClassId>> = HashMap::new();
        let mut segment_frames: HashMap<u64, usize> = HashMap::new();
        for frame in &dataset.frames {
            *segment_frames
                .entry(frame.frame_id.0 / fps.max(1) as u64)
                .or_insert(0) += 1;
            if frame.objects.is_empty() {
                continue;
            }
            let entry = frame_classes.entry(frame.frame_id).or_default();
            for obj in &frame.objects {
                entry.insert(gt.classify_top1(obj));
            }
        }
        Self {
            frame_classes,
            fps,
            segment_frames,
        }
    }

    /// The classes the GT-CNN reported anywhere in the dataset, with the
    /// number of frames each appears in, most frequent first.
    pub fn classes_by_frequency(&self) -> Vec<(ClassId, usize)> {
        let mut counts: HashMap<ClassId, usize> = HashMap::new();
        for classes in self.frame_classes.values() {
            for class in classes {
                *counts.entry(*class).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(ClassId, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }

    /// The `n` most frequently occurring classes according to the GT-CNN.
    pub fn dominant_classes(&self, n: usize) -> Vec<ClassId> {
        self.classes_by_frequency()
            .into_iter()
            .take(n)
            .map(|(c, _)| c)
            .collect()
    }

    /// One-second segment index of a frame.
    fn segment_of(&self, frame: FrameId) -> u64 {
        frame.0 / self.fps.max(1) as u64
    }

    /// Number of dataset frames that fall into `segment`.
    fn frames_in_segment(&self, segment: u64) -> usize {
        self.segment_frames.get(&segment).copied().unwrap_or(0)
    }

    /// The set of one-second segments in which `class` is present according
    /// to the paper's 50% rule.
    pub fn truth_segments(&self, class: ClassId) -> HashSet<u64> {
        let mut per_segment: HashMap<u64, usize> = HashMap::new();
        for (frame, classes) in &self.frame_classes {
            if classes.contains(&class) {
                *per_segment.entry(self.segment_of(*frame)).or_insert(0) += 1;
            }
        }
        per_segment
            .into_iter()
            .filter(|(segment, count)| {
                let total = self.frames_in_segment(*segment).max(1);
                *count as f64 / total as f64 >= SEGMENT_PRESENCE_THRESHOLD
            })
            .map(|(segment, _)| segment)
            .collect()
    }

    /// Converts a list of returned frames into the set of segments they
    /// touch.
    pub fn frames_to_segments(&self, frames: &[FrameId]) -> HashSet<u64> {
        frames.iter().map(|f| self.segment_of(*f)).collect()
    }

    /// The segments a query *covers*: segments where the returned frames
    /// span at least [`SEGMENT_PRESENCE_THRESHOLD`] of the segment's frames
    /// — the same 50% rule used for the ground truth, so both sides of the
    /// precision/recall computation use the same granularity.
    pub fn retrieved_segments(&self, returned_frames: &[FrameId]) -> HashSet<u64> {
        let mut unique: HashSet<FrameId> = HashSet::new();
        let mut per_segment: HashMap<u64, usize> = HashMap::new();
        for frame in returned_frames {
            if unique.insert(*frame) {
                *per_segment.entry(self.segment_of(*frame)).or_insert(0) += 1;
            }
        }
        per_segment
            .into_iter()
            .filter(|(segment, count)| {
                let total = self.frames_in_segment(*segment).max(1);
                *count as f64 / total as f64 >= SEGMENT_PRESENCE_THRESHOLD
            })
            .map(|(segment, _)| segment)
            .collect()
    }

    /// Evaluates a query's returned frames against the ground truth for
    /// `class`.
    pub fn evaluate(&self, class: ClassId, returned_frames: &[FrameId]) -> AccuracyReport {
        let truth = self.truth_segments(class);
        let retrieved = self.retrieved_segments(returned_frames);
        let correct = retrieved.intersection(&truth).count();
        let precision = if retrieved.is_empty() {
            1.0
        } else {
            correct as f64 / retrieved.len() as f64
        };
        let recall = if truth.is_empty() {
            1.0
        } else {
            correct as f64 / truth.len() as f64
        };
        AccuracyReport {
            precision,
            recall,
            truth_segments: truth.len(),
            retrieved_segments: retrieved.len(),
            correct_segments: correct,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_cnn::GroundTruthCnn;
    use focus_video::profile::profile_by_name;

    fn labels_for(stream: &str, secs: f64) -> (VideoDataset, GroundTruthLabels) {
        let ds = VideoDataset::generate(profile_by_name(stream).unwrap(), secs);
        let gt = GroundTruthCnn::resnet152();
        let labels = GroundTruthLabels::compute(&ds, &gt);
        (ds, labels)
    }

    #[test]
    fn dominant_classes_are_nonempty_and_ranked() {
        let (_, labels) = labels_for("auburn_c", 120.0);
        let ranked = labels.classes_by_frequency();
        assert!(!ranked.is_empty());
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(labels.dominant_classes(3).len(), 3);
    }

    #[test]
    fn perfect_answer_has_perfect_accuracy() {
        let (ds, labels) = labels_for("auburn_c", 120.0);
        let class = labels.dominant_classes(1)[0];
        // Return exactly the frames whose GT labels contain the class.
        let frames: Vec<FrameId> = ds
            .frames
            .iter()
            .filter(|f| {
                labels
                    .frame_classes
                    .get(&f.frame_id)
                    .map(|cs| cs.contains(&class))
                    .unwrap_or(false)
            })
            .map(|f| f.frame_id)
            .collect();
        let report = labels.evaluate(class, &frames);
        assert!(report.recall > 0.99, "recall = {}", report.recall);
        // Precision can dip slightly below 1.0 because returning a frame in
        // a segment where the class appears in under 50% of frames counts as
        // a false positive under the smoothing rule.
        assert!(report.precision > 0.9, "precision = {}", report.precision);
        assert!(report.f1() > 0.9);
    }

    #[test]
    fn empty_answer_has_zero_recall_full_precision() {
        let (_, labels) = labels_for("auburn_c", 60.0);
        let class = labels.dominant_classes(1)[0];
        let report = labels.evaluate(class, &[]);
        assert_eq!(report.retrieved_segments, 0);
        assert_eq!(report.precision, 1.0);
        assert!(report.recall < 0.5);
        assert_eq!(report.f1(), 0.0_f64.max(report.f1()));
    }

    #[test]
    fn wrong_answer_has_low_precision() {
        let (ds, labels) = labels_for("auburn_c", 120.0);
        let class = labels.dominant_classes(1)[0];
        // Return only frames where the class is absent.
        let frames: Vec<FrameId> = ds
            .frames
            .iter()
            .filter(|f| {
                !labels
                    .frame_classes
                    .get(&f.frame_id)
                    .map(|cs| cs.contains(&class))
                    .unwrap_or(false)
            })
            .map(|f| f.frame_id)
            .take(200)
            .collect();
        let report = labels.evaluate(class, &frames);
        assert!(report.precision < 0.5, "precision = {}", report.precision);
    }

    #[test]
    fn never_occurring_class_has_empty_truth() {
        let (_, labels) = labels_for("bend", 60.0);
        // Class 999 is essentially never generated for this stream palette.
        let truth = labels.truth_segments(ClassId(999));
        assert!(truth.len() <= 1);
        let report = labels.evaluate(ClassId(999), &[]);
        assert_eq!(report.recall, 1.0);
    }

    #[test]
    fn flicker_is_smoothed_by_segments() {
        // With heavy per-frame flicker the per-frame labels are noisy, but a
        // dominant class that is continuously present still yields stable
        // ground-truth segments.
        let ds = VideoDataset::generate(profile_by_name("jacksonh").unwrap(), 60.0);
        let noisy_gt = GroundTruthCnn::with_flicker(0.3);
        let labels = GroundTruthLabels::compute(&ds, &noisy_gt);
        let class = labels.dominant_classes(1)[0];
        let truth = labels.truth_segments(class);
        assert!(!truth.is_empty());
    }

    #[test]
    fn segment_mapping_uses_fps() {
        let (_, labels) = labels_for("auburn_c", 10.0);
        let segs = labels.frames_to_segments(&[FrameId(0), FrameId(29), FrameId(30), FrameId(61)]);
        assert_eq!(segs, [0u64, 1, 2].into_iter().collect());
    }
}
