//! Sharded multi-stream ingest: one [`FramePipeline`] per camera shard,
//! executed concurrently on the runtime's [`WorkerPool`].
//!
//! The paper runs one ingest worker per stream (§5); [`ShardedIngest`]
//! reproduces that for recorded multi-camera workloads. A workload of `n`
//! datasets is partitioned into `n` per-stream shards; each shard replays
//! its stream through the shared pipeline (via the batch driver,
//! [`IngestEngine`]) on a pool thread with a private GPU meter, and the
//! per-shard outputs are merged **in submission order** afterwards.
//!
//! # Serial/parallel equivalence
//!
//! The merged result is byte-identical to ingesting the same datasets one
//! after another on a single thread:
//!
//! * per-shard work touches no shared state (each shard has its own
//!   pipeline, index and meter), so scheduling cannot perturb it;
//! * cluster keys embed their stream, so per-shard indexes are key-disjoint
//!   and the merged index does not depend on merge order — but the merge
//!   still walks shards in submission order so even iteration-order
//!   artifacts are fixed;
//! * the caller's meter is charged once per shard, in submission order, with
//!   the shard's accumulated cost, so meter totals are bitwise reproducible
//!   for any shard count.
//!
//! [`FramePipeline`]: crate::pipeline::FramePipeline

use focus_cnn::GpuCost;
use focus_index::TopKIndex;
use focus_runtime::{GpuMeter, WorkerPool};
use focus_video::VideoDataset;

use crate::ingest::{IngestCnn, IngestEngine, IngestOutput, IngestParams};

/// The combined result of ingesting a multi-camera workload.
#[derive(Debug, Clone)]
pub struct MultiIngestOutput {
    /// Per-stream ingest outputs, in workload order.
    pub per_stream: Vec<IngestOutput>,
}

impl MultiIngestOutput {
    /// The merged multi-camera index, built without cloning the per-stream
    /// postings (only cluster records are copied). Callers that are done
    /// with the per-stream outputs should prefer
    /// [`into_combined`](Self::into_combined), which moves instead of
    /// cloning.
    ///
    /// # Panics
    ///
    /// Panics if two per-stream indexes share a cluster key (meaning two
    /// shards ingested the same stream).
    pub fn merged_index(&self) -> TopKIndex {
        let mut merged = TopKIndex::new();
        for output in &self.per_stream {
            let replaced = merged.merge_from(&output.index);
            assert_eq!(
                replaced, 0,
                "shard outputs must be key-disjoint (one shard per stream)"
            );
        }
        merged
    }

    /// Total ingest GPU cost across all streams.
    pub fn gpu_cost(&self) -> GpuCost {
        self.per_stream
            .iter()
            .fold(GpuCost(0.0), |acc, o| acc + o.gpu_cost)
    }

    /// Total object observations across all streams.
    pub fn objects_total(&self) -> usize {
        self.per_stream.iter().map(|o| o.objects_total).sum()
    }

    /// Total clusters across all streams.
    pub fn clusters(&self) -> usize {
        self.per_stream.iter().map(|o| o.clusters).sum()
    }

    /// Collapses the per-stream outputs into one [`IngestOutput`] over the
    /// merged index and centroid set, so the query engine can answer
    /// multi-camera queries exactly like single-stream ones.
    ///
    /// # Panics
    ///
    /// Panics if the workload was empty (there is no model to attach).
    pub fn into_combined(self) -> IngestOutput {
        let mut per_stream = self.per_stream.into_iter();
        let mut combined = per_stream
            .next()
            .expect("cannot combine an empty multi-stream workload");
        for output in per_stream {
            let replaced = combined.index.merge(output.index);
            assert_eq!(
                replaced, 0,
                "shard outputs must be key-disjoint (one shard per stream)"
            );
            let expected = combined.centroids.len() + output.centroids.len();
            combined.centroids.extend(output.centroids);
            assert_eq!(
                combined.centroids.len(),
                expected,
                "cross-stream ObjectId collision: centroid observations would be clobbered"
            );
            combined.gpu_cost += output.gpu_cost;
            combined.frames_total += output.frames_total;
            combined.frames_with_motion += output.frames_with_motion;
            combined.objects_total += output.objects_total;
            combined.objects_classified += output.objects_classified;
            combined.clusters += output.clusters;
        }
        combined
    }
}

/// Parallel multi-stream ingest over per-stream shards.
#[derive(Debug, Clone)]
pub struct ShardedIngest {
    engine: IngestEngine,
    pool: WorkerPool,
}

impl ShardedIngest {
    /// Creates a sharded ingest layer running every stream with the same
    /// `model` and `params` on `shards` pool threads.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(model: IngestCnn, params: IngestParams, shards: usize) -> Self {
        Self::with_pool(IngestEngine::new(model, params), WorkerPool::new(shards))
    }

    /// Creates a sharded ingest layer around an existing engine and pool.
    pub fn with_pool(engine: IngestEngine, pool: WorkerPool) -> Self {
        Self { engine, pool }
    }

    /// The engine each shard runs.
    pub fn engine(&self) -> &IngestEngine {
        &self.engine
    }

    /// The worker pool shards execute on.
    pub fn pool(&self) -> WorkerPool {
        self.pool
    }

    /// Ingests a multi-camera workload, one shard per dataset, in parallel.
    ///
    /// GPU cost is charged to `meter` under the phase `"ingest"`, one charge
    /// per shard in workload order (see the module docs for why that keeps
    /// meter totals bitwise reproducible).
    ///
    /// # Panics
    ///
    /// Panics if two datasets share a stream id: a shard is *the* ingest
    /// worker of its stream, so a stream must not be split across shards.
    pub fn ingest(&self, datasets: &[VideoDataset], meter: &GpuMeter) -> MultiIngestOutput {
        let mut streams: Vec<_> = datasets.iter().map(|d| d.profile.stream_id).collect();
        streams.sort();
        streams.dedup();
        assert_eq!(
            streams.len(),
            datasets.len(),
            "each shard must own a distinct stream"
        );

        let engine = &self.engine;
        let per_stream = self.pool.map(datasets.iter().collect(), |dataset| {
            // A private meter per shard: worker threads never contend on the
            // caller's meter, and the per-shard totals below are charged in
            // deterministic workload order instead of completion order.
            let shard_meter = GpuMeter::new();
            engine.ingest(dataset, &shard_meter)
        });
        for output in &per_stream {
            meter.charge("ingest", output.gpu_cost);
        }
        MultiIngestOutput { per_stream }
    }
}

/// Ingests the workload serially on the calling thread, with the same
/// output and meter-charging discipline as [`ShardedIngest::ingest`]. This
/// is the reference implementation the equivalence tests compare against,
/// and the sensible choice for single-stream workloads.
pub fn ingest_serial(
    engine: &IngestEngine,
    datasets: &[VideoDataset],
    meter: &GpuMeter,
) -> MultiIngestOutput {
    let per_stream: Vec<IngestOutput> = datasets
        .iter()
        .map(|dataset| {
            let shard_meter = GpuMeter::new();
            engine.ingest(dataset, &shard_meter)
        })
        .collect();
    for output in &per_stream {
        meter.charge("ingest", output.gpu_cost);
    }
    MultiIngestOutput { per_stream }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_cnn::ModelSpec;
    use focus_index::QueryFilter;
    use focus_video::profile::profile_by_name;

    fn workload(names: &[&str], secs: f64) -> Vec<VideoDataset> {
        names
            .iter()
            .map(|n| VideoDataset::generate(profile_by_name(n).unwrap(), secs))
            .collect()
    }

    fn engine() -> IngestEngine {
        IngestEngine::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams {
                k: 10,
                ..IngestParams::default()
            },
        )
    }

    #[test]
    fn sharded_ingest_covers_every_stream() {
        let datasets = workload(&["auburn_c", "lausanne", "bend"], 45.0);
        let sharded = ShardedIngest::with_pool(engine(), WorkerPool::new(3));
        let meter = GpuMeter::new();
        let output = sharded.ingest(&datasets, &meter);
        assert_eq!(output.per_stream.len(), 3);
        let merged = output.merged_index();
        let mut expected: Vec<_> = datasets.iter().map(|d| d.profile.stream_id).collect();
        expected.sort();
        assert_eq!(merged.streams(), expected);
        assert_eq!(
            output.objects_total(),
            datasets.iter().map(|d| d.object_count()).sum::<usize>()
        );
        // The caller's meter carries the full cost.
        assert!((meter.phase("ingest").seconds() - output.gpu_cost().seconds()).abs() < 1e-12);
    }

    #[test]
    fn combined_output_answers_cross_camera_queries() {
        let datasets = workload(&["auburn_c", "city_a_d"], 60.0);
        let sharded = ShardedIngest::with_pool(engine(), WorkerPool::new(2));
        let combined = sharded.ingest(&datasets, &GpuMeter::new()).into_combined();
        let class = datasets[0].dominant_classes(1)[0];
        let matches = combined.index.lookup(class, &QueryFilter::any());
        assert!(!matches.is_empty());
        for record in matches {
            assert!(combined.centroids.contains_key(&record.centroid_object));
        }
        assert_eq!(
            combined.objects_total,
            datasets.iter().map(|d| d.object_count()).sum::<usize>()
        );
    }

    #[test]
    #[should_panic(expected = "distinct stream")]
    fn duplicate_streams_are_rejected() {
        let mut datasets = workload(&["auburn_c"], 10.0);
        datasets.push(datasets[0].clone());
        let sharded = ShardedIngest::with_pool(engine(), WorkerPool::new(2));
        let _ = sharded.ingest(&datasets, &GpuMeter::new());
    }

    #[test]
    fn empty_workload_is_empty_output() {
        let sharded = ShardedIngest::with_pool(engine(), WorkerPool::new(2));
        let meter = GpuMeter::new();
        let output = sharded.ingest(&[], &meter);
        assert!(output.per_stream.is_empty());
        assert_eq!(output.objects_total(), 0);
        assert_eq!(output.clusters(), 0);
        assert_eq!(output.merged_index().len(), 0);
        assert_eq!(meter.total().seconds(), 0.0);
    }
}
