//! The replicated cluster manifest: which node owns which shard.
//!
//! The fleet's placement map follows the same crash-safe discipline as the
//! per-store segment manifest (`focus_index::Manifest`): a checksummed JSON
//! document written atomically (temp file + rename), bumped to a fresh
//! monotonic epoch on every placement change, and **replicated** — one copy
//! at the fleet root plus one per node directory. Loading reads every
//! replica and adopts the highest-epoch valid copy, so a crash that tears
//! one replica (or loses the root disk) still recovers the newest placement
//! any surviving replica saw.
//!
//! Validation rejects a manifest in which two nodes claim the same shard or
//! two shards claim the same stream: since a shard owns its streams' whole
//! segment range, a duplicate claim is exactly the "two nodes own one
//! segment range" split-brain a coordinator must refuse to load.

use std::collections::BTreeSet;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use focus_index::persist::write_atomic;

use super::FleetError;

/// File name of every manifest replica.
pub const CLUSTER_MANIFEST_FILE: &str = "CLUSTER.json";

/// Current on-disk format version.
pub const CLUSTER_MANIFEST_VERSION: u32 = 1;

/// One shard's placement: the node that owns it, the store directory it
/// lives in (relative to the fleet root), and the streams it indexes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardAssignment {
    /// Fleet-unique shard id (monotonic, never reused).
    pub shard: u32,
    /// The node currently serving the shard.
    pub node: u32,
    /// Store directory, relative to the fleet root. Reassignment moves
    /// ownership, never the directory — shard stores live on shared
    /// storage, like a detachable volume.
    pub dir: String,
    /// Streams whose segments this shard owns, sorted.
    pub streams: Vec<u32>,
}

/// The replicated placement map. Construct via [`ClusterManifest::new`],
/// mutate assignments, then [`seal`](Self::seal) + [`save`](Self::save).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterManifest {
    /// On-disk format version.
    pub version: u32,
    /// Monotonic placement epoch; every change bumps it.
    pub epoch: u64,
    /// All shard placements, sorted by shard id.
    pub assignments: Vec<ShardAssignment>,
    /// FNV-1a over the canonical JSON of the body with `checksum` zeroed.
    pub checksum: u64,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

impl ClusterManifest {
    /// An empty epoch-0 manifest.
    pub fn new() -> Self {
        Self {
            version: CLUSTER_MANIFEST_VERSION,
            epoch: 0,
            assignments: Vec::new(),
            checksum: 0,
        }
        .seal()
    }

    fn body_checksum(&self) -> u64 {
        let body = Self {
            checksum: 0,
            ..self.clone()
        };
        let json = serde_json::to_string(&body).expect("manifest body serializes");
        fnv1a64(json.as_bytes())
    }

    /// Recomputes the checksum after a mutation.
    pub fn seal(mut self) -> Self {
        self.assignments.sort_by_key(|a| a.shard);
        self.checksum = self.body_checksum();
        self
    }

    /// The assignment of `shard`, if any.
    pub fn assignment(&self, shard: u32) -> Option<&ShardAssignment> {
        self.assignments.iter().find(|a| a.shard == shard)
    }

    /// Structural validation: version, checksum, and — the split-brain
    /// guard — no shard claimed by two entries and no stream claimed by
    /// two shards.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.version != CLUSTER_MANIFEST_VERSION {
            return Err(FleetError::Manifest(format!(
                "cluster manifest version {} (expected {})",
                self.version, CLUSTER_MANIFEST_VERSION
            )));
        }
        if self.checksum != self.body_checksum() {
            return Err(FleetError::Manifest(
                "cluster manifest checksum mismatch (torn or tampered replica)".into(),
            ));
        }
        let mut shards = BTreeSet::new();
        let mut dirs = BTreeSet::new();
        let mut streams = BTreeSet::new();
        for assignment in &self.assignments {
            if !shards.insert(assignment.shard) {
                return Err(FleetError::Manifest(format!(
                    "shard {} claimed by two assignments — two nodes would \
                     own one segment range",
                    assignment.shard
                )));
            }
            if !dirs.insert(assignment.dir.clone()) {
                return Err(FleetError::Manifest(format!(
                    "store directory {:?} claimed by two shards",
                    assignment.dir
                )));
            }
            for stream in &assignment.streams {
                if !streams.insert(*stream) {
                    return Err(FleetError::Manifest(format!(
                        "stream {stream} claimed by two shards — two nodes \
                         would own one segment range"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Writes the manifest atomically to every replica path (fleet root
    /// first, then each node directory). A crash between replicas leaves a
    /// mixed-epoch set; [`load`](Self::load) resolves it by taking the
    /// highest valid epoch.
    pub fn save(&self, replicas: &[PathBuf]) -> Result<(), FleetError> {
        let json = serde_json::to_string(self).expect("manifest serializes");
        for dir in replicas {
            let path = dir.join(CLUSTER_MANIFEST_FILE);
            write_atomic(&path, &json).map_err(|source| FleetError::Io { path, source })?;
        }
        Ok(())
    }

    /// Loads the highest-epoch valid replica. Replicas that are missing,
    /// torn, or fail [`validate`](Self::validate) are skipped; if *no*
    /// replica is loadable the fleet refuses to start (better no placement
    /// than a split-brain one).
    pub fn load(replicas: &[PathBuf]) -> Result<Self, FleetError> {
        let mut best: Option<Self> = None;
        let mut last_error: Option<FleetError> = None;
        for dir in replicas {
            let path = dir.join(CLUSTER_MANIFEST_FILE);
            let json = match std::fs::read_to_string(&path) {
                Ok(json) => json,
                Err(source) => {
                    last_error = Some(FleetError::Io { path, source });
                    continue;
                }
            };
            let manifest: Self = match serde_json::from_str(&json) {
                Ok(manifest) => manifest,
                Err(err) => {
                    last_error = Some(FleetError::Manifest(format!(
                        "replica {path:?} is malformed: {err}"
                    )));
                    continue;
                }
            };
            if let Err(err) = manifest.validate() {
                last_error = Some(err);
                continue;
            }
            if best.as_ref().is_none_or(|b| manifest.epoch > b.epoch) {
                best = Some(manifest);
            }
        }
        best.ok_or_else(|| {
            last_error.unwrap_or_else(|| FleetError::Manifest("no manifest replica found".into()))
        })
    }
}

impl Default for ClusterManifest {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment(shard: u32, node: u32, streams: &[u32]) -> ShardAssignment {
        ShardAssignment {
            shard,
            node,
            dir: format!("shard-{shard:04}"),
            streams: streams.to_vec(),
        }
    }

    fn temp_dirs(name: &str, n: usize) -> Vec<PathBuf> {
        (0..n)
            .map(|i| {
                let dir = std::env::temp_dir().join(format!("focus_cluster_manifest_{name}_{i}"));
                let _ = std::fs::remove_dir_all(&dir);
                std::fs::create_dir_all(&dir).unwrap();
                dir
            })
            .collect()
    }

    #[test]
    fn round_trips_through_replicas() {
        let dirs = temp_dirs("round_trip", 3);
        let mut manifest = ClusterManifest::new();
        manifest.assignments.push(assignment(0, 0, &[7]));
        manifest.epoch = 3;
        let manifest = manifest.seal();
        manifest.save(&dirs).unwrap();
        let loaded = ClusterManifest::load(&dirs).unwrap();
        assert_eq!(loaded, manifest);
        for dir in &dirs {
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn load_takes_highest_valid_epoch_and_skips_torn_replicas() {
        let dirs = temp_dirs("epochs", 3);
        let mut old = ClusterManifest::new();
        old.assignments.push(assignment(0, 0, &[1]));
        old.epoch = 1;
        old.seal().save(&dirs[..1]).unwrap();
        let mut new = ClusterManifest::new();
        new.assignments.push(assignment(0, 1, &[1]));
        new.epoch = 2;
        new.seal().save(&dirs[1..2]).unwrap();
        // The third replica is torn mid-write.
        std::fs::write(dirs[2].join(CLUSTER_MANIFEST_FILE), "{\"version\":").unwrap();
        let loaded = ClusterManifest::load(&dirs).unwrap();
        assert_eq!(loaded.epoch, 2);
        assert_eq!(loaded.assignments[0].node, 1);
        for dir in &dirs {
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn duplicate_shard_claim_is_rejected_at_load() {
        let dirs = temp_dirs("dup_shard", 1);
        let mut manifest = ClusterManifest::new();
        manifest.assignments.push(assignment(0, 0, &[1]));
        let mut twin = assignment(0, 1, &[2]);
        twin.dir = "shard-9999".into();
        manifest.assignments.push(twin);
        let mut manifest = manifest.seal();
        // Bypass validation at write time to model a corrupted/hostile
        // replica: recompute the checksum so only the claim check fires.
        manifest.checksum = manifest.body_checksum();
        let json = serde_json::to_string(&manifest).unwrap();
        std::fs::write(dirs[0].join(CLUSTER_MANIFEST_FILE), json).unwrap();
        let err = ClusterManifest::load(&dirs).unwrap_err();
        assert!(
            err.to_string().contains("claimed by two"),
            "unexpected error: {err}"
        );
        std::fs::remove_dir_all(&dirs[0]).ok();
    }

    #[test]
    fn duplicate_stream_claim_is_rejected_at_load() {
        let dirs = temp_dirs("dup_stream", 1);
        let mut manifest = ClusterManifest::new();
        manifest.assignments.push(assignment(0, 0, &[1, 2]));
        manifest.assignments.push(assignment(1, 1, &[2, 3]));
        let manifest = manifest.seal();
        let json = serde_json::to_string(&manifest).unwrap();
        std::fs::write(dirs[0].join(CLUSTER_MANIFEST_FILE), json).unwrap();
        let err = ClusterManifest::load(&dirs).unwrap_err();
        assert!(
            err.to_string().contains("stream 2 claimed by two shards"),
            "unexpected error: {err}"
        );
        std::fs::remove_dir_all(&dirs[0]).ok();
    }

    #[test]
    fn checksum_guards_against_tampering() {
        let dirs = temp_dirs("tamper", 1);
        let mut manifest = ClusterManifest::new();
        manifest.assignments.push(assignment(0, 0, &[1]));
        manifest.seal().save(&dirs).unwrap();
        let path = dirs[0].join(CLUSTER_MANIFEST_FILE);
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"node\":0", "\"node\":5");
        std::fs::write(&path, tampered).unwrap();
        assert!(ClusterManifest::load(&dirs).is_err());
        std::fs::remove_dir_all(&dirs[0]).ok();
    }
}
