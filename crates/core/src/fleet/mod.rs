//! Scale-out: a coordinator fronting N in-process [`FocusService`] nodes.
//!
//! Everything below this module is one process; the fleet makes it a
//! cluster. Streams are partitioned into single-stream **shards** (one
//! durable [`FocusService`] store each — the stream-namespaced object ids
//! and per-stream cluster keys make shards key-disjoint by construction),
//! a replicated [`ClusterManifest`] maps shards to **nodes**, ingest is
//! routed by stream shard, and queries **scatter** to only the nodes whose
//! segment time/stream bounds intersect the request, then **gather**
//! through the existing
//! [`QueryServer::serve_resolved`](crate::query_server::QueryServer::serve_resolved)
//! seam — so a fleet-served answer is byte-identical (canonical
//! `serde_json`) to a single-node service over the union of streams
//! (`tests/fleet.rs` pins this with a proptest over arbitrary placements
//! and node-loss schedules).
//!
//! **Failover.** Node loss drops process state only: the lost shards'
//! segments, centroid deltas and service sidecars are durable, so a
//! survivor re-opens them with [`FocusService::recover`] and the
//! coordinator replays each stream's since-last-seal frame suffix from its
//! replay buffer. Every seal starts a fresh pipeline epoch (and resets the
//! pixel-diff window), so the rebuilt hot tail — cluster keys, classes,
//! geometry — is exactly the one that was lost, and post-failover answers
//! stay byte-identical to a never-crashed single node.
//!
//! **Simulated transport.** No sockets: every coordinator↔node exchange
//! is an in-process call whose serialized size is measured and charged to
//! a [`NetMeter`]/[`NetCostModel`] (and, when attached, a
//! [`VirtualClock`]), the same capability discipline `GpuMeter`/`IoMeter`
//! apply to compute and storage. Scatter width, bytes over the wire and
//! failover time are therefore exact and machine-independent — CI asserts
//! them (`fleet-faults` job), the `fleet_scatter` bench guards them.

pub mod manifest;

pub use manifest::{ClusterManifest, ShardAssignment, CLUSTER_MANIFEST_FILE};

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use focus_cnn::GroundTruthCnn;
use focus_index::{CentroidHandle, ClusterKey, ClusterRecord, SegmentError};
use focus_runtime::{GpuMeter, NetCostModel, NetMeter, NetStats, VirtualClock};
use focus_video::{ClassId, Frame, ObjectId, ObjectObservation, StreamId};

use crate::ingest::IngestCnn;
use crate::query::plan::{QueryPlan, QueryRequest};
use crate::query::QueryOutcome;
use crate::query_server::QueryServer;
use crate::service::{AdvanceReport, FocusService, MaintenanceReport, ServiceConfig};

/// Errors from fleet coordination (placement, routing, node liveness) or
/// the per-shard services underneath.
#[derive(Debug)]
pub enum FleetError {
    /// A per-shard service operation failed.
    Segment(SegmentError),
    /// Reading or writing fleet state failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The cluster manifest is invalid (torn replica, version skew, or a
    /// duplicate shard/stream claim — the split-brain guard).
    Manifest(String),
    /// A frame or query referenced a stream no shard owns.
    UnknownStream(StreamId),
    /// The shard's owning node is down and has not been failed over.
    NodeDown {
        /// The dead node.
        node: u32,
        /// The shard it still owns in the manifest.
        shard: u32,
    },
    /// No alive node remains to take over a dead node's shards.
    NoSurvivor,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Segment(err) => write!(f, "shard service error: {err}"),
            Self::Io { path, source } => write!(f, "fleet i/o error at {path:?}: {source}"),
            Self::Manifest(msg) => write!(f, "cluster manifest rejected: {msg}"),
            Self::UnknownStream(stream) => write!(f, "no shard owns stream {}", stream.0),
            Self::NodeDown { node, shard } => {
                write!(
                    f,
                    "node {node} owning shard {shard} is down (failover pending)"
                )
            }
            Self::NoSurvivor => write!(f, "no alive node left to adopt orphaned shards"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Segment(err) => Some(err),
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<SegmentError> for FleetError {
    fn from(err: SegmentError) -> Self {
        Self::Segment(err)
    }
}

/// Fleet-level configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Nodes in the fleet (fixed at creation; shards move, nodes do not).
    pub nodes: usize,
    /// Configuration of every per-shard [`FocusService`]. One shared config
    /// keeps the default routing model identical across shards, which the
    /// scatter planner's lookup-class union relies on.
    pub service: ServiceConfig,
    /// Latency/bandwidth model of the simulated transport.
    pub net: NetCostModel,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            nodes: 2,
            service: ServiceConfig::default(),
            net: NetCostModel::default(),
        }
    }
}

/// What one [`FleetCoordinator::advance`] call did, summed over shards.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetAdvanceReport {
    /// Per-shard [`AdvanceReport`]s folded together.
    pub frames: usize,
    /// Segments sealed across all shards.
    pub segments_sealed: usize,
    /// Retrains across all shards (each invalidated the gather-side
    /// verdict cache, mirroring the single-node epoch bump).
    pub retrains: usize,
    /// Shards that received at least one frame.
    pub shards_touched: usize,
}

/// What one [`FleetCoordinator::failover`] call did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FailoverReport {
    /// Shards re-opened on survivors.
    pub shards_recovered: usize,
    /// Buffered tail frames replayed into the recovered services.
    pub frames_replayed: usize,
    /// Simulated wall-clock cost of the whole failover: loss detection,
    /// shipping the replay buffers, and the manifest round.
    pub secs: f64,
}

/// Point-in-time fleet statistics (serializable for benches).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Nodes in the fleet.
    pub nodes: usize,
    /// Nodes currently alive.
    pub nodes_alive: usize,
    /// Shards placed.
    pub shards: usize,
    /// Streams registered.
    pub streams: usize,
    /// Current placement epoch.
    pub manifest_epoch: u64,
    /// Simulated-transport account.
    pub net: NetStats,
    /// Query batches served.
    pub serves: usize,
    /// Queries served.
    pub queries: usize,
    /// Segments opened by scattered plans, summed over serves.
    pub segments_opened: usize,
    /// Shards contacted by the most recent serve.
    pub last_scatter_width: usize,
    /// Node losses processed by [`failover`](FleetCoordinator::failover).
    pub failovers: usize,
    /// Simulated seconds the most recent failover took.
    pub last_failover_secs: f64,
    /// Shard migrations completed by
    /// [`rebalance`](FleetCoordinator::rebalance).
    pub rebalances: usize,
    /// GPU seconds spent on gather-side verification.
    pub query_gpu_secs: f64,
}

/// Scalar projection of a shard plan's `SegmentAccess` (the wire format
/// carries plain counts; `SegmentAccess` itself is not serialized).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WireAccess {
    /// Live segments in the shard's store.
    pub segments_total: usize,
    /// Segments whose bounds intersected the filter.
    pub segments_considered: usize,
    /// Considered segments needing a disk read.
    pub cold_loads: usize,
    /// Considered segments served from cache.
    pub cache_hits: usize,
    /// Bytes read from disk.
    pub bytes_read: u64,
}

impl WireAccess {
    fn opened(&self) -> usize {
        self.cold_loads + self.cache_hits
    }
}

/// One shard's answer for one request of a scattered batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardRequestPlan {
    /// Matching records, sorted by cluster key (key-disjoint across shards
    /// by construction, which is what makes the gather merge exactly-once).
    pub records: Vec<ClusterRecord>,
    /// The centroid observation behind every record, sorted by object id.
    pub centroids: Vec<(ObjectId, ObjectObservation)>,
    /// Records resolved from the shard's in-memory tail.
    pub tail_records: usize,
    /// Segment-access account of the shard-local plan.
    pub access: WireAccess,
    /// Tracks this shard's sketches rejected for the request's track
    /// filter (empty without one). Shards hold disjoint streams, so the
    /// coordinator unions these losslessly into the gathered plan's
    /// [`TrackScope`](crate::query::track::TrackScope).
    #[serde(default)]
    pub rejected_tracks: Vec<focus_index::TrackKey>,
}

/// One shard's full response to a scattered plan request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardPlanMsg {
    /// The responding shard.
    pub shard: u32,
    /// One entry per request in the scattered batch.
    pub per_request: Vec<ShardRequestPlan>,
}

/// The coordinator→node plan request (serialized only to measure wire
/// bytes; the call itself is in-process). Owned fields: the vendored serde
/// derive does not support generic/borrowed derive targets.
#[derive(Debug, Serialize)]
struct PlanRequestMsg {
    requests: Vec<QueryRequest>,
    lookup_classes: Vec<Vec<ClassId>>,
    prune_segments: bool,
}

/// A scattered query batch awaiting [`FleetCoordinator::gather`]. Holding
/// the responses as owned data is what lets a rebalance (or failover)
/// complete between scatter and gather without double- or zero-counting a
/// shard: the batch pins exactly one response per contacted shard.
#[derive(Debug)]
pub struct ScatterBatch {
    /// Placement epoch the batch was scattered under.
    pub epoch: u64,
    /// Shards contacted.
    pub contacted: Vec<u32>,
    /// Whether shard-level segment pruning was pushed down (`false` is the
    /// broadcast baseline: every alive shard, no bound pruning).
    pub prune: bool,
    responses: Vec<ShardPlanMsg>,
}

struct NodeRuntime {
    alive: bool,
    shards: BTreeMap<u32, FocusService>,
}

/// The fleet coordinator: placement, ingest routing, scatter-gather
/// serving, failover and rebalancing over N in-process nodes.
pub struct FleetCoordinator {
    root: PathBuf,
    config: FleetConfig,
    gt: GroundTruthCnn,
    bootstrap: IngestCnn,
    manifest: ClusterManifest,
    nodes: BTreeMap<u32, NodeRuntime>,
    fps: BTreeMap<StreamId, u32>,
    /// Per-stream frames since that stream's last durable seal — exactly
    /// the suffix a failover must replay to rebuild the lost hot tail.
    replay: BTreeMap<StreamId, Vec<Frame>>,
    /// Gather-side verification server: the verdict cache, dedupe and
    /// batching live here, exactly as on a single node.
    gather_server: QueryServer,
    net: NetMeter,
    clock: Option<VirtualClock>,
    stats: FleetStats,
}

impl std::fmt::Debug for FleetCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetCoordinator")
            .field("nodes", &self.nodes.len())
            .field("shards", &self.manifest.assignments.len())
            .field("epoch", &self.manifest.epoch)
            .finish()
    }
}

impl FleetCoordinator {
    /// Creates a fresh fleet rooted at `root`: `nodes` empty nodes and an
    /// epoch-0 manifest replicated to the root and every node directory.
    pub fn create(
        root: impl Into<PathBuf>,
        config: FleetConfig,
        gt: GroundTruthCnn,
    ) -> Result<Self, FleetError> {
        assert!(config.nodes > 0, "a fleet needs at least one node");
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|source| FleetError::Io {
            path: root.clone(),
            source,
        })?;
        let mut nodes = BTreeMap::new();
        for node in 0..config.nodes as u32 {
            let dir = root.join(format!("node-{node}"));
            std::fs::create_dir_all(&dir).map_err(|source| FleetError::Io {
                path: dir.clone(),
                source,
            })?;
            nodes.insert(
                node,
                NodeRuntime {
                    alive: true,
                    shards: BTreeMap::new(),
                },
            );
        }
        let manifest = ClusterManifest::new();
        let bootstrap = IngestCnn::generic(config.service.worker.bootstrap_model);
        let gather_server = QueryServer::new(gt.clone(), config.service.gpus);
        let coordinator = Self {
            root,
            config,
            gt,
            bootstrap,
            manifest,
            nodes,
            fps: BTreeMap::new(),
            replay: BTreeMap::new(),
            gather_server,
            net: NetMeter::new(),
            clock: None,
            stats: FleetStats::default(),
        };
        coordinator.manifest.save(&coordinator.replica_dirs())?;
        Ok(coordinator)
    }

    /// Reopens a fleet from its root: loads the highest-epoch valid
    /// manifest replica (rejecting duplicate shard/stream claims) and
    /// recovers every shard's service on its assigned node. In-memory
    /// tails and replay buffers are process state and start empty — a
    /// planned restart should [`seal_all`](Self::seal_all) first.
    pub fn recover(
        root: impl Into<PathBuf>,
        config: FleetConfig,
        gt: GroundTruthCnn,
    ) -> Result<Self, FleetError> {
        let root = root.into();
        let mut replicas = vec![root.clone()];
        for node in 0..config.nodes as u32 {
            replicas.push(root.join(format!("node-{node}")));
        }
        let manifest = ClusterManifest::load(&replicas)?;
        let bootstrap = IngestCnn::generic(config.service.worker.bootstrap_model);
        let gather_server = QueryServer::new(gt.clone(), config.service.gpus);
        let mut nodes: BTreeMap<u32, NodeRuntime> = (0..config.nodes as u32)
            .map(|node| {
                (
                    node,
                    NodeRuntime {
                        alive: true,
                        shards: BTreeMap::new(),
                    },
                )
            })
            .collect();
        let mut fps = BTreeMap::new();
        for assignment in &manifest.assignments {
            let (service, _report) = FocusService::recover(
                root.join(&assignment.dir),
                config.service.clone(),
                gt.clone(),
            )?;
            for (stream, rate) in service.registered_streams() {
                fps.insert(stream, rate);
            }
            nodes
                .get_mut(&assignment.node)
                .ok_or_else(|| {
                    FleetError::Manifest(format!(
                        "assignment of shard {} names node {} outside the fleet",
                        assignment.shard, assignment.node
                    ))
                })?
                .shards
                .insert(assignment.shard, service);
        }
        Ok(Self {
            root,
            config,
            gt,
            bootstrap,
            manifest,
            nodes,
            fps,
            replay: BTreeMap::new(),
            gather_server,
            net: NetMeter::new(),
            clock: None,
            stats: FleetStats::default(),
        })
    }

    /// Attaches a virtual clock; every simulated transport/failover cost
    /// advances it, so CI can assert deterministic timings.
    pub fn with_clock(mut self, clock: VirtualClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// The current placement map.
    pub fn manifest(&self) -> &ClusterManifest {
        &self.manifest
    }

    /// The simulated-transport meter (cloneable shared handle).
    pub fn net_meter(&self) -> NetMeter {
        self.net.clone()
    }

    fn replica_dirs(&self) -> Vec<PathBuf> {
        let mut dirs = vec![self.root.clone()];
        for (id, node) in &self.nodes {
            if node.alive {
                dirs.push(self.root.join(format!("node-{id}")));
            }
        }
        dirs
    }

    fn tick(&self, secs: f64) {
        if let Some(clock) = &self.clock {
            clock.advance(secs);
        }
    }

    fn alive_node_ids(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.alive)
            .map(|(id, _)| *id)
            .collect()
    }

    /// The alive node with the fewest shards (ties to the lowest id).
    fn least_loaded_alive(&self) -> Option<u32> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.alive)
            .min_by_key(|(id, n)| (n.shards.len(), **id))
            .map(|(id, _)| *id)
    }

    fn shard_of_stream(&self, stream: StreamId) -> Result<u32, FleetError> {
        self.manifest
            .assignments
            .iter()
            .find(|a| a.streams.contains(&stream.0))
            .map(|a| a.shard)
            .ok_or(FleetError::UnknownStream(stream))
    }

    fn shard_service(&self, shard: u32) -> Result<(u32, &FocusService), FleetError> {
        let assignment = self
            .manifest
            .assignment(shard)
            .ok_or_else(|| FleetError::Manifest(format!("shard {shard} has no assignment")))?;
        let node =
            self.nodes
                .get(&assignment.node)
                .filter(|n| n.alive)
                .ok_or(FleetError::NodeDown {
                    node: assignment.node,
                    shard,
                })?;
        node.shards
            .get(&shard)
            .map(|service| (assignment.node, service))
            .ok_or(FleetError::NodeDown {
                node: assignment.node,
                shard,
            })
    }

    /// Registers a stream: a fresh single-stream shard is created on the
    /// least-loaded alive node and the manifest epoch is bumped and
    /// re-replicated.
    pub fn register_stream(&mut self, stream: StreamId, fps: u32) -> Result<u32, FleetError> {
        if self.shard_of_stream(stream).is_ok() {
            return Err(FleetError::Manifest(format!(
                "stream {} is already placed",
                stream.0
            )));
        }
        let shard = self
            .manifest
            .assignments
            .iter()
            .map(|a| a.shard + 1)
            .max()
            .unwrap_or(0);
        let node = self.least_loaded_alive().ok_or(FleetError::NoSurvivor)?;
        let dir = format!("shard-{shard:04}");
        let mut service = FocusService::create(
            self.root.join(&dir),
            self.config.service.clone(),
            self.gt.clone(),
        )?;
        service.register_stream(stream, fps)?;
        let mut manifest = self.manifest.clone();
        manifest.assignments.push(ShardAssignment {
            shard,
            node,
            dir,
            streams: vec![stream.0],
        });
        manifest.epoch += 1;
        let manifest = manifest.seal();
        manifest.validate()?;
        manifest.save(&self.replica_dirs())?;
        self.manifest = manifest;
        self.nodes
            .get_mut(&node)
            .expect("alive node exists")
            .shards
            .insert(shard, service);
        self.fps.insert(stream, fps);
        self.replay.insert(stream, Vec::new());
        Ok(shard)
    }

    /// Routes a batch of live frames to their owning shards (per-stream
    /// order preserved — the only order a per-stream pipeline observes, so
    /// routing is ingest-equivalent to a single node seeing the full
    /// interleaving). Each touched shard costs one simulated exchange.
    /// Replay buffers are extended and then trimmed to each stream's
    /// since-last-seal suffix.
    pub fn advance(&mut self, frames: &[Frame]) -> Result<FleetAdvanceReport, FleetError> {
        let mut by_shard: BTreeMap<u32, Vec<Frame>> = BTreeMap::new();
        for frame in frames {
            let shard = self.shard_of_stream(frame.stream_id)?;
            by_shard.entry(shard).or_default().push(frame.clone());
            self.replay
                .get_mut(&frame.stream_id)
                .expect("placed stream has a replay buffer")
                .push(frame.clone());
        }
        let mut report = FleetAdvanceReport::default();
        for (shard, batch) in by_shard {
            // Resolve ownership fresh per shard: an earlier error leaves
            // untouched shards untouched.
            let (node_id, _) = self.shard_service(shard)?;
            let sent = wire_bytes(&batch);
            let service = self
                .nodes
                .get_mut(&node_id)
                .expect("owner checked alive")
                .shards
                .get_mut(&shard)
                .expect("owner checked present");
            let shard_report: AdvanceReport = service.advance(&batch)?;
            let received = wire_bytes(&shard_report);
            let pending = service.pending_frames_by_stream();
            self.net.record_exchange(sent, received);
            self.tick(self.config.net.exchange_secs(sent + received));
            if shard_report.retrains > 0 {
                // Mirror the single-node epoch bump: a new model generation
                // invalidates the (gather-side) verdict cache.
                self.gather_server.invalidate();
            }
            report.frames += shard_report.frames;
            report.segments_sealed += shard_report.segments_sealed;
            report.retrains += shard_report.retrains;
            report.shards_touched += 1;
            self.trim_replay(&pending);
        }
        Ok(report)
    }

    fn trim_replay(&mut self, pending: &BTreeMap<StreamId, usize>) {
        for (stream, keep) in pending {
            if let Some(buffer) = self.replay.get_mut(stream) {
                if buffer.len() > *keep {
                    let drop = buffer.len() - *keep;
                    buffer.drain(..drop);
                }
            }
        }
    }

    /// Runs one maintenance tick on every alive shard (budget-due seals,
    /// compaction, migration, prefetch), trimming replay buffers after
    /// maintenance-driven seals.
    pub fn maintain(&mut self) -> Result<MaintenanceReport, FleetError> {
        let mut total = MaintenanceReport::default();
        let shards: Vec<u32> = self.manifest.assignments.iter().map(|a| a.shard).collect();
        for shard in shards {
            let Ok((node_id, _)) = self.shard_service(shard) else {
                continue; // dead owner: maintenance resumes after failover
            };
            let service = self
                .nodes
                .get_mut(&node_id)
                .expect("owner checked alive")
                .shards
                .get_mut(&shard)
                .expect("owner checked present");
            let report = service.maintain()?;
            let pending = service.pending_frames_by_stream();
            let received = wire_bytes(&report);
            self.net.record_exchange(0, received);
            self.tick(self.config.net.exchange_secs(received));
            total.segments_sealed += report.segments_sealed;
            total.segments_folded += report.segments_folded;
            total.segments_migrated += report.segments_migrated;
            total.segments_prefetched += report.segments_prefetched;
            self.trim_replay(&pending);
        }
        Ok(total)
    }

    /// Seals every alive shard's pending tail durably (planned-shutdown /
    /// pre-rebalance discipline). Replay buffers empty out: there is
    /// nothing left to replay.
    pub fn seal_all(&mut self) -> Result<usize, FleetError> {
        let mut sealed = 0;
        let shards: Vec<u32> = self.manifest.assignments.iter().map(|a| a.shard).collect();
        for shard in shards {
            let (node_id, _) = self.shard_service(shard)?;
            let service = self
                .nodes
                .get_mut(&node_id)
                .expect("owner checked alive")
                .shards
                .get_mut(&shard)
                .expect("owner checked present");
            sealed += service.seal_all()?.len();
            let pending = service.pending_frames_by_stream();
            self.trim_replay(&pending);
        }
        Ok(sealed)
    }

    /// The lookup classes a query for `class` must scan fleet-wide: the
    /// union of every alive shard's routing (each shard only knows the
    /// per-stream models of its own streams). Scattering this *global* set
    /// to every contacted shard is what keeps scattered plans equal to a
    /// single node's: stream A's specialized override may route the class
    /// through OTHER, and stream B's shard must then scan OTHER too — a
    /// single-node corpus would.
    fn global_lookup_classes(&self, request: &QueryRequest) -> Vec<ClassId> {
        let mut classes = vec![self.bootstrap.effective_query_class(request.class)];
        for (_, node) in self.nodes.iter().filter(|(_, n)| n.alive) {
            for service in node.shards.values() {
                classes.extend(
                    service
                        .corpus()
                        .lookup_classes(request.class, &request.filter),
                );
            }
        }
        classes.sort();
        classes.dedup();
        classes
    }

    /// Whether any of `request`'s records could live on this shard: its
    /// streams must pass the stream filter, and under a time filter either
    /// a sealed segment's bounds or the buffered tail interval must
    /// intersect the range. Conservative by construction — sealed bounds
    /// tightly cover sealed records and the replay buffer tightly covers
    /// tail records — so skipping a shard never drops an answer.
    fn shard_intersects(
        &self,
        assignment: &ShardAssignment,
        service: &FocusService,
        request: &QueryRequest,
    ) -> bool {
        let filter = &request.filter;
        let reachable: Vec<StreamId> = assignment
            .streams
            .iter()
            .map(|s| StreamId(*s))
            .filter(|s| {
                filter
                    .streams
                    .as_ref()
                    .is_none_or(|streams| streams.contains(s))
            })
            .collect();
        if reachable.is_empty() {
            return false;
        }
        let Some((from, to)) = filter.time_range else {
            return true;
        };
        let sealed_hit = service.store().segments().iter().any(|meta| {
            meta.t_end >= from
                && meta.t_start <= to
                && meta.streams.iter().any(|s| reachable.contains(s))
        });
        if sealed_hit {
            return true;
        }
        reachable.iter().any(|stream| {
            let Some(buffer) = self.replay.get(stream) else {
                return false;
            };
            let (Some(first), Some(last)) = (buffer.first(), buffer.last()) else {
                return false;
            };
            let fps = self.fps.get(stream).copied().unwrap_or(1).max(1) as f64;
            let t_first = first.frame_id.0 as f64 / fps;
            let t_last = last.frame_id.0 as f64 / fps;
            t_last >= from && t_first <= to
        })
    }

    /// Scatters a query batch: computes the global lookup-class union,
    /// selects the shards whose bounds intersect any request (all alive
    /// shards when `prune` is false — the broadcast baseline, which also
    /// disables shard-local segment-bound pruning), and collects one
    /// response per contacted shard. Pure read phase: the returned batch
    /// owns its data, so placement may change before
    /// [`gather`](Self::gather).
    pub fn scatter(
        &self,
        requests: &[QueryRequest],
        prune: bool,
    ) -> Result<ScatterBatch, FleetError> {
        let lookup_classes: Vec<Vec<ClassId>> = requests
            .iter()
            .map(|request| self.global_lookup_classes(request))
            .collect();
        let mut contacted = Vec::new();
        let mut responses = Vec::new();
        let request_msg = PlanRequestMsg {
            requests: requests.to_vec(),
            lookup_classes: lookup_classes.clone(),
            prune_segments: prune,
        };
        let sent = wire_bytes(&request_msg);
        let mut per_node_bytes = Vec::new();
        for assignment in &self.manifest.assignments {
            let (_, service) = self.shard_service(assignment.shard)?;
            let relevant = !prune
                || requests
                    .iter()
                    .any(|request| self.shard_intersects(assignment, service, request));
            if !relevant {
                continue;
            }
            let response =
                plan_on_shard(assignment.shard, service, requests, &lookup_classes, prune)?;
            let received = wire_bytes(&response);
            self.net.record_exchange(sent, received);
            per_node_bytes.push(sent + received);
            contacted.push(assignment.shard);
            responses.push(response);
        }
        self.net.record_scatter(contacted.len());
        // Parallel fan-out: the slowest exchange bounds the batch.
        self.tick(self.config.net.scatter_secs(&per_node_bytes));
        Ok(ScatterBatch {
            epoch: self.manifest.epoch,
            contacted,
            prune,
            responses,
        })
    }

    /// Merges a scattered batch and verifies/assembles centrally through
    /// [`QueryServer::serve_resolved`] — the exact single-node seam, fed
    /// the exact single-node plan: shard record maps are key-disjoint, so
    /// the merged, key-sorted candidate set is byte-identical to planning
    /// on one node over the union of streams. A shard contributing the
    /// same cluster twice (a double-counted scatter) panics rather than
    /// double-serving.
    pub fn gather(
        &mut self,
        requests: &[QueryRequest],
        batch: ScatterBatch,
    ) -> Result<Vec<QueryOutcome>, FleetError> {
        let mut plans: Vec<QueryPlan> = Vec::with_capacity(requests.len());
        let mut records: Vec<HashMap<ClusterKey, ClusterRecord>> =
            Vec::with_capacity(requests.len());
        let mut centroids: HashMap<ObjectId, ObjectObservation> = HashMap::new();
        let mut segments_opened = 0;
        for (i, request) in requests.iter().enumerate() {
            let mut merged: BTreeMap<ClusterKey, ClusterRecord> = BTreeMap::new();
            let mut track_scope = crate::query::track::TrackScope::default();
            for response in &batch.responses {
                let part = &response.per_request[i];
                track_scope.merge(&crate::query::track::TrackScope {
                    rejected: part.rejected_tracks.clone(),
                });
                for record in &part.records {
                    let replaced = merged.insert(record.key, record.clone());
                    assert!(
                        replaced.is_none(),
                        "cluster {:?} contributed by two shards — scatter must be exactly-once",
                        record.key
                    );
                }
                for (id, observation) in &part.centroids {
                    centroids.insert(*id, observation.clone());
                }
                if i == 0 {
                    for p in &response.per_request {
                        segments_opened += p.access.opened();
                    }
                }
            }
            let candidates: Vec<CentroidHandle> = merged
                .values()
                .map(|record| CentroidHandle {
                    cluster: record.key,
                    centroid: record.centroid_object,
                    centroid_frame: record.centroid_frame,
                })
                .collect();
            plans.push(QueryPlan {
                class: request.class,
                lookup_class: self.bootstrap.effective_query_class(request.class),
                candidates,
                track_scope,
            });
            records.push(merged.into_iter().collect());
        }
        let meter = GpuMeter::new();
        let outcomes = self.gather_server.serve_resolved(
            &plans,
            &records,
            |id| centroids.get(&id).cloned(),
            &meter,
        );
        self.stats.serves += 1;
        self.stats.queries += requests.len();
        self.stats.segments_opened += segments_opened;
        self.stats.last_scatter_width = batch.contacted.len();
        self.stats.query_gpu_secs += meter.phase("query").0;
        Ok(outcomes)
    }

    /// Scatter + gather with filter pushdown: queries touch only the
    /// shards whose segment/tail bounds intersect them.
    pub fn serve(&mut self, requests: &[QueryRequest]) -> Result<Vec<QueryOutcome>, FleetError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let batch = self.scatter(requests, true)?;
        self.gather(requests, batch)
    }

    /// The broadcast baseline: every alive shard is contacted and plans
    /// without segment-bound pruning. Answers are byte-identical to
    /// [`serve`](Self::serve) (record-level filtering is unchanged); only
    /// the cost differs — strictly more segments opened under a selective
    /// time filter, which the fleet proptest and `fleet_scatter` bench
    /// pin.
    pub fn serve_broadcast(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<Vec<QueryOutcome>, FleetError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let batch = self.scatter(requests, false)?;
        self.gather(requests, batch)
    }

    /// Marks a node dead, dropping its in-process services (their durable
    /// state — segments, manifests, sidecars, centroid deltas — stays on
    /// disk). Queries and ingest for its shards fail with
    /// [`FleetError::NodeDown`] until [`failover`](Self::failover) runs.
    pub fn kill_node(&mut self, node: u32) {
        if let Some(runtime) = self.nodes.get_mut(&node) {
            runtime.alive = false;
            runtime.shards.clear();
        }
    }

    /// Restarts a previously killed node as empty and alive (shards it
    /// owned before the kill stay wherever failover moved them).
    pub fn restart_node(&mut self, node: u32) {
        if let Some(runtime) = self.nodes.get_mut(&node) {
            runtime.alive = true;
        }
    }

    /// Adopts every dead node's shards onto survivors: re-opens each
    /// shard's durable store ([`FocusService::recover`]), replays the
    /// coordinator's buffered since-last-seal frames to rebuild the lost
    /// hot tail byte-identically, reassigns the shard in a fresh manifest
    /// epoch, and charges the simulated cost (detection RTT + replay
    /// shipping + manifest round) to the meter/clock.
    pub fn failover(&mut self) -> Result<FailoverReport, FleetError> {
        let orphaned: Vec<ShardAssignment> = self
            .manifest
            .assignments
            .iter()
            // Orphaned: the owner is dead, or it restarted empty and no
            // longer runs the shard it still claims on paper.
            .filter(|a| {
                self.nodes
                    .get(&a.node)
                    .is_none_or(|n| !n.alive || !n.shards.contains_key(&a.shard))
            })
            .cloned()
            .collect();
        let mut report = FailoverReport {
            // Loss detection: one missed heartbeat round-trip.
            secs: self.config.net.rtt_secs,
            ..FailoverReport::default()
        };
        if orphaned.is_empty() {
            return Ok(report);
        }
        let mut manifest = self.manifest.clone();
        for assignment in orphaned {
            let target = self.least_loaded_alive().ok_or(FleetError::NoSurvivor)?;
            let (mut service, _open_report) = FocusService::recover(
                self.root.join(&assignment.dir),
                self.config.service.clone(),
                self.gt.clone(),
            )?;
            // Replay the lost tail from the coordinator's buffers. Single
            // stream per shard, so buffer order is exactly arrival order.
            let mut replayed: Vec<Frame> = Vec::new();
            for stream in assignment.streams.iter().map(|s| StreamId(*s)) {
                if let Some(buffer) = self.replay.get(&stream) {
                    replayed.extend(buffer.iter().cloned());
                }
            }
            let replay_bytes = wire_bytes(&replayed);
            if !replayed.is_empty() {
                let shard_report = service.advance(&replayed)?;
                if shard_report.retrains > 0 {
                    self.gather_server.invalidate();
                }
                report.frames_replayed += replayed.len();
            }
            let pending = service.pending_frames_by_stream();
            self.trim_replay(&pending);
            self.net.record_exchange(replay_bytes, 0);
            report.secs += self.config.net.exchange_secs(replay_bytes);
            for entry in manifest.assignments.iter_mut() {
                if entry.shard == assignment.shard {
                    entry.node = target;
                }
            }
            self.nodes
                .get_mut(&target)
                .expect("alive target exists")
                .shards
                .insert(assignment.shard, service);
            report.shards_recovered += 1;
        }
        manifest.epoch += 1;
        let manifest = manifest.seal();
        manifest.validate()?;
        let manifest_bytes = wire_bytes(&manifest);
        manifest.save(&self.replica_dirs())?;
        self.manifest = manifest;
        report.secs += self.config.net.exchange_secs(manifest_bytes);
        self.tick(report.secs);
        self.stats.failovers += 1;
        self.stats.last_failover_secs = report.secs;
        Ok(report)
    }

    /// Migrates a shard to another alive node under the crash-safe
    /// manifest discipline: seal the tail durably on the source, commit
    /// the new placement epoch (data-durable-before-ownership-flips), then
    /// open on the target and drop the source's handle. A crash between
    /// commit and open recovers onto the target with nothing lost.
    pub fn rebalance(&mut self, shard: u32, to_node: u32) -> Result<(), FleetError> {
        let assignment = self
            .manifest
            .assignment(shard)
            .ok_or_else(|| FleetError::Manifest(format!("shard {shard} has no assignment")))?
            .clone();
        if assignment.node == to_node {
            return Ok(());
        }
        if !self.nodes.get(&to_node).is_some_and(|n| n.alive) {
            return Err(FleetError::NodeDown {
                node: to_node,
                shard,
            });
        }
        let (source_id, _) = self.shard_service(shard)?;
        // 1. Drain the tail to durable segments on the source.
        let source = self
            .nodes
            .get_mut(&source_id)
            .expect("source checked alive")
            .shards
            .get_mut(&shard)
            .expect("source checked present");
        source.seal_all()?;
        let pending = source.pending_frames_by_stream();
        self.trim_replay(&pending);
        // 2. Commit the new placement (the crash-safe point).
        let mut manifest = self.manifest.clone();
        for entry in manifest.assignments.iter_mut() {
            if entry.shard == shard {
                entry.node = to_node;
            }
        }
        manifest.epoch += 1;
        let manifest = manifest.seal();
        manifest.validate()?;
        let manifest_bytes = wire_bytes(&manifest);
        manifest.save(&self.replica_dirs())?;
        self.manifest = manifest;
        // 3. Open on the target, drop the source handle.
        self.nodes
            .get_mut(&source_id)
            .expect("source exists")
            .shards
            .remove(&shard);
        let (service, _report) = FocusService::recover(
            self.root.join(&assignment.dir),
            self.config.service.clone(),
            self.gt.clone(),
        )?;
        self.nodes
            .get_mut(&to_node)
            .expect("target checked alive")
            .shards
            .insert(shard, service);
        self.net.record_exchange(manifest_bytes, 0);
        self.tick(self.config.net.exchange_secs(manifest_bytes) + 2.0 * self.config.net.rtt_secs);
        self.stats.rebalances += 1;
        Ok(())
    }

    /// Point-in-time statistics (placement, transport account, scatter
    /// widths, failover/rebalance counters).
    pub fn stats(&self) -> FleetStats {
        let mut stats = self.stats.clone();
        stats.nodes = self.nodes.len();
        stats.nodes_alive = self.alive_node_ids().len();
        stats.shards = self.manifest.assignments.len();
        stats.streams = self.fps.len();
        stats.manifest_epoch = self.manifest.epoch;
        stats.net = self.net.snapshot();
        stats
    }
}

/// Serialized size of a value on the simulated wire (canonical
/// `serde_json`, the fleet's interchange format).
fn wire_bytes<T: Serialize>(value: &T) -> u64 {
    serde_json::to_string(value)
        .expect("wire value serializes")
        .len() as u64
}

/// The node-side plan handler: plans every request of the batch against
/// this shard's sealed segments + hot tail with the coordinator's global
/// lookup-class set, and resolves each record's centroid observation so
/// the coordinator can verify centrally without another round trip.
fn plan_on_shard(
    shard: u32,
    service: &FocusService,
    requests: &[QueryRequest],
    lookup_classes: &[Vec<ClassId>],
    prune: bool,
) -> Result<ShardPlanMsg, SegmentError> {
    let tail = service.tail_snapshot();
    let corpus = service.corpus();
    let mut per_request = Vec::with_capacity(requests.len());
    for (request, classes) in requests.iter().zip(lookup_classes) {
        let planned = corpus.plan_with_tail_scoped(request, Some(&tail), classes, prune, true)?;
        let mut records: Vec<ClusterRecord> = planned.records.into_values().collect();
        records.sort_by_key(|record| record.key);
        let mut centroids: Vec<(ObjectId, ObjectObservation)> = records
            .iter()
            .map(|record| {
                let id = record.centroid_object;
                let observation = corpus
                    .centroids
                    .get(&id)
                    .or_else(|| tail.centroid(id))
                    .cloned()
                    .expect("planned record's centroid observation resolvable on its shard");
                (id, observation)
            })
            .collect();
        centroids.sort_by_key(|(id, _)| *id);
        centroids.dedup_by_key(|(id, _)| *id);
        per_request.push(ShardRequestPlan {
            records,
            centroids,
            tail_records: planned.tail_records,
            rejected_tracks: planned.plan.track_scope.rejected,
            access: WireAccess {
                segments_total: planned.access.segments_total,
                segments_considered: planned.access.segments_considered,
                cold_loads: planned.access.cold_loads,
                cache_hits: planned.access.cache_hits,
                bytes_read: planned.access.bytes_read,
            },
        });
    }
    Ok(ShardPlanMsg { shard, per_request })
}
