//! Live adaptation: drift-aware per-stream reconfiguration and a
//! workload-driven GPU governor.
//!
//! Focus picks each stream's configuration — cheap CNN, top-K width,
//! clustering threshold — *once*, on a short sample, under a fixed
//! ingest/query trade-off policy (§4.4, Figures 1/6 of the paper). That is
//! the right shape for a recorded experiment and the wrong shape for a
//! long-lived service: class distributions drift (day/night,
//! weekday/weekend), the query:ingest mix swings, and a one-shot choice
//! decays silently — the specialized model keeps mapping the new dominant
//! classes through OTHER, recall slides below the accuracy target, and
//! nothing notices. This module closes the loop between the offline
//! [`ParameterSelector`] and the online
//! [`FocusService`](crate::service::FocusService):
//!
//! * [`DriftDetector`] — compares the live class distribution against the
//!   distribution the current configuration was selected on (total
//!   variation distance over normalized class histograms).
//! * [`StreamController`] — per-stream observe → detect → re-select loop.
//!   It maintains a rolling window of recent frames and a rolling
//!   histogram of **audit labels** (a small fraction of objects sent
//!   through the ground-truth CNN on a metered budget, phase `"audit"`).
//!   When the audit histogram drifts past the threshold it re-runs the
//!   parameter sweep on the window
//!   ([`ParameterSelector::select_metered`], phase `"selection"`) and
//!   hands the chosen configuration back to the service, which installs it
//!   through the ordinary model-epoch seal machinery — records indexed
//!   before the switch are untouched and stay reachable exactly as after a
//!   scheduled retrain (`tests/adaptive_drift.rs` pins this byte-identical
//!   against a seal-then-reconfigure reference).
//! * [`WorkloadGovernor`] — service-level controller that retargets the
//!   shared [`GpuScheduler`]'s `Weighted { query_share }` from the
//!   observed backlogs each maintenance tick, with a dead-band and a step
//!   limit so it converges instead of flapping.
//!
//! All adaptation GPU work — audit labelling and re-selection sweeps — is
//! submitted to the same scheduler as ingest and queries, so adapting is a
//! *visible, bounded* cost, not a free lunch (ExSample makes the same
//! point for adaptive sampling: the win is reallocating a fixed budget,
//! not spending more of it).
//!
//! See `docs/adaptation.md` for the end-to-end walkthrough.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use focus_cnn::{Classifier, GroundTruthCnn};
use focus_runtime::{GpuMeter, GpuPriorityPolicy, GpuScheduler, GpuSchedulerStats};
use focus_video::profile::StreamDomain;
use focus_video::{ClassId, Frame, ObjectObservation, StreamId, StreamProfile, VideoDataset};

use crate::config::{AccuracyTarget, TradeoffPolicy};
use crate::params::{ParameterSelector, SelectedConfiguration, SweepSpace};

/// Compares two class histograms and decides whether the distribution has
/// drifted past a threshold.
///
/// The metric is the total variation distance between the normalized
/// histograms: `0.0` for identical distributions, `1.0` for disjoint ones.
/// It is insensitive to the absolute number of labels on either side, so a
/// 50-label audit window can be compared against a 5,000-label
/// specialization sample.
///
/// # Examples
///
/// ```
/// use focus_core::adapt::DriftDetector;
/// use focus_video::ClassId;
/// use std::collections::HashMap;
///
/// let reference: HashMap<ClassId, usize> =
///     [(ClassId(1), 90), (ClassId(2), 10)].into_iter().collect();
/// let same = reference.clone();
/// let shifted: HashMap<ClassId, usize> =
///     [(ClassId(7), 80), (ClassId(1), 20)].into_iter().collect();
///
/// let detector = DriftDetector::new(0.5);
/// assert_eq!(DriftDetector::distance(&reference, &same), 0.0);
/// assert!(!detector.drifted(&reference, &same));
/// assert!(detector.drifted(&reference, &shifted));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftDetector {
    /// Total-variation distance at or above which the distribution counts
    /// as drifted, in `[0, 1]`.
    pub threshold: f64,
}

impl DriftDetector {
    /// Creates a detector with the given threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[0, 1]`.
    pub fn new(threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "drift threshold must be in [0, 1]"
        );
        Self { threshold }
    }

    /// Total variation distance between the normalized histograms:
    /// `0.5 * Σ_c |p(c) - q(c)|`, which is `0.0` for identical
    /// distributions and `1.0` for disjoint ones. Two empty histograms are
    /// identical; an empty histogram against a non-empty one is disjoint.
    pub fn distance(reference: &HashMap<ClassId, usize>, recent: &HashMap<ClassId, usize>) -> f64 {
        let ref_total: usize = reference.values().sum();
        let rec_total: usize = recent.values().sum();
        match (ref_total, rec_total) {
            (0, 0) => return 0.0,
            (0, _) | (_, 0) => return 1.0,
            _ => {}
        }
        let mut diff = 0.0;
        for (class, count) in reference {
            let p = *count as f64 / ref_total as f64;
            let q = recent.get(class).copied().unwrap_or(0) as f64 / rec_total as f64;
            diff += (p - q).abs();
        }
        for (class, count) in recent {
            if !reference.contains_key(class) {
                diff += *count as f64 / rec_total as f64;
            }
        }
        diff / 2.0
    }

    /// Whether `recent` has drifted from `reference`: true exactly when
    /// the distance is **at or above** the threshold (a distance equal to
    /// the threshold counts as drift; pinned by this module's tests).
    pub fn drifted(
        &self,
        reference: &HashMap<ClassId, usize>,
        recent: &HashMap<ClassId, usize>,
    ) -> bool {
        Self::distance(reference, recent) >= self.threshold
    }
}

/// Configuration of a stream's adaptive controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationConfig {
    /// Fraction of observed objects sent through the ground-truth CNN as
    /// audit labels (charged to the shared budget under `"audit"`). This
    /// is on top of the specialization lifecycle's own labelling.
    pub audit_fraction: f64,
    /// How many of the most recent audit labels form the live histogram
    /// the drift detector compares against the reference.
    pub window_labels: usize,
    /// Minimum audit labels in the window before drift is judged at all —
    /// a handful of labels is noise, not a distribution.
    pub min_window_labels: usize,
    /// Total-variation distance at or above which the stream counts as
    /// drifted and re-selection runs.
    pub drift_threshold: f64,
    /// Length of the rolling frame window the re-selection sweep runs on,
    /// in stream seconds.
    pub window_secs: f64,
    /// Minimum stream time between two reconfigurations of one stream
    /// (re-selection is not free; this bounds how often it can be paid).
    pub cooldown_secs: f64,
    /// The candidate space the online re-selection sweeps — defaults to
    /// the reduced [`SweepSpace::adaptive`] grid.
    pub sweep: SweepSpace,
    /// Accuracy target the re-selected configuration must meet on the
    /// window sample.
    pub target: AccuracyTarget,
    /// Trade-off policy applied to the viable re-selected configurations.
    pub policy: TradeoffPolicy,
}

impl Default for AdaptationConfig {
    fn default() -> Self {
        Self {
            audit_fraction: 0.02,
            window_labels: 200,
            min_window_labels: 50,
            drift_threshold: 0.35,
            window_secs: 60.0,
            cooldown_secs: 120.0,
            sweep: SweepSpace::adaptive(),
            target: AccuracyTarget::default(),
            policy: TradeoffPolicy::Balance,
        }
    }
}

/// What a drift-triggered re-selection decided.
#[derive(Debug, Clone)]
pub struct Reconfiguration {
    /// The total-variation distance that triggered the re-selection.
    pub drift_distance: f64,
    /// The configuration chosen on the drift window, ready to install.
    pub selection: SelectedConfiguration,
    /// Audit labels in the window when the drift was judged.
    pub window_labels: usize,
}

/// The per-stream observe → detect → re-select controller (see the module
/// docs). Owned by the service next to the stream's specialization
/// lifecycle; inert until the first specialization hands it a reference
/// histogram ([`set_reference`](Self::set_reference)).
#[derive(Debug)]
pub struct StreamController {
    stream: StreamId,
    fps: u32,
    config: AdaptationConfig,
    gt: GroundTruthCnn,
    detector: DriftDetector,
    /// The class histogram the current configuration was selected on.
    reference: Option<HashMap<ClassId, usize>>,
    /// Rolling window of the most recent audit labels.
    recent: VecDeque<ClassId>,
    audit_labels: usize,
    /// Rolling window of recent frames the re-selection sweep samples.
    window: VecDeque<Frame>,
    generation: usize,
    reconfigurations: usize,
    last_reconfiguration_secs: f64,
    last_reconfiguration: Option<Reconfiguration>,
}

impl StreamController {
    /// Creates a controller for one stream.
    pub fn new(stream: StreamId, fps: u32, config: AdaptationConfig, gt: GroundTruthCnn) -> Self {
        let detector = DriftDetector::new(config.drift_threshold);
        Self {
            stream,
            fps: fps.max(1),
            config,
            gt,
            detector,
            reference: None,
            recent: VecDeque::new(),
            audit_labels: 0,
            window: VecDeque::new(),
            generation: 0,
            reconfigurations: 0,
            last_reconfiguration_secs: f64::NEG_INFINITY,
            last_reconfiguration: None,
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &AdaptationConfig {
        &self.config
    }

    /// Audit labels drawn so far (each one cost a GT inference on the
    /// shared budget).
    pub fn audit_labels(&self) -> usize {
        self.audit_labels
    }

    /// Reconfigurations this controller has triggered.
    pub fn reconfigurations(&self) -> usize {
        self.reconfigurations
    }

    /// The most recent reconfiguration this controller decided (`None`
    /// before the first one) — what a seal-then-reconfigure reference run
    /// replays to pin byte-identical pre-drift results.
    pub fn last_reconfiguration(&self) -> Option<&Reconfiguration> {
        self.last_reconfiguration.as_ref()
    }

    /// The reference histogram the live distribution is compared against
    /// (`None` until the first specialization).
    pub fn reference(&self) -> Option<&HashMap<ClassId, usize>> {
        self.reference.as_ref()
    }

    /// Installs the distribution the current configuration was selected on
    /// — the specialization sample's histogram after a lifecycle
    /// (re)train, or the audit window after a controller reconfiguration.
    /// Arms the drift detector.
    pub fn set_reference(&mut self, histogram: HashMap<ClassId, usize>) {
        self.reference = Some(histogram);
    }

    /// Replaces the ground-truth CNN used for audit labels and window
    /// re-selection (the service propagates GT retrains here too).
    pub fn set_ground_truth(&mut self, gt: GroundTruthCnn) {
        self.gt = gt;
    }

    /// Feeds one object observation: draws it as an audit label when the
    /// configured fraction is due, charging `meter` under `"audit"`.
    /// `objects_seen` is the running 1-based count of observed objects, as
    /// delivered by the pipeline's observer hook. Returns whether the
    /// object was audited.
    pub fn observe(
        &mut self,
        obj: &ObjectObservation,
        objects_seen: usize,
        meter: &GpuMeter,
    ) -> bool {
        let due =
            (objects_seen as f64 * self.config.audit_fraction).floor() > self.audit_labels as f64;
        if !due {
            return false;
        }
        self.audit_labels += 1;
        meter.charge("audit", self.gt.cost_per_inference());
        let label = self.gt.classify_top1(obj);
        self.recent.push_back(label);
        while self.recent.len() > self.config.window_labels.max(1) {
            self.recent.pop_front();
        }
        true
    }

    /// Feeds one frame into the rolling re-selection window (trimmed to
    /// [`AdaptationConfig::window_secs`] of stream time).
    pub fn note_frame(&mut self, frame: &Frame) {
        let horizon = frame.timestamp_secs - self.config.window_secs;
        self.window.push_back(frame.clone());
        while self
            .window
            .front()
            .is_some_and(|f| f.timestamp_secs < horizon)
        {
            self.window.pop_front();
        }
    }

    /// Stream time of the newest frame the controller has seen (0.0
    /// before any frame) — the clock [`maybe_reconfigure`] runs on.
    ///
    /// [`maybe_reconfigure`]: Self::maybe_reconfigure
    pub fn last_seen_secs(&self) -> f64 {
        self.window.back().map(|f| f.timestamp_secs).unwrap_or(0.0)
    }

    /// The live histogram over the rolling audit-label window.
    pub fn recent_histogram(&self) -> HashMap<ClassId, usize> {
        let mut hist = HashMap::new();
        for class in &self.recent {
            *hist.entry(*class).or_insert(0) += 1;
        }
        hist
    }

    /// The current drift distance, or `None` while the detector is
    /// un-armed (no reference yet) or the audit window is still too small
    /// to judge.
    pub fn drift_distance(&self) -> Option<f64> {
        let reference = self.reference.as_ref()?;
        if self.recent.len() < self.config.min_window_labels.max(1) {
            return None;
        }
        Some(DriftDetector::distance(reference, &self.recent_histogram()))
    }

    /// The detect → re-select step, run once per maintenance tick: if the
    /// cooldown has passed and the audit histogram has drifted past the
    /// threshold, re-runs the parameter sweep on the rolling frame window
    /// (GPU bill charged to `meter` under `"selection"`) and returns the
    /// chosen configuration for the service to install. The audit window
    /// becomes the new reference, so the detector re-arms against the
    /// distribution just reconfigured for.
    ///
    /// Returns `None` when nothing needs to change (no drift, cooldown,
    /// window empty, or the sweep found nothing to run).
    pub fn maybe_reconfigure(
        &mut self,
        now_secs: f64,
        meter: &GpuMeter,
    ) -> Option<Reconfiguration> {
        if now_secs - self.last_reconfiguration_secs < self.config.cooldown_secs {
            return None;
        }
        let distance = self.drift_distance()?;
        if distance < self.detector.threshold {
            return None;
        }
        if self.window.is_empty() {
            return None;
        }
        self.generation += 1;
        let sample = self.window_sample();
        let selector = ParameterSelector::new(self.config.sweep.clone(), self.config.target);
        let result = selector.select_metered(&sample, &self.gt, meter);
        let selection = result.choose_or_best_effort(self.config.policy)?;
        self.reconfigurations += 1;
        self.last_reconfiguration_secs = now_secs;
        self.set_reference(self.recent_histogram());
        let event = Reconfiguration {
            drift_distance: distance,
            selection,
            window_labels: self.recent.len(),
        };
        self.last_reconfiguration = Some(event.clone());
        Some(event)
    }

    /// The rolling frame window as a dataset the parameter sweep can run
    /// on. The synthesized profile carries the stream identity the sweep
    /// actually reads — the frame rate (ground-truth segmenting) and a
    /// per-generation name (part of a trained specialized model's
    /// deterministic identity) — the statistical fields describe
    /// generation, which this window did not come from.
    fn window_sample(&self) -> VideoDataset {
        let frames: Vec<Frame> = self.window.iter().cloned().collect();
        let span = match (frames.first(), frames.last()) {
            (Some(first), Some(last)) => last.timestamp_secs - first.timestamp_secs,
            _ => 0.0,
        };
        let profile = StreamProfile {
            name: format!("stream-{}-adapt{}", self.stream.0, self.generation),
            location: String::new(),
            description: "live re-selection window".to_string(),
            domain: StreamDomain::Traffic,
            stream_id: self.stream,
            fps: self.fps,
            distinct_classes: 1,
            zipf_exponent: 1.0,
            empty_frame_fraction: 0.0,
            mean_objects_per_busy_frame: 1.0,
            mean_dwell_secs: 1.0,
            seed: 0,
        };
        VideoDataset::from_frames(profile, span, frames)
    }
}

/// Configuration of the service-level GPU governor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// Lower bound on the query share (ingest can never be fully starved
    /// by the governor).
    pub min_share: f64,
    /// Upper bound on the query share.
    pub max_share: f64,
    /// Dead-band: the governor only acts when the desired share differs
    /// from the current one by at least this much (hysteresis against
    /// flapping on noisy backlogs).
    pub deadband: f64,
    /// Largest share change applied per tick (the governor walks towards
    /// the desired share instead of jumping).
    pub max_step: f64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self {
            min_share: 0.05,
            max_share: 0.95,
            deadband: 0.10,
            max_step: 0.25,
        }
    }
}

impl GovernorConfig {
    fn validate(&self) {
        assert!(
            0.0 <= self.min_share && self.min_share <= self.max_share && self.max_share <= 1.0,
            "governor shares must satisfy 0 <= min <= max <= 1"
        );
        assert!(self.deadband >= 0.0, "deadband must be non-negative");
        assert!(self.max_step > 0.0, "max step must be positive");
    }
}

/// Retargets the shared [`GpuScheduler`]'s `Weighted { query_share }` from
/// the observed backlogs (see the module docs). Only acts when the
/// scheduler is running a `Weighted` policy — strict priorities are a
/// deliberate operator choice the governor must not override.
///
/// # Examples
///
/// ```
/// use focus_cnn::GpuCost;
/// use focus_core::adapt::{GovernorConfig, WorkloadGovernor};
/// use focus_runtime::{GpuClusterSpec, GpuPriorityPolicy, GpuScheduler};
///
/// let sched = GpuScheduler::new(
///     GpuClusterSpec::new(2),
///     GpuPriorityPolicy::Weighted { query_share: 0.5 },
///     1.0,
/// );
/// let mut governor = WorkloadGovernor::new(GovernorConfig::default());
///
/// // A query-heavy backlog pulls the share towards queries, one bounded
/// // step per tick.
/// sched.submit("query", GpuCost(9.0));
/// sched.submit("ingest", GpuCost(1.0));
/// let new_share = governor.tick(&sched).unwrap();
/// assert!(new_share > 0.5);
/// assert!(new_share <= 0.5 + GovernorConfig::default().max_step);
/// ```
#[derive(Debug)]
pub struct WorkloadGovernor {
    config: GovernorConfig,
    retargets: usize,
}

impl WorkloadGovernor {
    /// Creates a governor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`GovernorConfig`]).
    pub fn new(config: GovernorConfig) -> Self {
        config.validate();
        Self {
            config,
            retargets: 0,
        }
    }

    /// The governor's configuration.
    pub fn config(&self) -> GovernorConfig {
        self.config
    }

    /// Times this governor retargeted the scheduler.
    pub fn retargets(&self) -> usize {
        self.retargets
    }

    /// The share of capacity the query side is asking for, from the
    /// observed backlogs: `query_backlog / (query_backlog +
    /// ingest_backlog)`. `None` when both backlogs are (numerically)
    /// empty — an idle scheduler gives the governor nothing to react to.
    pub fn desired_share(stats: &GpuSchedulerStats) -> Option<f64> {
        let total = stats.query_backlog_secs + stats.ingest_backlog_secs;
        if total <= 1e-12 {
            return None;
        }
        Some(stats.query_backlog_secs / total)
    }

    /// One governor step, run per maintenance tick **before** the
    /// scheduler drains: reads the backlogs, and when the desired share is
    /// outside the dead-band around the current one, retargets the
    /// scheduler by at most `max_step`, clamped to `[min_share,
    /// max_share]`. Returns the new share when a retarget happened.
    pub fn tick(&mut self, scheduler: &GpuScheduler) -> Option<f64> {
        let GpuPriorityPolicy::Weighted { query_share } = scheduler.policy() else {
            return None;
        };
        let desired = Self::desired_share(&scheduler.stats())?
            .clamp(self.config.min_share, self.config.max_share);
        if (desired - query_share).abs() < self.config.deadband {
            return None;
        }
        let step = (desired - query_share).clamp(-self.config.max_step, self.config.max_step);
        let new_share = (query_share + step).clamp(self.config.min_share, self.config.max_share);
        scheduler.set_query_share(new_share);
        self.retargets += 1;
        Some(new_share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_cnn::GpuCost;
    use focus_runtime::GpuClusterSpec;
    use focus_video::profile::profile_by_name;

    fn hist(entries: &[(u16, usize)]) -> HashMap<ClassId, usize> {
        entries.iter().map(|(c, n)| (ClassId(*c), *n)).collect()
    }

    #[test]
    fn distance_is_zero_for_identical_and_one_for_disjoint() {
        let a = hist(&[(1, 80), (2, 20)]);
        assert_eq!(DriftDetector::distance(&a, &a), 0.0);
        // Scale invariance: the same distribution at 10x the labels.
        let scaled = hist(&[(1, 800), (2, 200)]);
        assert!(DriftDetector::distance(&a, &scaled) < 1e-12);
        let disjoint = hist(&[(9, 5)]);
        assert!((DriftDetector::distance(&a, &disjoint) - 1.0).abs() < 1e-12);
        // Empty cases.
        assert_eq!(DriftDetector::distance(&hist(&[]), &hist(&[])), 0.0);
        assert_eq!(DriftDetector::distance(&a, &hist(&[])), 1.0);
        assert_eq!(DriftDetector::distance(&hist(&[]), &a), 1.0);
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let a = hist(&[(1, 50), (2, 30), (3, 20)]);
        let b = hist(&[(2, 10), (3, 10), (4, 80)]);
        let ab = DriftDetector::distance(&a, &b);
        let ba = DriftDetector::distance(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
        // Half the mass moved from class 1 to class 4 plus the rest:
        // |0.5-0| + |0.3-0.1| + |0.2-0.1| + |0-0.8| over 2 = 0.8.
        assert!((ab - 0.8).abs() < 1e-12);
    }

    #[test]
    fn exact_threshold_counts_as_drift() {
        // A distance exactly at the threshold triggers (>= semantics).
        let reference = hist(&[(1, 1), (2, 1)]);
        let recent = hist(&[(1, 1), (3, 1)]);
        let distance = DriftDetector::distance(&reference, &recent);
        assert!((distance - 0.5).abs() < 1e-12);
        assert!(DriftDetector::new(0.5).drifted(&reference, &recent));
        assert!(!DriftDetector::new(0.5 + 1e-9).drifted(&reference, &recent));
        assert!(DriftDetector::new(0.0).drifted(&reference, &reference));
    }

    #[test]
    #[should_panic(expected = "drift threshold")]
    fn out_of_range_threshold_panics() {
        let _ = DriftDetector::new(1.5);
    }

    fn controller(config: AdaptationConfig) -> StreamController {
        StreamController::new(StreamId(0), 30, config, GroundTruthCnn::resnet152())
    }

    #[test]
    fn controller_audits_the_configured_fraction_and_charges_the_meter() {
        let profile = profile_by_name("auburn_c").unwrap();
        let ds = VideoDataset::generate(profile, 30.0);
        let mut c = controller(AdaptationConfig {
            audit_fraction: 0.05,
            ..AdaptationConfig::default()
        });
        let meter = GpuMeter::new();
        let mut seen = 0usize;
        for frame in &ds.frames {
            c.note_frame(frame);
            for obj in &frame.objects {
                seen += 1;
                c.observe(obj, seen, &meter);
            }
        }
        let expected = (seen as f64 * 0.05).floor() as usize;
        assert_eq!(c.audit_labels(), expected);
        assert!(
            (meter.phase("audit").seconds()
                - GroundTruthCnn::resnet152().cost_per_inference().seconds() * expected as f64)
                .abs()
                < 1e-9
        );
        // The rolling label window is capped.
        assert!(c.recent.len() <= c.config().window_labels);
        // The frame window only keeps the configured span.
        let span =
            c.window.back().unwrap().timestamp_secs - c.window.front().unwrap().timestamp_secs;
        assert!(span <= c.config().window_secs + 1e-9);
    }

    #[test]
    fn no_drift_means_no_reconfiguration() {
        // A stationary stream: the audit window matches the specialization
        // sample, so the controller must never re-select.
        let profile = profile_by_name("auburn_c").unwrap();
        let ds = VideoDataset::generate(profile, 60.0);
        let mut c = controller(AdaptationConfig {
            audit_fraction: 0.1,
            min_window_labels: 20,
            cooldown_secs: 0.0,
            ..AdaptationConfig::default()
        });
        let meter = GpuMeter::new();
        let mut seen = 0usize;
        let mut armed = false;
        for frame in &ds.frames {
            c.note_frame(frame);
            for obj in &frame.objects {
                seen += 1;
                c.observe(obj, seen, &meter);
            }
            if !armed && c.recent.len() >= 60 {
                // Arm the detector with the live distribution itself, as a
                // lifecycle specialization would.
                c.set_reference(c.recent_histogram());
                armed = true;
            }
            if armed {
                assert!(
                    c.maybe_reconfigure(frame.timestamp_secs, &meter).is_none(),
                    "stationary stream reconfigured at {}s (distance {:?})",
                    frame.timestamp_secs,
                    c.drift_distance()
                );
            }
        }
        assert!(armed);
        assert_eq!(c.reconfigurations(), 0);
        assert_eq!(meter.phase("selection").seconds(), 0.0, "no sweep ran");
    }

    #[test]
    fn unarmed_or_underfilled_controller_reports_no_drift() {
        let mut c = controller(AdaptationConfig::default());
        assert_eq!(c.drift_distance(), None, "un-armed");
        c.set_reference(hist(&[(1, 10)]));
        assert_eq!(c.drift_distance(), None, "window below minimum");
        let meter = GpuMeter::new();
        assert!(c.maybe_reconfigure(1_000.0, &meter).is_none());
    }

    #[test]
    fn drifted_stream_reselects_and_rearms_on_the_new_distribution() {
        let profile = profile_by_name("auburn_c").unwrap();
        let drifted = profile.drifted("night", StreamDomain::News, 3);
        let base = VideoDataset::generate(profile, 30.0);
        let tail = VideoDataset::generate(drifted, 30.0);
        let spliced = base.continue_with(&tail);
        let mut c = controller(AdaptationConfig {
            audit_fraction: 0.1,
            window_labels: 120,
            min_window_labels: 30,
            drift_threshold: 0.4,
            window_secs: 20.0,
            cooldown_secs: 0.0,
            ..AdaptationConfig::default()
        });
        let meter = GpuMeter::new();
        let mut seen = 0usize;
        let mut reconfigured = None;
        for frame in &spliced.frames {
            c.note_frame(frame);
            for obj in &frame.objects {
                seen += 1;
                c.observe(obj, seen, &meter);
            }
            if frame.timestamp_secs >= 29.0 && c.reference().is_none() {
                c.set_reference(c.recent_histogram());
            }
            if c.reference().is_some() && reconfigured.is_none() {
                reconfigured = c.maybe_reconfigure(frame.timestamp_secs, &meter);
                if reconfigured.is_some() {
                    // The detector re-armed on the distribution it just
                    // reconfigured for: at this instant there is no drift
                    // left to act on.
                    assert!(c.drift_distance().unwrap() < 1e-9);
                }
            }
        }
        let event = reconfigured.expect("the injected drift must trigger re-selection");
        assert!(event.drift_distance >= 0.4);
        assert!(event.window_labels >= 30);
        assert_eq!(c.reconfigurations(), 1);
        // The sweep's bill landed on the meter.
        assert!(meter.phase("selection").seconds() > 0.0);
        // The chosen configuration is runnable.
        assert!(event.selection.params.k >= 1);
        assert!(event.selection.model.classifier.cheapness_vs_gt() > 1.0);
    }

    #[test]
    fn cooldown_suppresses_back_to_back_reconfigurations() {
        let mut c = controller(AdaptationConfig {
            min_window_labels: 1,
            drift_threshold: 0.0,
            cooldown_secs: 100.0,
            ..AdaptationConfig::default()
        });
        // Force a drifted state with a tiny synthetic window.
        let profile = profile_by_name("auburn_c").unwrap();
        let ds = VideoDataset::generate(profile, 5.0);
        let meter = GpuMeter::new();
        let mut seen = 0usize;
        for frame in &ds.frames {
            c.note_frame(frame);
            for obj in &frame.objects {
                seen += 1;
                c.observe(obj, seen, &meter);
            }
        }
        c.set_reference(hist(&[(999, 5)]));
        let first = c.maybe_reconfigure(10.0, &meter);
        assert!(first.is_some());
        // Within the cooldown nothing fires, even though the reference was
        // re-armed and the distance may still be non-zero.
        c.set_reference(hist(&[(999, 5)]));
        assert!(c.maybe_reconfigure(50.0, &meter).is_none());
        assert!(c.maybe_reconfigure(110.0, &meter).is_some());
    }

    fn weighted_scheduler(share: f64) -> GpuScheduler {
        GpuScheduler::new(
            GpuClusterSpec::new(2),
            GpuPriorityPolicy::Weighted { query_share: share },
            1.0,
        )
    }

    #[test]
    fn governor_moves_towards_demand_with_bounded_steps() {
        let sched = weighted_scheduler(0.5);
        let mut gov = WorkloadGovernor::new(GovernorConfig::default());
        sched.submit("query", GpuCost(90.0));
        sched.submit("ingest", GpuCost(10.0));
        // Demand says 0.9; one tick moves at most max_step.
        let share = gov.tick(&sched).unwrap();
        assert!((share - 0.75).abs() < 1e-12);
        let share = gov.tick(&sched).unwrap();
        assert!((share - 0.9).abs() < 1e-12);
        assert_eq!(gov.retargets(), 2);
        assert_eq!(
            sched.policy(),
            GpuPriorityPolicy::Weighted { query_share: 0.9 }
        );
    }

    #[test]
    fn governor_deadband_prevents_flapping() {
        let sched = weighted_scheduler(0.5);
        let mut gov = WorkloadGovernor::new(GovernorConfig {
            deadband: 0.2,
            ..GovernorConfig::default()
        });
        sched.submit("query", GpuCost(6.0));
        sched.submit("ingest", GpuCost(4.0));
        // Demand 0.6 is within the 0.2 dead-band around 0.5: no retarget.
        assert!(gov.tick(&sched).is_none());
        assert_eq!(gov.retargets(), 0);
        assert_eq!(sched.stats().retargets, 0);
    }

    #[test]
    fn governor_is_inert_without_backlog_or_weighted_policy() {
        let sched = weighted_scheduler(0.5);
        let mut gov = WorkloadGovernor::new(GovernorConfig::default());
        assert!(gov.tick(&sched).is_none(), "idle scheduler");

        let strict = GpuScheduler::new(GpuClusterSpec::new(2), GpuPriorityPolicy::QueryFirst, 1.0);
        strict.submit("query", GpuCost(10.0));
        assert!(gov.tick(&strict).is_none(), "strict priority untouched");
        assert_eq!(strict.policy(), GpuPriorityPolicy::QueryFirst);
    }

    #[test]
    fn governor_clamps_to_the_configured_share_range() {
        let sched = weighted_scheduler(0.9);
        let mut gov = WorkloadGovernor::new(GovernorConfig {
            min_share: 0.2,
            max_share: 0.95,
            deadband: 0.05,
            max_step: 1.0,
        });
        // Pure ingest demand: desired clamps to min_share.
        sched.submit("ingest", GpuCost(10.0));
        let share = gov.tick(&sched).unwrap();
        assert!((share - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "governor shares")]
    fn inconsistent_governor_config_panics() {
        let _ = WorkloadGovernor::new(GovernorConfig {
            min_share: 0.9,
            max_share: 0.1,
            ..GovernorConfig::default()
        });
    }
}
