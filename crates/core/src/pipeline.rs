//! The shared per-frame ingest pipeline (IT1–IT4 in Figure 4 of the paper).
//!
//! [`FramePipeline`] is the single implementation of the per-frame work both
//! ingest drivers run on:
//!
//! * [`IngestEngine`](crate::ingest::IngestEngine) replays a recorded
//!   dataset through one pipeline (batch driver);
//! * [`StreamWorker`](crate::worker::StreamWorker) pushes live frames
//!   through one pipeline, sealing an epoch whenever its model changes
//!   (streaming driver);
//! * [`ShardedIngest`](crate::shard::ShardedIngest) runs one pipeline per
//!   stream shard concurrently on a worker pool.
//!
//! For every frame the pipeline
//!
//! 1. applies motion filtering (frames without moving objects are skipped),
//! 2. applies pixel differencing between objects in adjacent frames so
//!    near-identical observations reuse the previous classification,
//! 3. classifies each remaining object with the caller-supplied ingest CNN,
//!    obtaining its top-K classes and feature vector,
//! 4. clusters objects by feature vector with the single-pass incremental
//!    clusterer, and
//! 5. on [`seal_epoch`](FramePipeline::seal_epoch), writes one record per
//!    cluster into the top-K index (centroid object, the representative's
//!    top-K classes, and all member objects/frames).
//!
//! The classifier is an argument of [`push_frame`](FramePipeline::push_frame)
//! rather than pipeline state, so the streaming driver can swap models
//! between epochs (feature spaces of different models are not comparable,
//! which is why every epoch gets a fresh clusterer).
//!
//! Determinism: a pipeline's outputs are a pure function of the frame
//! sequence, the parameters and the classifier. Cluster keys are assigned
//! from a per-stream counter in epoch-seal order, so replaying the same
//! stream always yields byte-identical cluster records — the property the
//! sharded ingest layer relies on to guarantee serial/parallel equivalence.

use std::collections::HashMap;

use focus_cluster::IncrementalClusterer;
use focus_cnn::{Classifier, GpuCost};
use focus_index::{ClusterKey, ClusterRecord, MemberRef, TopKIndex, TrackSketcher};
use focus_video::motion::PixelDiffOutcome;
use focus_video::{
    ClassId, Frame, FrameId, MotionFilter, ObjectId, ObjectObservation, PixelDiff, StreamId,
};

use crate::ingest::IngestParams;

/// Counters describing a pipeline's activity so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Frames pushed into the pipeline.
    pub frames: usize,
    /// Frames with at least one moving object.
    pub frames_with_motion: usize,
    /// Object observations seen in motion frames.
    pub objects: usize,
    /// Observations actually classified by the ingest CNN (after pixel
    /// differencing).
    pub objects_classified: usize,
    /// Clusters sealed into the index so far.
    pub clusters: usize,
    /// Epochs sealed so far.
    pub epochs_sealed: usize,
}

/// Everything a finished pipeline produced.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The per-stream top-K index.
    pub index: TopKIndex,
    /// The centroid observation of every cluster, keyed by object id.
    pub centroids: HashMap<ObjectId, ObjectObservation>,
    /// Total GPU time charged for ingest CNN inferences.
    pub gpu_cost: GpuCost,
    /// Activity counters.
    pub stats: PipelineStats,
    /// Parameters the pipeline ran with.
    pub params: IngestParams,
}

/// Per-epoch state: the clusterer plus the classification caches for the
/// objects ingested during the epoch.
struct Epoch {
    clusterer: IncrementalClusterer,
    top_k: HashMap<ObjectId, Vec<ClassId>>,
    observations: HashMap<ObjectId, ObjectObservation>,
}

impl Epoch {
    fn new(params: &IngestParams) -> Self {
        Self {
            clusterer: IncrementalClusterer::new(
                params.cluster_threshold.max(f32::EPSILON),
                params.max_active_clusters,
            ),
            top_k: HashMap::new(),
            observations: HashMap::new(),
        }
    }
}

/// The shared per-frame ingest pipeline for one stream.
pub struct FramePipeline {
    stream: StreamId,
    fps: u32,
    params: IngestParams,
    motion: MotionFilter,
    pixel_diff: PixelDiff,
    epoch: Epoch,
    sketcher: TrackSketcher,
    index: TopKIndex,
    centroids: HashMap<ObjectId, ObjectObservation>,
    next_cluster_key: u64,
    objects: usize,
    objects_classified: usize,
    clusters: usize,
    epochs_sealed: usize,
    gpu_cost: GpuCost,
}

impl std::fmt::Debug for FramePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FramePipeline")
            .field("stream", &self.stream)
            .field("stats", &self.stats())
            .finish()
    }
}

impl FramePipeline {
    /// Creates a pipeline for one stream.
    pub fn new(stream: StreamId, fps: u32, params: IngestParams) -> Self {
        Self {
            stream,
            fps: fps.max(1),
            params,
            motion: MotionFilter::new(),
            pixel_diff: PixelDiff::new(),
            epoch: Epoch::new(&params),
            sketcher: TrackSketcher::new(stream),
            index: TopKIndex::new(),
            centroids: HashMap::new(),
            next_cluster_key: 0,
            objects: 0,
            objects_classified: 0,
            clusters: 0,
            epochs_sealed: 0,
            gpu_cost: GpuCost(0.0),
        }
    }

    /// The stream this pipeline ingests.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// The parameters this pipeline runs with.
    pub fn params(&self) -> IngestParams {
        self.params
    }

    /// The stream's frame rate (clamped to at least 1 at construction).
    pub fn fps(&self) -> u32 {
        self.fps
    }

    /// The centroid observation of every cluster sealed so far, keyed by
    /// object id. Cumulative across segment drains — this is the map the
    /// query-time verification stage reads.
    pub fn centroids(&self) -> &HashMap<ObjectId, ObjectObservation> {
        &self.centroids
    }

    /// The next cluster key this pipeline will assign.
    pub fn next_cluster_key(&self) -> u64 {
        self.next_cluster_key
    }

    /// Starts cluster-key assignment at `next` instead of zero — the
    /// recovery path for a pipeline resuming a stream whose earlier
    /// clusters were already sealed to durable segments (new keys must not
    /// collide with persisted ones).
    ///
    /// # Panics
    ///
    /// Panics if the pipeline has already sealed a cluster or `next` would
    /// move the counter backwards.
    pub fn start_cluster_keys_at(&mut self, next: u64) {
        assert_eq!(self.clusters, 0, "cannot re-key a pipeline mid-stream");
        assert!(
            next >= self.next_cluster_key,
            "cluster keys must not move backwards"
        );
        self.next_cluster_key = next;
    }

    /// Installs new ingest parameters (K, clustering threshold, ...) for
    /// every epoch from now on — the reconfiguration path of the adaptive
    /// controller ([`crate::adapt`]). Parameters are epoch state (the
    /// clusterer is built from them), so the live epoch must be empty:
    /// callers seal the old configuration's epoch first, exactly like a
    /// model swap, and records sealed before the switch are untouched.
    ///
    /// # Panics
    ///
    /// Panics if the live epoch already holds observations (the caller
    /// forgot to [`seal_epoch`](Self::seal_epoch) first).
    pub fn set_params(&mut self, params: IngestParams) {
        assert!(
            self.epoch.observations.is_empty(),
            "parameters can only change on an epoch boundary: seal the epoch first"
        );
        self.params = params;
        self.epoch = Epoch::new(&params);
    }

    /// Activity counters.
    pub fn stats(&self) -> PipelineStats {
        let motion = self.motion.stats();
        PipelineStats {
            frames: motion.total_frames,
            frames_with_motion: motion.frames_with_motion,
            objects: self.objects,
            objects_classified: self.objects_classified,
            clusters: self.clusters,
            epochs_sealed: self.epochs_sealed,
        }
    }

    /// Total GPU time charged so far for ingest inferences.
    pub fn gpu_cost(&self) -> GpuCost {
        self.gpu_cost
    }

    /// Pushes one frame through motion filtering, pixel differencing,
    /// classification and clustering.
    ///
    /// GPU cost accrues lock-free in [`gpu_cost`](Self::gpu_cost); drivers
    /// decide how to surface it on a [`GpuMeter`](focus_runtime::GpuMeter)
    /// (the batch driver charges once per run, the streaming driver
    /// charges per-frame deltas for live accounting).
    pub fn push_frame(&mut self, frame: &Frame, classifier: &dyn Classifier) {
        self.push_frame_observed(frame, classifier, |_, _| {});
    }

    /// Like [`push_frame`](Self::push_frame), but invokes `observer` for
    /// every object observation that passed motion filtering, together with
    /// the running count of observed objects (1-based, including the current
    /// one). The streaming driver uses this hook to maintain its
    /// ground-truth-labelled retraining sample.
    pub fn push_frame_observed(
        &mut self,
        frame: &Frame,
        classifier: &dyn Classifier,
        mut observer: impl FnMut(&ObjectObservation, usize),
    ) {
        if !self.motion.admit(frame) {
            return;
        }
        for obj in &frame.objects {
            self.ingest_object(obj, frame.timestamp_secs, classifier);
            observer(obj, self.objects);
        }
    }

    /// IT2–IT4 for a single object observation.
    fn ingest_object(&mut self, obj: &ObjectObservation, secs: f64, classifier: &dyn Classifier) {
        self.objects += 1;
        // Every motion-admitted observation (even pixel-diff duplicates)
        // feeds its track's spatio-temporal sketch — the sketch must cover
        // the raw trajectory, or track-scoped planning loses recall.
        let (cx, cy) = obj.bbox.center();
        self.sketcher.observe(obj.track_id, secs, cx, cy);
        let source = if self.params.pixel_differencing {
            match self.pixel_diff.check(obj) {
                // Only duplicates of an object classified in the *current*
                // epoch can reuse a classification: earlier epochs used a
                // different model, so their cached outcomes do not apply.
                PixelDiffOutcome::DuplicateOf(original)
                    if self.epoch.top_k.contains_key(&original) =>
                {
                    Some(original)
                }
                _ => None,
            }
        } else {
            None
        };
        let (classes, features) = match source {
            Some(original) => {
                // Reuse the source's classification; re-extract the
                // (identical-signature) features from the source observation
                // so the cluster geometry matches.
                let classes = self.epoch.top_k[&original].clone();
                let features = classifier.extract_features(&self.epoch.observations[&original]);
                (classes, features)
            }
            None => {
                self.objects_classified += 1;
                self.gpu_cost += classifier.cost_per_inference();
                let ranked = classifier.classify_top_k(obj, self.params.k);
                (ranked.classes(), classifier.extract_features(obj))
            }
        };
        self.epoch.top_k.insert(obj.object_id, classes);
        self.epoch.observations.insert(obj.object_id, obj.clone());
        if self.params.enable_clustering {
            self.epoch
                .clusterer
                .add(obj.object_id.0, obj.frame_id.0, &features.0);
        } else {
            // Without clustering every object is sealed immediately as a
            // singleton cluster.
            let record = build_record(
                self.stream,
                self.fps,
                &self.epoch.top_k,
                &self.epoch.observations,
                &mut self.centroids,
                &mut self.next_cluster_key,
                obj.object_id,
                vec![MemberRef {
                    object: obj.object_id,
                    frame: obj.frame_id,
                    track: obj.track_id,
                }],
            );
            self.index.insert(record);
            self.clusters += 1;
        }
    }

    /// Seals the current epoch's clusters into the index and starts a fresh
    /// epoch. The streaming driver calls this when its model changes; both
    /// drivers call it (via [`finish`](Self::finish)) at the end of input.
    pub fn seal_epoch(&mut self) {
        // Pixel-diff reuse is scoped to one epoch (the gate in
        // `ingest_object` already rejected cross-epoch duplicates), so the
        // filter's signature window resets with the epoch. This keeps the
        // whole per-epoch ingest state a function of the epoch's own
        // frames: a recovered pipeline that replays the frames since its
        // last sealed segment lands in exactly the state of one that never
        // crashed, which fleet failover relies on.
        self.pixel_diff.reset_window();
        let finished = std::mem::replace(&mut self.epoch, Epoch::new(&self.params));
        if self.params.enable_clustering {
            let (clusters, _stats) = finished.clusterer.finish();
            for cluster in clusters {
                let representative = ObjectId(cluster.representative().item);
                let members: Vec<MemberRef> = cluster
                    .members
                    .iter()
                    .map(|m| MemberRef {
                        object: ObjectId(m.item),
                        frame: FrameId(m.tag),
                        track: finished.observations[&ObjectId(m.item)].track_id,
                    })
                    .collect();
                let record = build_record(
                    self.stream,
                    self.fps,
                    &finished.top_k,
                    &finished.observations,
                    &mut self.centroids,
                    &mut self.next_cluster_key,
                    representative,
                    members,
                );
                self.index.insert(record);
                self.clusters += 1;
            }
        }
        self.epochs_sealed += 1;
    }

    /// Seals the live epoch, then drains every record sealed so far into a
    /// standalone index — the unit the segmented ingest driver persists as
    /// one immutable time-partitioned segment (see
    /// [`SegmentedIngest`](crate::segment_ingest::SegmentedIngest)).
    ///
    /// Cluster keys keep counting monotonically across drains, so the
    /// drained indexes of one pipeline are key-disjoint by construction and
    /// merging them reproduces the index an undrained run of the same seal
    /// schedule would have built. Centroid observations and counters stay
    /// with the pipeline (cumulative), so [`finish`](Self::finish) still
    /// reports whole-stream stats and the full centroid map.
    /// Sketch windows drain with the segment: every track observed since
    /// the last drain contributes one window sketch (the sketcher carries
    /// each track's last position across the boundary, so per-window
    /// absorb-merging downstream reconstructs exactly the continuous
    /// sketch — seal boundaries never change a track query's answer).
    pub fn seal_segment(&mut self) -> TopKIndex {
        self.seal_epoch();
        for sketch in self.sketcher.drain_window() {
            self.index.insert_sketch(sketch);
        }
        std::mem::take(&mut self.index)
    }

    /// A **non-destructive** snapshot of what
    /// [`seal_segment`](Self::seal_segment) would drain right now: every record sealed
    /// since the last drain plus the live epoch's clusters, together with
    /// the centroid observation of each record.
    ///
    /// The snapshot replays the sealing logic on a clone of the live
    /// epoch's state — same clusterer outcome, same cluster-key assignment
    /// — so its records are byte-identical to the records an actual seal
    /// at this instant would persist. This is the *hot tail* the live
    /// service overlays on top of its durable segments: a query issued
    /// mid-ingest sees exactly the union it would see after
    /// seal-everything-then-query (`tests/live_service.rs` pins this).
    pub fn peek_segment(&self) -> (TopKIndex, HashMap<ObjectId, ObjectObservation>) {
        let mut index = self.index.clone();
        let mut centroids: HashMap<ObjectId, ObjectObservation> = self
            .index
            .clusters()
            .map(|r| {
                (
                    r.centroid_object,
                    self.centroids[&r.centroid_object].clone(),
                )
            })
            .collect();
        let mut next_key = self.next_cluster_key;
        if self.params.enable_clustering {
            let (clusters, _stats) = self.epoch.clusterer.clone().finish();
            for cluster in clusters {
                let representative = ObjectId(cluster.representative().item);
                let members: Vec<MemberRef> = cluster
                    .members
                    .iter()
                    .map(|m| MemberRef {
                        object: ObjectId(m.item),
                        frame: FrameId(m.tag),
                        track: self.epoch.observations[&ObjectId(m.item)].track_id,
                    })
                    .collect();
                let record = build_record(
                    self.stream,
                    self.fps,
                    &self.epoch.top_k,
                    &self.epoch.observations,
                    &mut centroids,
                    &mut next_key,
                    representative,
                    members,
                );
                index.insert(record);
            }
        }
        for sketch in self.sketcher.snapshot_window() {
            index.insert_sketch(sketch);
        }
        (index, centroids)
    }

    /// Puts a drained-but-not-persisted part back into the pipeline's
    /// index — the failure path of a durable seal: the records rejoin the
    /// hot tail (visible to [`peek_segment`](Self::peek_segment) again)
    /// and the next seal re-drains them, so a transient I/O error can
    /// never silently lose a time window.
    ///
    /// Centroids and counters were never removed by the drain (both are
    /// cumulative), and the part's keys predate
    /// [`next_cluster_key`](Self::next_cluster_key), so restoration is
    /// pure record re-insertion.
    ///
    /// # Panics
    ///
    /// Panics if the part shares a key with a live record (meaning it was
    /// not drained from this pipeline, or was restored twice).
    pub fn restore_drained(&mut self, part: TopKIndex) {
        let replaced = self.index.merge(part);
        assert_eq!(replaced, 0, "restored part must be key-disjoint");
    }

    /// Seals the live epoch and returns everything the pipeline produced,
    /// consuming it.
    ///
    /// If [`seal_segment`](Self::seal_segment) was used to drain records
    /// along the way, the returned index holds only the records sealed
    /// since the last drain; the centroid map and counters always cover the
    /// whole run.
    pub fn finish(mut self) -> PipelineOutput {
        self.seal_epoch();
        for sketch in self.sketcher.drain_window() {
            self.index.insert_sketch(sketch);
        }
        let stats = self.stats();
        PipelineOutput {
            index: self.index,
            centroids: self.centroids,
            gpu_cost: self.gpu_cost,
            stats,
            params: self.params,
        }
    }
}

/// Builds the index record for a finished cluster: resolves the
/// representative's cached top-K and observation, remembers the centroid
/// observation in `centroids` for query-time verification, and assigns the
/// next sequential cluster key. Shared by the mutating seal path and the
/// non-destructive [`FramePipeline::peek_segment`] snapshot, which is what
/// keeps the two byte-identical.
#[allow(clippy::too_many_arguments)]
fn build_record(
    stream: StreamId,
    fps: u32,
    top_k: &HashMap<ObjectId, Vec<ClassId>>,
    observations: &HashMap<ObjectId, ObjectObservation>,
    centroids: &mut HashMap<ObjectId, ObjectObservation>,
    next_cluster_key: &mut u64,
    representative: ObjectId,
    members: Vec<MemberRef>,
) -> ClusterRecord {
    let classes = top_k.get(&representative).cloned().unwrap_or_default();
    let start = members.iter().map(|m| m.frame.0).min().unwrap_or(0) as f64 / fps as f64;
    let end = members.iter().map(|m| m.frame.0).max().unwrap_or(0) as f64 / fps as f64;
    let centroid_frame = observations[&representative].frame_id;
    centroids.insert(representative, observations[&representative].clone());
    let key = ClusterKey::new(stream, *next_cluster_key);
    *next_cluster_key += 1;
    ClusterRecord {
        key,
        centroid_object: representative,
        centroid_frame,
        top_k_classes: classes,
        members,
        start_secs: start,
        end_secs: end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::IngestCnn;
    use focus_cnn::ModelSpec;
    use focus_video::profile::profile_by_name;
    use focus_video::VideoDataset;

    fn run_pipeline(params: IngestParams) -> PipelineOutput {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 60.0);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let mut pipeline = FramePipeline::new(profile.stream_id, profile.fps, params);
        for frame in &dataset.frames {
            pipeline.push_frame(frame, model.classifier.as_ref());
        }
        pipeline.finish()
    }

    #[test]
    fn pipeline_indexes_every_object_exactly_once() {
        let output = run_pipeline(IngestParams::default());
        let indexed: usize = output.index.clusters().map(|c| c.len()).sum();
        assert_eq!(indexed, output.stats.objects);
        assert_eq!(output.stats.clusters, output.index.len());
        assert_eq!(output.stats.epochs_sealed, 1);
        for record in output.index.clusters() {
            assert!(output.centroids.contains_key(&record.centroid_object));
        }
    }

    #[test]
    fn observer_sees_every_motion_object_in_order() {
        let profile = profile_by_name("lausanne").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 45.0);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_2());
        let mut pipeline =
            FramePipeline::new(profile.stream_id, profile.fps, IngestParams::default());
        let mut seen = Vec::new();
        for frame in &dataset.frames {
            pipeline.push_frame_observed(frame, model.classifier.as_ref(), |obj, n| {
                seen.push((obj.object_id, n));
            });
        }
        assert_eq!(seen.len(), pipeline.stats().objects);
        for (i, (_, n)) in seen.iter().enumerate() {
            assert_eq!(*n, i + 1, "observer count must be the running total");
        }
    }

    #[test]
    fn sealing_between_epochs_keeps_cluster_keys_unique() {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 40.0);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let mut pipeline =
            FramePipeline::new(profile.stream_id, profile.fps, IngestParams::default());
        let half = dataset.frames.len() / 2;
        for frame in &dataset.frames[..half] {
            pipeline.push_frame(frame, model.classifier.as_ref());
        }
        pipeline.seal_epoch();
        for frame in &dataset.frames[half..] {
            pipeline.push_frame(frame, model.classifier.as_ref());
        }
        let output = pipeline.finish();
        assert_eq!(output.stats.epochs_sealed, 2);
        let mut keys: Vec<_> = output.index.clusters().map(|r| r.key).collect();
        let total = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(
            keys.len(),
            total,
            "cluster keys must be unique across epochs"
        );
        let indexed: usize = output.index.clusters().map(|c| c.len()).sum();
        assert_eq!(indexed, output.stats.objects);
    }

    #[test]
    fn draining_segments_is_equivalent_to_sealing_in_place() {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 40.0);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let half = dataset.frames.len() / 2;

        // Reference: seal the epoch in place, keep accumulating.
        let mut sealed =
            FramePipeline::new(profile.stream_id, profile.fps, IngestParams::default());
        for frame in &dataset.frames[..half] {
            sealed.push_frame(frame, model.classifier.as_ref());
        }
        sealed.seal_epoch();
        for frame in &dataset.frames[half..] {
            sealed.push_frame(frame, model.classifier.as_ref());
        }
        let sealed = sealed.finish();

        // Drained: same schedule, but the first seal drains a segment.
        let mut drained =
            FramePipeline::new(profile.stream_id, profile.fps, IngestParams::default());
        for frame in &dataset.frames[..half] {
            drained.push_frame(frame, model.classifier.as_ref());
        }
        let part1 = drained.seal_segment();
        for frame in &dataset.frames[half..] {
            drained.push_frame(frame, model.classifier.as_ref());
        }
        let drained = drained.finish();

        let mut merged = part1;
        assert_eq!(merged.merge_from(&drained.index), 0);
        assert_eq!(
            focus_index::persist::to_json(&merged).unwrap(),
            focus_index::persist::to_json(&sealed.index).unwrap()
        );
        // Stats and centroids are cumulative despite the drain.
        assert_eq!(drained.stats, sealed.stats);
        assert_eq!(drained.centroids.len(), sealed.centroids.len());
        for record in merged.clusters() {
            assert!(drained.centroids.contains_key(&record.centroid_object));
        }
    }

    #[test]
    fn peek_segment_matches_an_actual_seal() {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 30.0);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        for enable_clustering in [true, false] {
            let params = IngestParams {
                enable_clustering,
                ..IngestParams::default()
            };
            let mut pipeline = FramePipeline::new(profile.stream_id, profile.fps, params);
            // Peek at several points mid-stream: each snapshot must be
            // byte-identical to what sealing at that instant would drain,
            // without disturbing the pipeline.
            for (i, frame) in dataset.frames.iter().enumerate() {
                pipeline.push_frame(frame, model.classifier.as_ref());
                if i == dataset.frames.len() / 2 {
                    let stats_before = pipeline.stats();
                    let (peeked, peeked_centroids) = pipeline.peek_segment();
                    assert_eq!(pipeline.stats(), stats_before, "peek must not mutate");
                    let mut twin = FramePipeline::new(profile.stream_id, profile.fps, params);
                    for frame in &dataset.frames[..=i] {
                        twin.push_frame(frame, model.classifier.as_ref());
                    }
                    let sealed = twin.seal_segment();
                    assert_eq!(
                        focus_index::persist::to_json(&peeked).unwrap(),
                        focus_index::persist::to_json(&sealed).unwrap()
                    );
                    // Every snapshot record's centroid observation came along.
                    for record in peeked.clusters() {
                        assert_eq!(
                            peeked_centroids[&record.centroid_object],
                            twin.centroids()[&record.centroid_object]
                        );
                    }
                }
            }
            // The pipeline kept running unaffected: a final peek equals a
            // final seal.
            let (peeked, _) = pipeline.peek_segment();
            let sealed = pipeline.seal_segment();
            assert_eq!(
                focus_index::persist::to_json(&peeked).unwrap(),
                focus_index::persist::to_json(&sealed).unwrap()
            );
        }
    }

    #[test]
    fn resumed_cluster_keys_start_where_told() {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 10.0);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let mut pipeline =
            FramePipeline::new(profile.stream_id, profile.fps, IngestParams::default());
        pipeline.start_cluster_keys_at(42);
        assert_eq!(pipeline.next_cluster_key(), 42);
        for frame in &dataset.frames {
            pipeline.push_frame(frame, model.classifier.as_ref());
        }
        let output = pipeline.finish();
        assert!(output.index.clusters().all(|r| r.key.local >= 42));
    }

    #[test]
    #[should_panic(expected = "mid-stream")]
    fn re_keying_a_started_pipeline_panics() {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 10.0);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let mut pipeline =
            FramePipeline::new(profile.stream_id, profile.fps, IngestParams::default());
        for frame in &dataset.frames {
            pipeline.push_frame(frame, model.classifier.as_ref());
        }
        pipeline.seal_epoch();
        pipeline.start_cluster_keys_at(1_000);
    }

    #[test]
    fn set_params_on_an_epoch_boundary_preserves_sealed_records() {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 40.0);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let half = dataset.frames.len() / 2;
        let before = IngestParams {
            k: 10,
            ..IngestParams::default()
        };
        let after = IngestParams {
            k: 3,
            cluster_threshold: 0.8,
            ..IngestParams::default()
        };

        let mut pipeline = FramePipeline::new(profile.stream_id, profile.fps, before);
        for frame in &dataset.frames[..half] {
            pipeline.push_frame(frame, model.classifier.as_ref());
        }
        // Reference snapshot of the pre-switch records.
        let (reference, _) = pipeline.peek_segment();
        pipeline.seal_epoch();
        pipeline.set_params(after);
        assert_eq!(pipeline.params(), after);
        for frame in &dataset.frames[half..] {
            pipeline.push_frame(frame, model.classifier.as_ref());
        }
        let output = pipeline.finish();

        // Pre-switch records are byte-identical to the pre-switch snapshot;
        // post-switch records carry the new K.
        let reference_keys: std::collections::HashSet<_> =
            reference.clusters().map(|r| r.key).collect();
        for record in output.index.clusters() {
            if reference_keys.contains(&record.key) {
                assert_eq!(
                    serde_json::to_string(record).unwrap(),
                    serde_json::to_string(reference.get(record.key).unwrap()).unwrap()
                );
            } else {
                assert_eq!(record.top_k_classes.len(), after.k);
            }
        }
        let indexed: usize = output.index.clusters().map(|c| c.len()).sum();
        assert_eq!(
            indexed, output.stats.objects,
            "no object lost by the switch"
        );
    }

    #[test]
    #[should_panic(expected = "epoch boundary")]
    fn set_params_mid_epoch_panics() {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 5.0);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let mut pipeline =
            FramePipeline::new(profile.stream_id, profile.fps, IngestParams::default());
        for frame in &dataset.frames {
            pipeline.push_frame(frame, model.classifier.as_ref());
        }
        pipeline.set_params(IngestParams::default());
    }

    #[test]
    fn disabling_clustering_seals_singletons_immediately() {
        let output = run_pipeline(IngestParams {
            enable_clustering: false,
            ..IngestParams::default()
        });
        assert_eq!(output.stats.clusters, output.stats.objects);
        for record in output.index.clusters() {
            assert_eq!(record.len(), 1);
        }
    }

    #[test]
    fn replaying_the_same_stream_is_deterministic() {
        let a = run_pipeline(IngestParams::default());
        let b = run_pipeline(IngestParams::default());
        assert_eq!(
            a.gpu_cost.seconds().to_bits(),
            b.gpu_cost.seconds().to_bits()
        );
        assert_eq!(a.stats, b.stats);
        assert_eq!(
            focus_index::persist::to_json(&a.index).unwrap(),
            focus_index::persist::to_json(&b.index).unwrap()
        );
    }
}
