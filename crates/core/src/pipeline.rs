//! The shared per-frame ingest pipeline (IT1–IT4 in Figure 4 of the paper).
//!
//! [`FramePipeline`] is the single implementation of the per-frame work both
//! ingest drivers run on:
//!
//! * [`IngestEngine`](crate::ingest::IngestEngine) replays a recorded
//!   dataset through one pipeline (batch driver);
//! * [`StreamWorker`](crate::worker::StreamWorker) pushes live frames
//!   through one pipeline, sealing an epoch whenever its model changes
//!   (streaming driver);
//! * [`ShardedIngest`](crate::shard::ShardedIngest) runs one pipeline per
//!   stream shard concurrently on a worker pool.
//!
//! For every frame the pipeline
//!
//! 1. applies motion filtering (frames without moving objects are skipped),
//! 2. applies pixel differencing between objects in adjacent frames so
//!    near-identical observations reuse the previous classification,
//! 3. classifies each remaining object with the caller-supplied ingest CNN,
//!    obtaining its top-K classes and feature vector,
//! 4. clusters objects by feature vector with the single-pass incremental
//!    clusterer, and
//! 5. on [`seal_epoch`](FramePipeline::seal_epoch), writes one record per
//!    cluster into the top-K index (centroid object, the representative's
//!    top-K classes, and all member objects/frames).
//!
//! The classifier is an argument of [`push_frame`](FramePipeline::push_frame)
//! rather than pipeline state, so the streaming driver can swap models
//! between epochs (feature spaces of different models are not comparable,
//! which is why every epoch gets a fresh clusterer).
//!
//! Determinism: a pipeline's outputs are a pure function of the frame
//! sequence, the parameters and the classifier. Cluster keys are assigned
//! from a per-stream counter in epoch-seal order, so replaying the same
//! stream always yields byte-identical cluster records — the property the
//! sharded ingest layer relies on to guarantee serial/parallel equivalence.

use std::collections::HashMap;

use focus_cluster::IncrementalClusterer;
use focus_cnn::{Classifier, GpuCost};
use focus_index::{ClusterKey, ClusterRecord, MemberRef, TopKIndex};
use focus_video::motion::PixelDiffOutcome;
use focus_video::{
    ClassId, Frame, FrameId, MotionFilter, ObjectId, ObjectObservation, PixelDiff, StreamId,
};

use crate::ingest::IngestParams;

/// Counters describing a pipeline's activity so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Frames pushed into the pipeline.
    pub frames: usize,
    /// Frames with at least one moving object.
    pub frames_with_motion: usize,
    /// Object observations seen in motion frames.
    pub objects: usize,
    /// Observations actually classified by the ingest CNN (after pixel
    /// differencing).
    pub objects_classified: usize,
    /// Clusters sealed into the index so far.
    pub clusters: usize,
    /// Epochs sealed so far.
    pub epochs_sealed: usize,
}

/// Everything a finished pipeline produced.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The per-stream top-K index.
    pub index: TopKIndex,
    /// The centroid observation of every cluster, keyed by object id.
    pub centroids: HashMap<ObjectId, ObjectObservation>,
    /// Total GPU time charged for ingest CNN inferences.
    pub gpu_cost: GpuCost,
    /// Activity counters.
    pub stats: PipelineStats,
    /// Parameters the pipeline ran with.
    pub params: IngestParams,
}

/// Per-epoch state: the clusterer plus the classification caches for the
/// objects ingested during the epoch.
struct Epoch {
    clusterer: IncrementalClusterer,
    top_k: HashMap<ObjectId, Vec<ClassId>>,
    observations: HashMap<ObjectId, ObjectObservation>,
}

impl Epoch {
    fn new(params: &IngestParams) -> Self {
        Self {
            clusterer: IncrementalClusterer::new(
                params.cluster_threshold.max(f32::EPSILON),
                params.max_active_clusters,
            ),
            top_k: HashMap::new(),
            observations: HashMap::new(),
        }
    }
}

/// The shared per-frame ingest pipeline for one stream.
pub struct FramePipeline {
    stream: StreamId,
    fps: u32,
    params: IngestParams,
    motion: MotionFilter,
    pixel_diff: PixelDiff,
    epoch: Epoch,
    index: TopKIndex,
    centroids: HashMap<ObjectId, ObjectObservation>,
    next_cluster_key: u64,
    objects: usize,
    objects_classified: usize,
    clusters: usize,
    epochs_sealed: usize,
    gpu_cost: GpuCost,
}

impl std::fmt::Debug for FramePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FramePipeline")
            .field("stream", &self.stream)
            .field("stats", &self.stats())
            .finish()
    }
}

impl FramePipeline {
    /// Creates a pipeline for one stream.
    pub fn new(stream: StreamId, fps: u32, params: IngestParams) -> Self {
        Self {
            stream,
            fps: fps.max(1),
            params,
            motion: MotionFilter::new(),
            pixel_diff: PixelDiff::new(),
            epoch: Epoch::new(&params),
            index: TopKIndex::new(),
            centroids: HashMap::new(),
            next_cluster_key: 0,
            objects: 0,
            objects_classified: 0,
            clusters: 0,
            epochs_sealed: 0,
            gpu_cost: GpuCost(0.0),
        }
    }

    /// The stream this pipeline ingests.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// The parameters this pipeline runs with.
    pub fn params(&self) -> IngestParams {
        self.params
    }

    /// Activity counters.
    pub fn stats(&self) -> PipelineStats {
        let motion = self.motion.stats();
        PipelineStats {
            frames: motion.total_frames,
            frames_with_motion: motion.frames_with_motion,
            objects: self.objects,
            objects_classified: self.objects_classified,
            clusters: self.clusters,
            epochs_sealed: self.epochs_sealed,
        }
    }

    /// Total GPU time charged so far for ingest inferences.
    pub fn gpu_cost(&self) -> GpuCost {
        self.gpu_cost
    }

    /// Pushes one frame through motion filtering, pixel differencing,
    /// classification and clustering.
    ///
    /// GPU cost accrues lock-free in [`gpu_cost`](Self::gpu_cost); drivers
    /// decide how to surface it on a [`GpuMeter`](focus_runtime::GpuMeter)
    /// (the batch driver charges once per run, the streaming driver
    /// charges per-frame deltas for live accounting).
    pub fn push_frame(&mut self, frame: &Frame, classifier: &dyn Classifier) {
        self.push_frame_observed(frame, classifier, |_, _| {});
    }

    /// Like [`push_frame`](Self::push_frame), but invokes `observer` for
    /// every object observation that passed motion filtering, together with
    /// the running count of observed objects (1-based, including the current
    /// one). The streaming driver uses this hook to maintain its
    /// ground-truth-labelled retraining sample.
    pub fn push_frame_observed(
        &mut self,
        frame: &Frame,
        classifier: &dyn Classifier,
        mut observer: impl FnMut(&ObjectObservation, usize),
    ) {
        if !self.motion.admit(frame) {
            return;
        }
        for obj in &frame.objects {
            self.ingest_object(obj, classifier);
            observer(obj, self.objects);
        }
    }

    /// IT2–IT4 for a single object observation.
    fn ingest_object(&mut self, obj: &ObjectObservation, classifier: &dyn Classifier) {
        self.objects += 1;
        let source = if self.params.pixel_differencing {
            match self.pixel_diff.check(obj) {
                // Only duplicates of an object classified in the *current*
                // epoch can reuse a classification: earlier epochs used a
                // different model, so their cached outcomes do not apply.
                PixelDiffOutcome::DuplicateOf(original)
                    if self.epoch.top_k.contains_key(&original) =>
                {
                    Some(original)
                }
                _ => None,
            }
        } else {
            None
        };
        let (classes, features) = match source {
            Some(original) => {
                // Reuse the source's classification; re-extract the
                // (identical-signature) features from the source observation
                // so the cluster geometry matches.
                let classes = self.epoch.top_k[&original].clone();
                let features = classifier.extract_features(&self.epoch.observations[&original]);
                (classes, features)
            }
            None => {
                self.objects_classified += 1;
                self.gpu_cost += classifier.cost_per_inference();
                let ranked = classifier.classify_top_k(obj, self.params.k);
                (ranked.classes(), classifier.extract_features(obj))
            }
        };
        self.epoch.top_k.insert(obj.object_id, classes);
        self.epoch.observations.insert(obj.object_id, obj.clone());
        if self.params.enable_clustering {
            self.epoch
                .clusterer
                .add(obj.object_id.0, obj.frame_id.0, &features.0);
        } else {
            // Without clustering every object is sealed immediately as a
            // singleton cluster.
            let record = self.record_for(
                obj.object_id,
                vec![MemberRef {
                    object: obj.object_id,
                    frame: obj.frame_id,
                }],
            );
            self.index.insert(record);
            self.clusters += 1;
        }
    }

    /// Builds the index record for a finished cluster and remembers its
    /// centroid observation for query-time verification.
    fn record_for(&mut self, representative: ObjectId, members: Vec<MemberRef>) -> ClusterRecord {
        let classes = self
            .epoch
            .top_k
            .get(&representative)
            .cloned()
            .unwrap_or_default();
        let start = members.iter().map(|m| m.frame.0).min().unwrap_or(0) as f64 / self.fps as f64;
        let end = members.iter().map(|m| m.frame.0).max().unwrap_or(0) as f64 / self.fps as f64;
        let centroid_frame = self.epoch.observations[&representative].frame_id;
        self.centroids.insert(
            representative,
            self.epoch.observations[&representative].clone(),
        );
        let key = ClusterKey::new(self.stream, self.next_cluster_key);
        self.next_cluster_key += 1;
        ClusterRecord {
            key,
            centroid_object: representative,
            centroid_frame,
            top_k_classes: classes,
            members,
            start_secs: start,
            end_secs: end,
        }
    }

    /// Seals the current epoch's clusters into the index and starts a fresh
    /// epoch. The streaming driver calls this when its model changes; both
    /// drivers call it (via [`finish`](Self::finish)) at the end of input.
    pub fn seal_epoch(&mut self) {
        let finished = std::mem::replace(&mut self.epoch, Epoch::new(&self.params));
        let Epoch {
            clusterer,
            top_k,
            observations,
        } = finished;
        // Re-attach the sealed epoch's caches so `record_for` can read them
        // while records are written; the fresh epoch starts empty below.
        self.epoch.top_k = top_k;
        self.epoch.observations = observations;
        if self.params.enable_clustering {
            let (clusters, _stats) = clusterer.finish();
            for cluster in clusters {
                let representative = ObjectId(cluster.representative().item);
                let members: Vec<MemberRef> = cluster
                    .members
                    .iter()
                    .map(|m| MemberRef {
                        object: ObjectId(m.item),
                        frame: FrameId(m.tag),
                    })
                    .collect();
                let record = self.record_for(representative, members);
                self.index.insert(record);
                self.clusters += 1;
            }
        }
        self.epoch.top_k = HashMap::new();
        self.epoch.observations = HashMap::new();
        self.epochs_sealed += 1;
    }

    /// Seals the live epoch, then drains every record sealed so far into a
    /// standalone index — the unit the segmented ingest driver persists as
    /// one immutable time-partitioned segment (see
    /// [`SegmentedIngest`](crate::segment_ingest::SegmentedIngest)).
    ///
    /// Cluster keys keep counting monotonically across drains, so the
    /// drained indexes of one pipeline are key-disjoint by construction and
    /// merging them reproduces the index an undrained run of the same seal
    /// schedule would have built. Centroid observations and counters stay
    /// with the pipeline (cumulative), so [`finish`](Self::finish) still
    /// reports whole-stream stats and the full centroid map.
    pub fn seal_segment(&mut self) -> TopKIndex {
        self.seal_epoch();
        std::mem::take(&mut self.index)
    }

    /// Seals the live epoch and returns everything the pipeline produced,
    /// consuming it.
    ///
    /// If [`seal_segment`](Self::seal_segment) was used to drain records
    /// along the way, the returned index holds only the records sealed
    /// since the last drain; the centroid map and counters always cover the
    /// whole run.
    pub fn finish(mut self) -> PipelineOutput {
        self.seal_epoch();
        let stats = self.stats();
        PipelineOutput {
            index: self.index,
            centroids: self.centroids,
            gpu_cost: self.gpu_cost,
            stats,
            params: self.params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::IngestCnn;
    use focus_cnn::ModelSpec;
    use focus_video::profile::profile_by_name;
    use focus_video::VideoDataset;

    fn run_pipeline(params: IngestParams) -> PipelineOutput {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 60.0);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let mut pipeline = FramePipeline::new(profile.stream_id, profile.fps, params);
        for frame in &dataset.frames {
            pipeline.push_frame(frame, model.classifier.as_ref());
        }
        pipeline.finish()
    }

    #[test]
    fn pipeline_indexes_every_object_exactly_once() {
        let output = run_pipeline(IngestParams::default());
        let indexed: usize = output.index.clusters().map(|c| c.len()).sum();
        assert_eq!(indexed, output.stats.objects);
        assert_eq!(output.stats.clusters, output.index.len());
        assert_eq!(output.stats.epochs_sealed, 1);
        for record in output.index.clusters() {
            assert!(output.centroids.contains_key(&record.centroid_object));
        }
    }

    #[test]
    fn observer_sees_every_motion_object_in_order() {
        let profile = profile_by_name("lausanne").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 45.0);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_2());
        let mut pipeline =
            FramePipeline::new(profile.stream_id, profile.fps, IngestParams::default());
        let mut seen = Vec::new();
        for frame in &dataset.frames {
            pipeline.push_frame_observed(frame, model.classifier.as_ref(), |obj, n| {
                seen.push((obj.object_id, n));
            });
        }
        assert_eq!(seen.len(), pipeline.stats().objects);
        for (i, (_, n)) in seen.iter().enumerate() {
            assert_eq!(*n, i + 1, "observer count must be the running total");
        }
    }

    #[test]
    fn sealing_between_epochs_keeps_cluster_keys_unique() {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 40.0);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let mut pipeline =
            FramePipeline::new(profile.stream_id, profile.fps, IngestParams::default());
        let half = dataset.frames.len() / 2;
        for frame in &dataset.frames[..half] {
            pipeline.push_frame(frame, model.classifier.as_ref());
        }
        pipeline.seal_epoch();
        for frame in &dataset.frames[half..] {
            pipeline.push_frame(frame, model.classifier.as_ref());
        }
        let output = pipeline.finish();
        assert_eq!(output.stats.epochs_sealed, 2);
        let mut keys: Vec<_> = output.index.clusters().map(|r| r.key).collect();
        let total = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(
            keys.len(),
            total,
            "cluster keys must be unique across epochs"
        );
        let indexed: usize = output.index.clusters().map(|c| c.len()).sum();
        assert_eq!(indexed, output.stats.objects);
    }

    #[test]
    fn draining_segments_is_equivalent_to_sealing_in_place() {
        let profile = profile_by_name("auburn_c").unwrap();
        let dataset = VideoDataset::generate(profile.clone(), 40.0);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let half = dataset.frames.len() / 2;

        // Reference: seal the epoch in place, keep accumulating.
        let mut sealed =
            FramePipeline::new(profile.stream_id, profile.fps, IngestParams::default());
        for frame in &dataset.frames[..half] {
            sealed.push_frame(frame, model.classifier.as_ref());
        }
        sealed.seal_epoch();
        for frame in &dataset.frames[half..] {
            sealed.push_frame(frame, model.classifier.as_ref());
        }
        let sealed = sealed.finish();

        // Drained: same schedule, but the first seal drains a segment.
        let mut drained =
            FramePipeline::new(profile.stream_id, profile.fps, IngestParams::default());
        for frame in &dataset.frames[..half] {
            drained.push_frame(frame, model.classifier.as_ref());
        }
        let part1 = drained.seal_segment();
        for frame in &dataset.frames[half..] {
            drained.push_frame(frame, model.classifier.as_ref());
        }
        let drained = drained.finish();

        let mut merged = part1;
        assert_eq!(merged.merge_from(&drained.index), 0);
        assert_eq!(
            focus_index::persist::to_json(&merged).unwrap(),
            focus_index::persist::to_json(&sealed.index).unwrap()
        );
        // Stats and centroids are cumulative despite the drain.
        assert_eq!(drained.stats, sealed.stats);
        assert_eq!(drained.centroids.len(), sealed.centroids.len());
        for record in merged.clusters() {
            assert!(drained.centroids.contains_key(&record.centroid_object));
        }
    }

    #[test]
    fn disabling_clustering_seals_singletons_immediately() {
        let output = run_pipeline(IngestParams {
            enable_clustering: false,
            ..IngestParams::default()
        });
        assert_eq!(output.stats.clusters, output.stats.objects);
        for record in output.index.clusters() {
            assert_eq!(record.len(), 1);
        }
    }

    #[test]
    fn replaying_the_same_stream_is_deterministic() {
        let a = run_pipeline(IngestParams::default());
        let b = run_pipeline(IngestParams::default());
        assert_eq!(
            a.gpu_cost.seconds().to_bits(),
            b.gpu_cost.seconds().to_bits()
        );
        assert_eq!(a.stats, b.stats);
        assert_eq!(
            focus_index::persist::to_json(&a.index).unwrap(),
            focus_index::persist::to_json(&b.index).unwrap()
        );
    }
}
