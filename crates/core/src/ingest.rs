//! The batch ingest driver: replays a recorded dataset through the shared
//! [`FramePipeline`] (IT1–IT4 in Figure 4 of the paper).
//!
//! The per-frame work itself — motion filtering, pixel differencing,
//! cheap-CNN classification, incremental clustering and index-record
//! emission — lives in [`crate::pipeline`]; this module owns the batch
//! driver ([`IngestEngine`]), the ingest model handle ([`IngestCnn`]) and
//! the output bookkeeping ([`IngestOutput`]). The live, frame-by-frame
//! driver is [`StreamWorker`](crate::worker::StreamWorker); the multi-stream
//! parallel driver is [`ShardedIngest`](crate::shard::ShardedIngest).

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use focus_cnn::{
    CheapCnn, Classifier, GpuCost, GroundTruthCnn, ModelSpec, SpecializedCnn, OTHER_CLASS,
};
use focus_index::TopKIndex;
use focus_runtime::GpuMeter;
use focus_video::{ClassId, ObjectId, ObjectObservation, VideoDataset};

use crate::pipeline::{FramePipeline, PipelineOutput};

/// Ingest-time parameters chosen by Focus's parameter selection (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestParams {
    /// Number of top classes from the ingest CNN stored per cluster.
    pub k: usize,
    /// Clustering distance threshold `T`.
    pub cluster_threshold: f32,
    /// Cap `M` on concurrently active clusters.
    pub max_active_clusters: usize,
    /// Whether pixel differencing between adjacent frames is applied.
    pub pixel_differencing: bool,
    /// Whether ingest-time clustering is applied at all; when disabled every
    /// object becomes its own cluster (used by the Figure-8 ablation).
    pub enable_clustering: bool,
}

impl Default for IngestParams {
    fn default() -> Self {
        Self {
            k: 4,
            cluster_threshold: 1.5,
            max_active_clusters: 512,
            pixel_differencing: true,
            enable_clustering: true,
        }
    }
}

/// A compact, serializable description of the chosen ingest CNN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IngestModelDescriptor {
    /// The ground-truth model itself (used by the Ingest-all baseline).
    GroundTruth,
    /// A generic compressed model.
    Generic {
        /// The model spec.
        spec: ModelSpec,
    },
    /// A per-stream specialized model.
    Specialized {
        /// Display name of the trained model.
        name: String,
        /// Number of specialized classes.
        ls: usize,
        /// Cheapness factor vs the ground truth.
        cheapness: f64,
    },
}

impl IngestModelDescriptor {
    /// Human-readable name.
    pub fn display_name(&self) -> String {
        match self {
            IngestModelDescriptor::GroundTruth => "ResNet152".to_string(),
            IngestModelDescriptor::Generic { spec } => spec.display_name(),
            IngestModelDescriptor::Specialized { name, .. } => name.clone(),
        }
    }

    /// Whether the descriptor refers to a specialized model.
    pub fn is_specialized(&self) -> bool {
        matches!(self, IngestModelDescriptor::Specialized { .. })
    }
}

/// The ingest CNN handle: the classifier plus the metadata the query path
/// needs (specialized class set for OTHER handling).
#[derive(Clone)]
pub struct IngestCnn {
    /// The classifier used at ingest time.
    pub classifier: Arc<dyn Classifier>,
    /// Serializable description of the model.
    pub descriptor: IngestModelDescriptor,
    /// For specialized models, the classes the model was specialized for;
    /// queries for any other class are routed through the OTHER class.
    pub specialized_classes: Option<Vec<ClassId>>,
}

impl std::fmt::Debug for IngestCnn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestCnn")
            .field("descriptor", &self.descriptor)
            .field("cheapness", &self.classifier.cheapness_vs_gt())
            .finish()
    }
}

impl IngestCnn {
    /// A generic compressed ingest model.
    pub fn generic(spec: ModelSpec) -> Self {
        Self {
            classifier: Arc::new(CheapCnn::from_spec(spec)),
            descriptor: IngestModelDescriptor::Generic { spec },
            specialized_classes: None,
        }
    }

    /// A specialized ingest model.
    pub fn specialized(model: SpecializedCnn) -> Self {
        let descriptor = IngestModelDescriptor::Specialized {
            name: model.name().to_string(),
            ls: model.ls(),
            cheapness: model.cheapness_vs_gt(),
        };
        let classes = model.specialized_classes().to_vec();
        Self {
            classifier: Arc::new(model),
            descriptor,
            specialized_classes: Some(classes),
        }
    }

    /// The ground-truth CNN used as an "ingest model" (the Ingest-all
    /// baseline indexes with the GT-CNN directly).
    pub fn ground_truth(gt: GroundTruthCnn) -> Self {
        Self {
            classifier: Arc::new(gt),
            descriptor: IngestModelDescriptor::GroundTruth,
            specialized_classes: None,
        }
    }

    /// The class to look up in the index when the user queries for `class`:
    /// specialized models map un-specialized classes to OTHER (§4.3).
    pub fn effective_query_class(&self, class: ClassId) -> ClassId {
        match &self.specialized_classes {
            Some(classes) if !classes.contains(&class) => OTHER_CLASS,
            _ => class,
        }
    }

    /// GPU cost of one inference of this model.
    pub fn cost_per_inference(&self) -> GpuCost {
        self.classifier.cost_per_inference()
    }
}

/// The output of ingesting one stream: the top-K index plus the bookkeeping
/// the query path and the evaluation need.
#[derive(Debug, Clone)]
pub struct IngestOutput {
    /// The top-K index produced by ingest.
    pub index: TopKIndex,
    /// The centroid (representative) observation of every cluster, keyed by
    /// object id; these are the only objects the GT-CNN touches at query
    /// time.
    pub centroids: HashMap<ObjectId, ObjectObservation>,
    /// The ingest model used.
    pub model: IngestCnn,
    /// Parameters used.
    pub params: IngestParams,
    /// Total GPU time spent by the ingest CNN.
    pub gpu_cost: GpuCost,
    /// Total frames in the dataset.
    pub frames_total: usize,
    /// Frames that passed motion filtering.
    pub frames_with_motion: usize,
    /// Total object observations in motion frames.
    pub objects_total: usize,
    /// Observations actually classified by the ingest CNN (after pixel
    /// differencing).
    pub objects_classified: usize,
    /// Number of clusters written to the index.
    pub clusters: usize,
}

impl IngestOutput {
    /// Assembles the output of a finished pipeline run for `model`.
    pub fn from_pipeline(output: PipelineOutput, model: IngestCnn) -> Self {
        let PipelineOutput {
            index,
            centroids,
            gpu_cost,
            stats,
            params,
        } = output;
        Self {
            index,
            centroids,
            model,
            params,
            gpu_cost,
            frames_total: stats.frames,
            frames_with_motion: stats.frames_with_motion,
            objects_total: stats.objects,
            objects_classified: stats.objects_classified,
            clusters: stats.clusters,
        }
    }

    /// Average number of objects per cluster (the redundancy the clustering
    /// step eliminates at query time).
    pub fn mean_cluster_size(&self) -> f64 {
        if self.clusters == 0 {
            0.0
        } else {
            self.objects_total as f64 / self.clusters as f64
        }
    }

    /// Fraction of observations whose ingest CNN inference was skipped by
    /// pixel differencing.
    pub fn pixel_diff_savings(&self) -> f64 {
        if self.objects_total == 0 {
            0.0
        } else {
            1.0 - self.objects_classified as f64 / self.objects_total as f64
        }
    }
}

/// The ingest engine: applies the ingest pipeline of Figure 4 to a recorded
/// dataset (or, frame by frame, to a live stream).
#[derive(Debug, Clone)]
pub struct IngestEngine {
    model: IngestCnn,
    params: IngestParams,
}

impl IngestEngine {
    /// Creates an engine for the given model and parameters.
    pub fn new(model: IngestCnn, params: IngestParams) -> Self {
        Self { model, params }
    }

    /// The model this engine ingests with.
    pub fn model(&self) -> &IngestCnn {
        &self.model
    }

    /// The parameters this engine ingests with.
    pub fn params(&self) -> IngestParams {
        self.params
    }

    /// Ingests a recorded dataset, producing the top-K index and cost
    /// accounting. GPU cost is charged to `meter` under the phase
    /// `"ingest"`.
    pub fn ingest(&self, dataset: &VideoDataset, meter: &GpuMeter) -> IngestOutput {
        let mut pipeline =
            FramePipeline::new(dataset.profile.stream_id, dataset.profile.fps, self.params);
        let classifier = self.model.classifier.as_ref();
        for frame in &dataset.frames {
            pipeline.push_frame(frame, classifier);
        }
        let output = pipeline.finish();
        // One charge per run: the pipeline accrues cost lock-free, so the
        // batch hot loop never touches the meter's mutex.
        meter.charge("ingest", output.gpu_cost);
        IngestOutput::from_pipeline(output, self.model.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_index::QueryFilter;
    use focus_video::profile::profile_by_name;

    fn small_dataset() -> VideoDataset {
        VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 90.0)
    }

    fn specialized_model(dataset: &VideoDataset, ls: usize) -> IngestCnn {
        let gt = GroundTruthCnn::resnet152();
        let sample: Vec<_> = dataset
            .objects()
            .map(|o| (o.clone(), gt.classify_top1(o)))
            .collect();
        IngestCnn::specialized(
            SpecializedCnn::train(
                &dataset.profile.name,
                focus_cnn::specialize::SpecializationLevel::Medium,
                &sample,
                ls,
            )
            .unwrap(),
        )
    }

    #[test]
    fn ingest_produces_consistent_index() {
        let ds = small_dataset();
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let engine = IngestEngine::new(model, IngestParams::default());
        let meter = GpuMeter::new();
        let out = engine.ingest(&ds, &meter);
        assert_eq!(out.frames_total, ds.frames.len());
        assert!(out.frames_with_motion <= out.frames_total);
        assert_eq!(out.objects_total, ds.object_count());
        assert!(out.objects_classified <= out.objects_total);
        assert!(out.objects_classified > 0);
        assert_eq!(out.clusters, out.index.len());
        assert!(out.clusters > 0);
        // Every object appears in exactly one cluster.
        let indexed: usize = out.index.clusters().map(|c| c.len()).sum();
        assert_eq!(indexed, out.objects_total);
        // GPU cost was charged to the meter.
        assert!((meter.phase("ingest").seconds() - out.gpu_cost.seconds()).abs() < 1e-9);
        // Every cluster's centroid observation is available for query-time
        // classification.
        for record in out.index.clusters() {
            assert!(out.centroids.contains_key(&record.centroid_object));
            assert_eq!(record.top_k_classes.len(), engine.params().k.min(1000));
        }
    }

    #[test]
    fn clustering_reduces_cluster_count() {
        let ds = small_dataset();
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let with = IngestEngine::new(
            model.clone(),
            IngestParams {
                enable_clustering: true,
                ..IngestParams::default()
            },
        )
        .ingest(&ds, &GpuMeter::new());
        let without = IngestEngine::new(
            model,
            IngestParams {
                enable_clustering: false,
                ..IngestParams::default()
            },
        )
        .ingest(&ds, &GpuMeter::new());
        assert!(with.clusters < without.clusters);
        assert_eq!(without.clusters, without.objects_total);
        assert!(with.mean_cluster_size() > 1.5);
        assert!((without.mean_cluster_size() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pixel_differencing_reduces_classified_objects() {
        let ds = small_dataset();
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_2());
        let with = IngestEngine::new(
            model.clone(),
            IngestParams {
                pixel_differencing: true,
                ..IngestParams::default()
            },
        )
        .ingest(&ds, &GpuMeter::new());
        let without = IngestEngine::new(
            model,
            IngestParams {
                pixel_differencing: false,
                ..IngestParams::default()
            },
        )
        .ingest(&ds, &GpuMeter::new());
        assert!(with.objects_classified < without.objects_classified);
        assert_eq!(without.objects_classified, without.objects_total);
        assert!(with.pixel_diff_savings() > 0.1);
        assert_eq!(without.pixel_diff_savings(), 0.0);
        assert!(with.gpu_cost < without.gpu_cost);
    }

    #[test]
    fn cheaper_models_cost_less_to_ingest() {
        let ds = small_dataset();
        let expensive = IngestEngine::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams::default(),
        )
        .ingest(&ds, &GpuMeter::new());
        let cheap = IngestEngine::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_3()),
            IngestParams::default(),
        )
        .ingest(&ds, &GpuMeter::new());
        assert!(cheap.gpu_cost < expensive.gpu_cost);
    }

    #[test]
    fn ground_truth_ingest_is_most_expensive() {
        let ds = small_dataset();
        let gt = IngestEngine::new(
            IngestCnn::ground_truth(GroundTruthCnn::resnet152()),
            IngestParams {
                k: 1,
                enable_clustering: false,
                pixel_differencing: false,
                ..IngestParams::default()
            },
        )
        .ingest(&ds, &GpuMeter::new());
        let cheap = IngestEngine::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_3()),
            IngestParams::default(),
        )
        .ingest(&ds, &GpuMeter::new());
        assert!(gt.gpu_cost.seconds() > 10.0 * cheap.gpu_cost.seconds());
    }

    #[test]
    fn index_lookup_finds_dominant_class_clusters() {
        let ds = small_dataset();
        let dominant = ds.dominant_classes(1)[0];
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let out = IngestEngine::new(
            model,
            IngestParams {
                k: 20,
                ..IngestParams::default()
            },
        )
        .ingest(&ds, &GpuMeter::new());
        let matches = out.index.lookup(dominant, &QueryFilter::any());
        assert!(!matches.is_empty());
    }

    #[test]
    fn specialized_ingest_maps_rare_classes_to_other() {
        let ds = small_dataset();
        let model = specialized_model(&ds, 8);
        assert!(model.descriptor.is_specialized());
        let rare = ClassId(999);
        assert_eq!(model.effective_query_class(rare), OTHER_CLASS);
        let dominant = ds.dominant_classes(1)[0];
        assert_eq!(model.effective_query_class(dominant), dominant);
        let out = IngestEngine::new(
            model,
            IngestParams {
                k: 2,
                ..IngestParams::default()
            },
        )
        .ingest(&ds, &GpuMeter::new());
        // Clusters of rare-class objects are indexed under OTHER.
        let other_clusters = out.index.lookup(OTHER_CLASS, &QueryFilter::any());
        assert!(!other_clusters.is_empty());
    }

    #[test]
    fn descriptors_are_descriptive() {
        let generic = IngestCnn::generic(ModelSpec::cheap_cnn_2());
        assert!(generic.descriptor.display_name().contains("ResNet18"));
        assert!(!generic.descriptor.is_specialized());
        let gt = IngestCnn::ground_truth(GroundTruthCnn::resnet152());
        assert_eq!(gt.descriptor.display_name(), "ResNet152");
        assert_eq!(gt.effective_query_class(ClassId(5)), ClassId(5));
        let ds = small_dataset();
        let spec = specialized_model(&ds, 10);
        assert!(spec.descriptor.display_name().contains("Specialized"));
        let debug = format!("{spec:?}");
        assert!(debug.contains("cheapness"));
    }

    #[test]
    fn ingest_on_empty_dataset_is_empty() {
        let profile = profile_by_name("bend").unwrap();
        let ds = VideoDataset::from_frames(profile, 0.0, vec![]);
        let out = IngestEngine::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams::default(),
        )
        .ingest(&ds, &GpuMeter::new());
        assert_eq!(out.objects_total, 0);
        assert_eq!(out.clusters, 0);
        assert_eq!(out.gpu_cost.seconds(), 0.0);
        assert_eq!(out.mean_cluster_size(), 0.0);
    }
}
