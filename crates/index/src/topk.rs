//! The top-K inverted index.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use focus_video::{ClassId, FrameId, ObjectId, StreamId};

use crate::cluster_store::{ClusterKey, ClusterRecord};
use crate::query::QueryFilter;
use crate::track::{TrackKey, TrackSketch};

/// A stable reference to the centroid of one matched cluster, as returned by
/// [`TopKIndex::lookup_centroids`].
///
/// The handle is what the query-serving layer caches verdicts under: the
/// `centroid` object id identifies the exact observation the ground-truth
/// CNN would classify, so two queries whose candidate sets overlap can share
/// one inference, and a re-ingested stream (which assigns fresh object ids)
/// can never be served a stale verdict by accident. The `cluster` key links
/// the verdict back to the cluster's members for result assembly.
///
/// # Examples
///
/// ```
/// use focus_index::{CentroidHandle, ClusterKey};
/// use focus_video::{FrameId, ObjectId, StreamId};
///
/// let handle = CentroidHandle {
///     cluster: ClusterKey::new(StreamId(3), 7),
///     centroid: ObjectId(42),
///     centroid_frame: FrameId(9),
/// };
/// assert_eq!(handle.centroid, ObjectId(42));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CentroidHandle {
    /// The matched cluster.
    pub cluster: ClusterKey,
    /// The cluster's representative object — the only member the GT-CNN
    /// classifies, and the key under which its verdict is cached.
    pub centroid: ObjectId,
    /// The frame containing the centroid object.
    pub centroid_frame: FrameId,
}

/// Summary statistics of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct IndexStats {
    /// Number of cluster records stored.
    pub clusters: usize,
    /// Total number of object members across all clusters.
    pub objects: usize,
    /// Number of distinct classes with at least one posting.
    pub classes: usize,
    /// Total number of postings (class → cluster pairs).
    pub postings: usize,
}

/// The top-K index: an inverted mapping from object class to the clusters
/// whose ingest-time top-K contains that class, plus the cluster records
/// themselves.
///
/// Serialization stores only the cluster records and track sketches; the
/// inverted postings are rebuilt on deserialization (they are derived data,
/// and JSON maps require string keys anyway).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "SerializedIndex", into = "SerializedIndex")]
pub struct TopKIndex {
    clusters: HashMap<ClusterKey, ClusterRecord>,
    postings: HashMap<ClassId, Vec<ClusterKey>>,
    sketches: HashMap<TrackKey, TrackSketch>,
}

/// On-disk shape of [`TopKIndex`]: the records plus the per-track sketches
/// (both sorted by key for canonical output; `sketches` defaults to empty
/// so pre-track snapshots still load).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SerializedIndex {
    clusters: Vec<ClusterRecord>,
    #[serde(default)]
    sketches: Vec<TrackSketch>,
}

impl From<SerializedIndex> for TopKIndex {
    fn from(s: SerializedIndex) -> Self {
        let mut index = TopKIndex::new();
        for record in s.clusters {
            index.insert(record);
        }
        for sketch in s.sketches {
            index.insert_sketch(sketch);
        }
        index
    }
}

impl From<TopKIndex> for SerializedIndex {
    fn from(index: TopKIndex) -> Self {
        let mut clusters: Vec<ClusterRecord> = index.clusters.into_values().collect();
        clusters.sort_by_key(|r| r.key);
        let mut sketches: Vec<TrackSketch> = index.sketches.into_values().collect();
        sketches.sort_by_key(|s| s.key);
        SerializedIndex { clusters, sketches }
    }
}

impl TopKIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a cluster record, updating the inverted index.
    ///
    /// Replacing an existing key removes its old postings first, so the
    /// index never accumulates stale entries.
    pub fn insert(&mut self, record: ClusterRecord) {
        if self.clusters.contains_key(&record.key) {
            self.remove(record.key);
        }
        for class in &record.top_k_classes {
            self.postings.entry(*class).or_default().push(record.key);
        }
        self.clusters.insert(record.key, record);
    }

    /// Removes a cluster record and its postings; returns the record if it
    /// existed.
    pub fn remove(&mut self, key: ClusterKey) -> Option<ClusterRecord> {
        let record = self.clusters.remove(&key)?;
        for class in &record.top_k_classes {
            if let Some(list) = self.postings.get_mut(class) {
                list.retain(|k| *k != key);
                if list.is_empty() {
                    self.postings.remove(class);
                }
            }
        }
        Some(record)
    }

    /// Looks up a cluster record by key.
    pub fn get(&self, key: ClusterKey) -> Option<&ClusterRecord> {
        self.clusters.get(&key)
    }

    /// All cluster records, in unspecified order.
    pub fn clusters(&self) -> impl Iterator<Item = &ClusterRecord> {
        self.clusters.values()
    }

    /// Number of clusters stored.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Folds a per-window track sketch into the index, absorbing it into
    /// any sketch already stored for the same track (so re-inserting is a
    /// merge, never a replacement — the union over windows is what
    /// whole-life track predicates evaluate against).
    pub fn insert_sketch(&mut self, sketch: TrackSketch) {
        match self.sketches.get_mut(&sketch.key) {
            Some(existing) => existing.absorb(&sketch),
            None => {
                self.sketches.insert(sketch.key, sketch);
            }
        }
    }

    /// Looks up the sketch of one track.
    pub fn sketch(&self, key: TrackKey) -> Option<&TrackSketch> {
        self.sketches.get(&key)
    }

    /// All track sketches, in unspecified order.
    pub fn sketches(&self) -> impl Iterator<Item = &TrackSketch> {
        self.sketches.values()
    }

    /// Number of tracks with a sketch.
    pub fn sketch_count(&self) -> usize {
        self.sketches.len()
    }

    /// The classes that have at least one posting.
    pub fn indexed_classes(&self) -> Vec<ClassId> {
        let mut classes: Vec<ClassId> = self.postings.keys().copied().collect();
        classes.sort();
        classes
    }

    /// Clusters matching `class` under `filter`, sorted by key for
    /// deterministic iteration order.
    ///
    /// A cluster matches when `class` appears within the first
    /// `filter.kx.unwrap_or(stored K)` entries of its stored ranking and the
    /// camera/time restrictions admit it.
    pub fn lookup(&self, class: ClassId, filter: &QueryFilter) -> Vec<&ClusterRecord> {
        let Some(keys) = self.postings.get(&class) else {
            return Vec::new();
        };
        let mut result: Vec<&ClusterRecord> = keys
            .iter()
            .filter_map(|k| self.clusters.get(k))
            .filter(|r| match filter.kx {
                Some(kx) => r.matches_class(class, kx),
                None => true,
            })
            .filter(|r| filter.admits(r))
            .collect();
        result.sort_by_key(|r| r.key);
        result.dedup_by_key(|r| r.key);
        result
    }

    /// Like [`lookup`](Self::lookup), but returns stable
    /// [`CentroidHandle`]s instead of borrowed records — the shape the
    /// query-serving layer plans with and keys its cross-query verdict
    /// cache by. Handles come back sorted by cluster key, so the plan for a
    /// given `(class, filter)` is deterministic.
    ///
    /// # Examples
    ///
    /// ```
    /// use focus_index::{ClusterKey, ClusterRecord, MemberRef, QueryFilter, TopKIndex};
    /// use focus_video::{ClassId, FrameId, ObjectId, StreamId, TrackId};
    ///
    /// let mut index = TopKIndex::new();
    /// index.insert(ClusterRecord {
    ///     key: ClusterKey::new(StreamId(0), 1),
    ///     centroid_object: ObjectId(10),
    ///     centroid_frame: FrameId(5),
    ///     top_k_classes: vec![ClassId(2), ClassId(4)],
    ///     members: vec![MemberRef { object: ObjectId(10), frame: FrameId(5), track: TrackId(0) }],
    ///     start_secs: 0.0,
    ///     end_secs: 1.0,
    /// });
    ///
    /// let handles = index.lookup_centroids(ClassId(4), &QueryFilter::any());
    /// assert_eq!(handles.len(), 1);
    /// assert_eq!(handles[0].centroid, ObjectId(10));
    /// // Under kx = 1 only the top-ranked class matches.
    /// assert!(index
    ///     .lookup_centroids(ClassId(4), &QueryFilter::any().with_kx(1))
    ///     .is_empty());
    /// ```
    pub fn lookup_centroids(&self, class: ClassId, filter: &QueryFilter) -> Vec<CentroidHandle> {
        self.lookup(class, filter)
            .into_iter()
            .map(|record| CentroidHandle {
                cluster: record.key,
                centroid: record.centroid_object,
                centroid_frame: record.centroid_frame,
            })
            .collect()
    }

    /// Total number of objects (members) that would be returned for `class`
    /// under `filter`, without deduplicating objects shared between clusters
    /// (clusters never share objects in practice).
    pub fn matching_objects(&self, class: ClassId, filter: &QueryFilter) -> usize {
        self.lookup(class, filter).iter().map(|r| r.len()).sum()
    }

    /// Summary statistics.
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            clusters: self.clusters.len(),
            objects: self.clusters.values().map(|c| c.len()).sum(),
            classes: self.postings.len(),
            postings: self.postings.values().map(|v| v.len()).sum(),
        }
    }

    /// The streams that contributed at least one cluster.
    pub fn streams(&self) -> Vec<StreamId> {
        let mut streams: Vec<StreamId> = self.clusters.keys().map(|k| k.stream).collect();
        streams.sort();
        streams.dedup();
        streams
    }

    /// Merges another index into this one (used to combine per-stream ingest
    /// outputs into a multi-camera index), returning the number of records
    /// that replaced an existing record with the same key.
    ///
    /// Per-stream ingest outputs are key-disjoint by construction (a
    /// [`ClusterKey`] embeds its stream), so callers merging shard outputs
    /// can assert the returned collision count is zero.
    pub fn merge(&mut self, other: TopKIndex) -> usize {
        let mut replaced = 0;
        for (_, record) in other.clusters {
            if self.clusters.contains_key(&record.key) {
                replaced += 1;
            }
            self.insert(record);
        }
        for (_, sketch) in other.sketches {
            self.insert_sketch(sketch);
        }
        replaced
    }

    /// Like [`merge`](Self::merge), but borrows the other index, cloning
    /// only its cluster records (the inverted postings are rebuilt here, so
    /// copying them — as `other.clone()` + `merge` would — is wasted work).
    pub fn merge_from(&mut self, other: &TopKIndex) -> usize {
        let mut replaced = 0;
        for record in other.clusters.values() {
            if self.clusters.contains_key(&record.key) {
                replaced += 1;
            }
            self.insert(record.clone());
        }
        for sketch in other.sketches.values() {
            self.insert_sketch(sketch.clone());
        }
        replaced
    }

    /// Builds one index out of per-shard ingest outputs.
    ///
    /// Shards are merged in iteration order; because per-stream keys are
    /// disjoint the result is independent of shard scheduling, which is what
    /// makes parallel sharded ingest byte-identical to a serial run.
    ///
    /// # Panics
    ///
    /// Panics if two shards contain a record with the same key (meaning two
    /// shards ingested the same stream).
    pub fn from_shards(shards: impl IntoIterator<Item = TopKIndex>) -> TopKIndex {
        let mut merged = TopKIndex::new();
        for shard in shards {
            let replaced = merged.merge(shard);
            assert_eq!(
                replaced, 0,
                "shard outputs must be key-disjoint (one shard per stream)"
            );
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_store::MemberRef;
    use focus_video::{FrameId, ObjectId, TrackId};

    fn record(
        stream: u32,
        local: u64,
        classes: &[u16],
        members: usize,
        start: f64,
    ) -> ClusterRecord {
        ClusterRecord {
            key: ClusterKey::new(StreamId(stream), local),
            centroid_object: ObjectId(local * 1000),
            centroid_frame: FrameId(local * 10),
            top_k_classes: classes.iter().map(|c| ClassId(*c)).collect(),
            members: (0..members)
                .map(|i| MemberRef {
                    object: ObjectId(local * 1000 + i as u64),
                    frame: FrameId(local * 10 + i as u64),
                    track: TrackId(local),
                })
                .collect(),
            start_secs: start,
            end_secs: start + 1.0,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut idx = TopKIndex::new();
        idx.insert(record(0, 1, &[0, 2, 5], 3, 0.0));
        idx.insert(record(0, 2, &[2, 7], 2, 5.0));
        idx.insert(record(1, 3, &[0], 4, 0.0));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.lookup(ClassId(0), &QueryFilter::any()).len(), 2);
        assert_eq!(idx.lookup(ClassId(2), &QueryFilter::any()).len(), 2);
        assert_eq!(idx.lookup(ClassId(7), &QueryFilter::any()).len(), 1);
        assert!(idx.lookup(ClassId(99), &QueryFilter::any()).is_empty());
    }

    #[test]
    fn lookup_respects_stream_and_time_filters() {
        let mut idx = TopKIndex::new();
        idx.insert(record(0, 1, &[0], 3, 0.0));
        idx.insert(record(1, 2, &[0], 2, 100.0));
        let only_s1 = QueryFilter::for_stream(StreamId(1));
        let found = idx.lookup(ClassId(0), &only_s1);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].key.stream, StreamId(1));
        let early = QueryFilter::any().with_time_range(0.0, 10.0);
        assert_eq!(idx.lookup(ClassId(0), &early).len(), 1);
    }

    #[test]
    fn lookup_respects_dynamic_kx() {
        let mut idx = TopKIndex::new();
        idx.insert(record(0, 1, &[3, 0, 9], 3, 0.0));
        // Class 0 is at rank 2; with kx = 1 it must not match.
        assert_eq!(
            idx.lookup(ClassId(0), &QueryFilter::any().with_kx(1)).len(),
            0
        );
        assert_eq!(
            idx.lookup(ClassId(0), &QueryFilter::any().with_kx(2)).len(),
            1
        );
        assert_eq!(idx.lookup(ClassId(0), &QueryFilter::any()).len(), 1);
    }

    #[test]
    fn matching_objects_counts_members() {
        let mut idx = TopKIndex::new();
        idx.insert(record(0, 1, &[0], 3, 0.0));
        idx.insert(record(0, 2, &[0], 5, 0.0));
        assert_eq!(idx.matching_objects(ClassId(0), &QueryFilter::any()), 8);
        assert_eq!(idx.matching_objects(ClassId(1), &QueryFilter::any()), 0);
    }

    #[test]
    fn reinsert_replaces_postings() {
        let mut idx = TopKIndex::new();
        idx.insert(record(0, 1, &[0, 1], 3, 0.0));
        idx.insert(record(0, 1, &[2], 3, 0.0));
        assert_eq!(idx.len(), 1);
        assert!(idx.lookup(ClassId(0), &QueryFilter::any()).is_empty());
        assert!(idx.lookup(ClassId(1), &QueryFilter::any()).is_empty());
        assert_eq!(idx.lookup(ClassId(2), &QueryFilter::any()).len(), 1);
        let stats = idx.stats();
        assert_eq!(stats.postings, 1);
        assert_eq!(stats.classes, 1);
    }

    #[test]
    fn remove_cleans_postings() {
        let mut idx = TopKIndex::new();
        idx.insert(record(0, 1, &[0, 1], 3, 0.0));
        let removed = idx.remove(ClusterKey::new(StreamId(0), 1));
        assert!(removed.is_some());
        assert!(idx.is_empty());
        assert!(idx.indexed_classes().is_empty());
        assert!(idx.remove(ClusterKey::new(StreamId(0), 1)).is_none());
    }

    #[test]
    fn stats_and_streams() {
        let mut idx = TopKIndex::new();
        idx.insert(record(0, 1, &[0, 2], 3, 0.0));
        idx.insert(record(1, 2, &[2], 2, 0.0));
        let stats = idx.stats();
        assert_eq!(stats.clusters, 2);
        assert_eq!(stats.objects, 5);
        assert_eq!(stats.classes, 2);
        assert_eq!(stats.postings, 3);
        assert_eq!(idx.streams(), vec![StreamId(0), StreamId(1)]);
        assert_eq!(idx.indexed_classes(), vec![ClassId(0), ClassId(2)]);
    }

    #[test]
    fn merge_combines_indexes() {
        let mut a = TopKIndex::new();
        a.insert(record(0, 1, &[0], 3, 0.0));
        let mut b = TopKIndex::new();
        b.insert(record(1, 1, &[0], 2, 0.0));
        assert_eq!(a.merge(b), 0);
        assert_eq!(a.len(), 2);
        assert_eq!(a.lookup(ClassId(0), &QueryFilter::any()).len(), 2);
    }

    #[test]
    fn merge_reports_key_collisions() {
        let mut a = TopKIndex::new();
        a.insert(record(0, 1, &[0], 3, 0.0));
        let mut b = TopKIndex::new();
        b.insert(record(0, 1, &[2], 2, 0.0));
        b.insert(record(0, 2, &[2], 2, 0.0));
        assert_eq!(a.merge(b), 1);
        assert_eq!(a.len(), 2);
        // The colliding record replaced the original, postings included.
        assert!(a.lookup(ClassId(0), &QueryFilter::any()).is_empty());
        assert_eq!(a.lookup(ClassId(2), &QueryFilter::any()).len(), 2);
    }

    #[test]
    fn merge_from_borrows_and_matches_owning_merge() {
        let mut owned = TopKIndex::new();
        owned.insert(record(0, 1, &[0], 3, 0.0));
        let mut borrowed = owned.clone();
        let mut other = TopKIndex::new();
        other.insert(record(1, 1, &[0, 2], 2, 5.0));
        other.insert(record(0, 1, &[7], 1, 9.0));
        assert_eq!(borrowed.merge_from(&other), 1);
        assert_eq!(owned.merge(other), 1);
        assert_eq!(owned.stats(), borrowed.stats());
        for record in owned.clusters() {
            assert_eq!(borrowed.get(record.key), Some(record));
        }
    }

    #[test]
    fn from_shards_merges_disjoint_streams() {
        let mut a = TopKIndex::new();
        a.insert(record(0, 0, &[0], 1, 0.0));
        let mut b = TopKIndex::new();
        b.insert(record(1, 0, &[0], 1, 0.0));
        let merged = TopKIndex::from_shards([a, b]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.streams(), vec![StreamId(0), StreamId(1)]);
    }

    #[test]
    #[should_panic(expected = "key-disjoint")]
    fn from_shards_rejects_overlapping_streams() {
        let mut a = TopKIndex::new();
        a.insert(record(0, 0, &[0], 1, 0.0));
        let mut b = TopKIndex::new();
        b.insert(record(0, 0, &[0], 1, 0.0));
        let _ = TopKIndex::from_shards([a, b]);
    }

    #[test]
    fn lookup_centroids_mirrors_lookup() {
        let mut idx = TopKIndex::new();
        idx.insert(record(0, 2, &[0, 3], 2, 5.0));
        idx.insert(record(0, 1, &[0], 3, 0.0));
        idx.insert(record(1, 9, &[7], 1, 0.0));
        let handles = idx.lookup_centroids(ClassId(0), &QueryFilter::any());
        let records = idx.lookup(ClassId(0), &QueryFilter::any());
        assert_eq!(handles.len(), records.len());
        for (handle, record) in handles.iter().zip(records.iter()) {
            assert_eq!(handle.cluster, record.key);
            assert_eq!(handle.centroid, record.centroid_object);
            assert_eq!(handle.centroid_frame, record.centroid_frame);
        }
        // Sorted by cluster key, like lookup.
        assert!(handles.windows(2).all(|w| w[0].cluster < w[1].cluster));
        // Filters apply identically.
        let filtered =
            idx.lookup_centroids(ClassId(0), &QueryFilter::any().with_time_range(0.0, 1.0));
        assert_eq!(filtered.len(), 1);
        assert!(idx
            .lookup_centroids(ClassId(99), &QueryFilter::any())
            .is_empty());
    }

    #[test]
    fn lookup_order_is_deterministic() {
        let mut idx = TopKIndex::new();
        for local in (0..20).rev() {
            idx.insert(record(0, local, &[0], 1, local as f64));
        }
        let keys: Vec<ClusterKey> = idx
            .lookup(ClassId(0), &QueryFilter::any())
            .iter()
            .map(|r| r.key)
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn insert_sketch_absorbs_same_track_windows() {
        use crate::track::{TrackKey, TrackSketch};
        let mut idx = TopKIndex::new();
        let key = TrackKey::new(StreamId(0), TrackId(4));
        idx.insert_sketch(TrackSketch::first(key, 0.0, 10.0, 10.0));
        idx.insert_sketch(TrackSketch::first(key, 3.0, 300.0, 10.0));
        assert_eq!(idx.sketch_count(), 1);
        let s = idx.sketch(key).unwrap();
        assert_eq!(s.observations, 2);
        assert_eq!(s.t_start, 0.0);
        assert_eq!(s.t_end, 3.0);
        assert_eq!(s.cells.len(), 2);
        assert!(idx.sketch(TrackKey::new(StreamId(1), TrackId(4))).is_none());
    }

    #[test]
    fn sketches_survive_serialization_and_merge() {
        use crate::track::{TrackKey, TrackSketch};
        let mut a = TopKIndex::new();
        a.insert(record(0, 1, &[0], 2, 0.0));
        a.insert_sketch(TrackSketch::first(
            TrackKey::new(StreamId(0), TrackId(1)),
            0.0,
            5.0,
            5.0,
        ));
        let json = crate::persist::to_json(&a).unwrap();
        let restored = crate::persist::from_json(&json).unwrap();
        assert_eq!(restored.sketch_count(), 1);
        assert_eq!(crate::persist::to_json(&restored).unwrap(), json);

        // Merging indexes absorbs same-track sketches instead of replacing.
        let mut b = TopKIndex::new();
        b.insert(record(1, 1, &[0], 1, 5.0));
        b.insert_sketch(TrackSketch::first(
            TrackKey::new(StreamId(0), TrackId(1)),
            2.0,
            200.0,
            5.0,
        ));
        b.insert_sketch(TrackSketch::first(
            TrackKey::new(StreamId(1), TrackId(1)),
            5.0,
            5.0,
            5.0,
        ));
        let mut borrowed = a.clone();
        assert_eq!(borrowed.merge_from(&b), 0);
        assert_eq!(a.merge(b), 0);
        assert_eq!(a.sketch_count(), 2);
        assert_eq!(
            a.sketch(TrackKey::new(StreamId(0), TrackId(1)))
                .unwrap()
                .observations,
            2
        );
        assert_eq!(
            crate::persist::to_json(&a).unwrap(),
            crate::persist::to_json(&borrowed).unwrap()
        );
    }
}
