//! Query filters applied at index-lookup time.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use focus_video::StreamId;

use crate::cluster_store::ClusterRecord;

/// Restricts which clusters an index lookup returns.
///
/// Mirrors the paper's query formulation (§3): a query names an object class
/// and may optionally be restricted to a subset of cameras and a time range.
/// `kx` implements the "dynamically adjusting K at query time" enhancement
/// (§5): only clusters whose stored ranking contains the class within the
/// first `kx` entries match, trading a little recall for lower latency.
///
/// # Examples
///
/// Filters are built fluently from [`QueryFilter::any`]:
///
/// ```
/// use focus_index::QueryFilter;
/// use focus_video::StreamId;
///
/// let filter = QueryFilter::any()
///     .with_streams([StreamId(0), StreamId(2)])
///     .with_time_range(30.0, 90.0)
///     .with_kx(2);
/// assert_eq!(filter.kx, Some(2));
/// assert_eq!(filter.time_range, Some((30.0, 90.0)));
/// ```
///
/// A narrower `kx` only ever shrinks the candidate set:
///
/// ```
/// use focus_index::QueryFilter;
///
/// let wide = QueryFilter::any();
/// let narrow = QueryFilter::any().with_kx(1);
/// assert_eq!(wide.kx, None); // full stored K
/// assert_eq!(narrow.kx, Some(1)); // top-ranked entry only
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct QueryFilter {
    /// If set, only clusters from these streams match.
    pub streams: Option<HashSet<StreamId>>,
    /// If set, only clusters overlapping `[from, to]` (seconds since stream
    /// start) match.
    pub time_range: Option<(f64, f64)>,
    /// If set, the class must appear within the first `kx` stored top-K
    /// entries; otherwise the full stored K is used.
    pub kx: Option<usize>,
}

impl QueryFilter {
    /// A filter that matches everything (the full stored K, all cameras, all
    /// time).
    pub fn any() -> Self {
        Self::default()
    }

    /// Restricts the filter to a single stream.
    pub fn for_stream(stream: StreamId) -> Self {
        Self {
            streams: Some([stream].into_iter().collect()),
            ..Self::default()
        }
    }

    /// Returns a copy restricted to the time interval `[from, to]` seconds.
    pub fn with_time_range(mut self, from_secs: f64, to_secs: f64) -> Self {
        self.time_range = Some((from_secs, to_secs));
        self
    }

    /// Returns a copy restricted to a dynamic `kx`.
    pub fn with_kx(mut self, kx: usize) -> Self {
        self.kx = Some(kx);
        self
    }

    /// Returns a copy restricted to the given streams.
    pub fn with_streams(mut self, streams: impl IntoIterator<Item = StreamId>) -> Self {
        self.streams = Some(streams.into_iter().collect());
        self
    }

    /// Whether `record` passes the camera and time restrictions (class
    /// matching is done by the index, which also applies `kx`).
    pub fn admits(&self, record: &ClusterRecord) -> bool {
        if let Some(streams) = &self.streams {
            if !streams.contains(&record.key.stream) {
                return false;
            }
        }
        if let Some((from, to)) = self.time_range {
            if !record.overlaps_time(from, to) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_store::{ClusterKey, MemberRef};
    use focus_video::{ClassId, FrameId, ObjectId, TrackId};

    fn record(stream: u32, start: f64, end: f64) -> ClusterRecord {
        ClusterRecord {
            key: ClusterKey::new(StreamId(stream), 0),
            centroid_object: ObjectId(0),
            centroid_frame: FrameId(0),
            top_k_classes: vec![ClassId(0)],
            members: vec![MemberRef {
                object: ObjectId(0),
                frame: FrameId(0),
                track: TrackId(0),
            }],
            start_secs: start,
            end_secs: end,
        }
    }

    #[test]
    fn any_filter_admits_everything() {
        let f = QueryFilter::any();
        assert!(f.admits(&record(0, 0.0, 1.0)));
        assert!(f.admits(&record(9, 100.0, 200.0)));
    }

    #[test]
    fn stream_filter() {
        let f = QueryFilter::for_stream(StreamId(1));
        assert!(f.admits(&record(1, 0.0, 1.0)));
        assert!(!f.admits(&record(2, 0.0, 1.0)));
        let multi = QueryFilter::any().with_streams([StreamId(1), StreamId(2)]);
        assert!(multi.admits(&record(2, 0.0, 1.0)));
        assert!(!multi.admits(&record(3, 0.0, 1.0)));
    }

    #[test]
    fn time_filter() {
        let f = QueryFilter::any().with_time_range(10.0, 20.0);
        assert!(f.admits(&record(0, 15.0, 16.0)));
        assert!(f.admits(&record(0, 5.0, 12.0)));
        assert!(!f.admits(&record(0, 21.0, 25.0)));
    }

    #[test]
    fn combined_filters() {
        let f = QueryFilter::for_stream(StreamId(3)).with_time_range(0.0, 10.0);
        assert!(f.admits(&record(3, 1.0, 2.0)));
        assert!(!f.admits(&record(3, 11.0, 12.0)));
        assert!(!f.admits(&record(4, 1.0, 2.0)));
    }

    #[test]
    fn kx_builder() {
        let f = QueryFilter::any().with_kx(2);
        assert_eq!(f.kx, Some(2));
    }
}
