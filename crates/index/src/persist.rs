//! Snapshot persistence for the top-K index.
//!
//! The paper stores the index in MongoDB; here the index lives in memory and
//! can be snapshotted to a JSON file. The format is self-describing and
//! versioned so future layout changes can be detected instead of silently
//! misread.
//!
//! Writes go through [`write_atomic`] (temp file + `fsync` + rename), so a
//! crash mid-write can never truncate an existing snapshot: the target path
//! either still holds the previous complete snapshot or already holds the
//! new one. The same helper backs the segment store's manifest and segment
//! files (see [`crate::segment`]).
//!
//! Every error carries the file path it occurred on (when a file was
//! involved), so a failed load in a store of hundreds of segments points at
//! the exact file instead of a bare "invalid JSON".

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::topk::TopKIndex;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Errors produced by snapshot save/load, each carrying the path of the
/// file involved (absent for in-memory encode/decode).
#[derive(Debug)]
pub enum PersistError {
    /// Underlying file I/O failed.
    Io {
        /// The file being read or written.
        path: PathBuf,
        /// The I/O failure.
        source: io::Error,
    },
    /// The snapshot could not be encoded or decoded.
    Format {
        /// The file being decoded, if the bytes came from a file.
        path: Option<PathBuf>,
        /// The underlying encode/decode failure.
        source: serde_json::Error,
    },
    /// The snapshot was written by an incompatible version of this crate.
    VersionMismatch {
        /// The file carrying the incompatible snapshot, if any.
        path: Option<PathBuf>,
        /// Version found in the snapshot.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
}

impl PersistError {
    /// The file the error occurred on, when one was involved.
    pub fn path(&self) -> Option<&Path> {
        match self {
            PersistError::Io { path, .. } => Some(path),
            PersistError::Format { path, .. } => path.as_deref(),
            PersistError::VersionMismatch { path, .. } => path.as_deref(),
        }
    }

    /// Attaches `path` to an error produced by the in-memory encode/decode
    /// helpers, so file-level entry points report which file failed.
    fn at(self, path: &Path) -> Self {
        match self {
            PersistError::Format { source, .. } => PersistError::Format {
                path: Some(path.to_path_buf()),
                source,
            },
            PersistError::VersionMismatch {
                found, expected, ..
            } => PersistError::VersionMismatch {
                path: Some(path.to_path_buf()),
                found,
                expected,
            },
            io @ PersistError::Io { .. } => io,
        }
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(
                    f,
                    "index snapshot I/O error at `{}`: {source}",
                    path.display()
                )
            }
            PersistError::Format {
                path: Some(path),
                source,
            } => {
                write!(
                    f,
                    "index snapshot format error in `{}`: {source}",
                    path.display()
                )
            }
            PersistError::Format { path: None, source } => {
                write!(f, "index snapshot format error: {source}")
            }
            PersistError::VersionMismatch {
                path,
                found,
                expected,
            } => {
                write!(
                    f,
                    "index snapshot version mismatch{}: found {found}, expected {expected}",
                    match path {
                        Some(p) => format!(" in `{}`", p.display()),
                        None => String::new(),
                    }
                )
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Format { source, .. } => Some(source),
            PersistError::VersionMismatch { .. } => None,
        }
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format {
            path: None,
            source: e,
        }
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct Snapshot {
    version: u32,
    index: TopKIndex,
}

/// Serializes `index` to a JSON string.
pub fn to_json(index: &TopKIndex) -> Result<String, PersistError> {
    let snapshot = Snapshot {
        version: SNAPSHOT_VERSION,
        index: index.clone(),
    };
    Ok(serde_json::to_string(&snapshot)?)
}

/// Deserializes an index from a JSON string produced by [`to_json`].
pub fn from_json(json: &str) -> Result<TopKIndex, PersistError> {
    let snapshot: Snapshot = serde_json::from_str(json)?;
    if snapshot.version != SNAPSHOT_VERSION {
        return Err(PersistError::VersionMismatch {
            path: None,
            found: snapshot.version,
            expected: SNAPSHOT_VERSION,
        });
    }
    Ok(snapshot.index)
}

/// Writes `contents` to `path` atomically: the bytes go to a sibling
/// `<name>.tmp` file first, are flushed to disk, the temp file is renamed
/// over `path`, and the parent directory is fsynced so the rename itself
/// survives power loss. A crash at any point leaves `path` either untouched
/// (still the previous complete file) or fully replaced — never truncated.
///
/// The temp name is deterministic, so two concurrent writers to the same
/// path race on it; callers that share a path must serialize writes (the
/// segment store does, by requiring `&mut self` for all writes).
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    write_atomic_bytes(path, contents.as_bytes())
}

/// Byte-level twin of [`write_atomic`], for non-text payloads (the binary
/// segment format). Same protocol: temp file, fsync, rename, parent-dir
/// fsync; same deterministic temp name, so the same single-writer rule
/// applies.
pub fn write_atomic_bytes(path: &Path, contents: &[u8]) -> io::Result<()> {
    let mut file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_os_string();
    file_name.push(".tmp");
    let tmp = path.with_file_name(file_name);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(contents)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Durability of the rename: the directory entry must reach disk too,
    // or a power cut can resurrect the old file (or lose the new name)
    // after the caller was told the write succeeded.
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    fs::File::open(parent)?.sync_all()?;
    Ok(())
}

/// Writes a snapshot of `index` to `path` atomically (temp file + rename):
/// a crash mid-write can never truncate an existing snapshot at `path`.
pub fn save(index: &TopKIndex, path: &Path) -> Result<(), PersistError> {
    let json = to_json(index)?;
    write_atomic(path, &json).map_err(|source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    Ok(())
}

/// Loads an index snapshot from `path`. Errors name the file: an I/O
/// failure, malformed JSON, or a version mismatch all report `path`.
pub fn load(path: &Path) -> Result<TopKIndex, PersistError> {
    let json = fs::read_to_string(path).map_err(|source| PersistError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    from_json(&json).map_err(|e| e.at(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_store::{ClusterKey, ClusterRecord, MemberRef};
    use crate::query::QueryFilter;
    use focus_video::{ClassId, FrameId, ObjectId, StreamId, TrackId};

    fn sample_index() -> TopKIndex {
        let mut idx = TopKIndex::new();
        for local in 0..5u64 {
            idx.insert(ClusterRecord {
                key: ClusterKey::new(StreamId(0), local),
                centroid_object: ObjectId(local),
                centroid_frame: FrameId(local),
                top_k_classes: vec![ClassId(local as u16), ClassId(0)],
                members: vec![MemberRef {
                    object: ObjectId(local),
                    frame: FrameId(local),
                    track: TrackId(local),
                }],
                start_secs: local as f64,
                end_secs: local as f64 + 1.0,
            });
        }
        idx
    }

    #[test]
    fn json_roundtrip_preserves_lookups() {
        let idx = sample_index();
        let json = to_json(&idx).unwrap();
        let restored = from_json(&json).unwrap();
        assert_eq!(restored.len(), idx.len());
        assert_eq!(
            restored.lookup(ClassId(0), &QueryFilter::any()).len(),
            idx.lookup(ClassId(0), &QueryFilter::any()).len()
        );
        assert_eq!(restored.stats(), idx.stats());
    }

    #[test]
    fn file_roundtrip() {
        let idx = sample_index();
        let dir = std::env::temp_dir().join("focus_index_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.json");
        save(&idx, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored.len(), idx.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_replaces_existing_snapshots() {
        let dir = std::env::temp_dir().join("focus_index_persist_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.json");
        // First save, then overwrite with a bigger index; the temp file must
        // not linger and the final content must be the second snapshot.
        let mut idx = TopKIndex::new();
        idx.insert(ClusterRecord {
            key: ClusterKey::new(StreamId(0), 0),
            centroid_object: ObjectId(0),
            centroid_frame: FrameId(0),
            top_k_classes: vec![ClassId(1)],
            members: vec![MemberRef {
                object: ObjectId(0),
                frame: FrameId(0),
                track: TrackId(0),
            }],
            start_secs: 0.0,
            end_secs: 1.0,
        });
        save(&idx, &path).unwrap();
        let full = sample_index();
        save(&full, &path).unwrap();
        assert!(!path.with_file_name("index.json.tmp").exists());
        assert_eq!(load(&path).unwrap().len(), full.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_detected() {
        let idx = sample_index();
        let json = to_json(&idx).unwrap();
        let tampered = json.replace("\"version\":1", "\"version\":999");
        match from_json(&tampered) {
            Err(PersistError::VersionMismatch {
                path,
                found,
                expected,
            }) => {
                assert_eq!(found, 999);
                assert_eq!(expected, SNAPSHOT_VERSION);
                assert!(path.is_none());
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(
            from_json("{not json"),
            Err(PersistError::Format { path: None, .. })
        ));
    }

    #[test]
    fn file_errors_name_the_file() {
        let missing = Path::new("/nonexistent/focus-index.json");
        let err = load(missing).unwrap_err();
        assert!(matches!(err, PersistError::Io { .. }));
        assert_eq!(err.path(), Some(missing));
        assert!(err.to_string().contains("focus-index.json"));

        // A malformed file reports its path too.
        let dir = std::env::temp_dir().join("focus_index_persist_badfile");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{not json").unwrap();
        let err = load(&bad).unwrap_err();
        assert!(matches!(err, PersistError::Format { path: Some(_), .. }));
        assert_eq!(err.path(), Some(bad.as_path()));
        assert!(err.to_string().contains("bad.json"));
        std::fs::remove_file(&bad).ok();

        let errors = [
            PersistError::Io {
                path: PathBuf::from("/x/y.json"),
                source: io::Error::new(io::ErrorKind::NotFound, "x"),
            },
            PersistError::VersionMismatch {
                path: Some(PathBuf::from("/x/y.json")),
                found: 2,
                expected: 1,
            },
            PersistError::VersionMismatch {
                path: None,
                found: 2,
                expected: 1,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
