//! Snapshot persistence for the top-K index.
//!
//! The paper stores the index in MongoDB; here the index lives in memory and
//! can be snapshotted to a JSON file. The format is self-describing and
//! versioned so future layout changes can be detected instead of silently
//! misread.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::topk::TopKIndex;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Errors produced by snapshot save/load.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The snapshot could not be encoded or decoded.
    Format(serde_json::Error),
    /// The snapshot was written by an incompatible version of this crate.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "index snapshot I/O error: {e}"),
            PersistError::Format(e) => write!(f, "index snapshot format error: {e}"),
            PersistError::VersionMismatch { found, expected } => write!(
                f,
                "index snapshot version mismatch: found {found}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct Snapshot {
    version: u32,
    index: TopKIndex,
}

/// Serializes `index` to a JSON string.
pub fn to_json(index: &TopKIndex) -> Result<String, PersistError> {
    let snapshot = Snapshot {
        version: SNAPSHOT_VERSION,
        index: index.clone(),
    };
    Ok(serde_json::to_string(&snapshot)?)
}

/// Deserializes an index from a JSON string produced by [`to_json`].
pub fn from_json(json: &str) -> Result<TopKIndex, PersistError> {
    let snapshot: Snapshot = serde_json::from_str(json)?;
    if snapshot.version != SNAPSHOT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: snapshot.version,
            expected: SNAPSHOT_VERSION,
        });
    }
    Ok(snapshot.index)
}

/// Writes a snapshot of `index` to `path`.
pub fn save(index: &TopKIndex, path: &Path) -> Result<(), PersistError> {
    let json = to_json(index)?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads an index snapshot from `path`.
pub fn load(path: &Path) -> Result<TopKIndex, PersistError> {
    let json = fs::read_to_string(path)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_store::{ClusterKey, ClusterRecord, MemberRef};
    use crate::query::QueryFilter;
    use focus_video::{ClassId, FrameId, ObjectId, StreamId};

    fn sample_index() -> TopKIndex {
        let mut idx = TopKIndex::new();
        for local in 0..5u64 {
            idx.insert(ClusterRecord {
                key: ClusterKey::new(StreamId(0), local),
                centroid_object: ObjectId(local),
                centroid_frame: FrameId(local),
                top_k_classes: vec![ClassId(local as u16), ClassId(0)],
                members: vec![MemberRef {
                    object: ObjectId(local),
                    frame: FrameId(local),
                }],
                start_secs: local as f64,
                end_secs: local as f64 + 1.0,
            });
        }
        idx
    }

    #[test]
    fn json_roundtrip_preserves_lookups() {
        let idx = sample_index();
        let json = to_json(&idx).unwrap();
        let restored = from_json(&json).unwrap();
        assert_eq!(restored.len(), idx.len());
        assert_eq!(
            restored.lookup(ClassId(0), &QueryFilter::any()).len(),
            idx.lookup(ClassId(0), &QueryFilter::any()).len()
        );
        assert_eq!(restored.stats(), idx.stats());
    }

    #[test]
    fn file_roundtrip() {
        let idx = sample_index();
        let dir = std::env::temp_dir().join("focus_index_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.json");
        save(&idx, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored.len(), idx.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_detected() {
        let idx = sample_index();
        let json = to_json(&idx).unwrap();
        let tampered = json.replace("\"version\":1", "\"version\":999");
        match from_json(&tampered) {
            Err(PersistError::VersionMismatch { found, expected }) => {
                assert_eq!(found, 999);
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(
            from_json("{not json"),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let missing = Path::new("/nonexistent/focus-index.json");
        assert!(matches!(load(missing), Err(PersistError::Io(_))));
        let errors = [
            PersistError::Io(io::Error::new(io::ErrorKind::NotFound, "x")),
            PersistError::VersionMismatch {
                found: 2,
                expected: 1,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
