//! Cluster records: what the top-K index stores per object cluster.

use serde::{Deserialize, Serialize};

use focus_video::{ClassId, FrameId, ObjectId, StreamId, TrackId};

/// Globally unique identifier of a cluster in the index: the stream it was
/// ingested from plus the stream-local cluster number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClusterKey {
    /// The stream (camera) the cluster belongs to.
    pub stream: StreamId,
    /// Cluster number within the stream's ingest run.
    pub local: u64,
}

impl ClusterKey {
    /// Builds a key.
    pub fn new(stream: StreamId, local: u64) -> Self {
        Self { stream, local }
    }
}

/// One object of a cluster: the observation and the frame it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemberRef {
    /// The object observation.
    pub object: ObjectId,
    /// The frame that contains it.
    pub frame: FrameId,
    /// The stream-local track the observation belongs to (qualify with the
    /// cluster key's stream to get a [`crate::track::TrackKey`]). Defaults
    /// to track 0 when absent, e.g. in pre-track snapshots or v1 binary
    /// segments.
    #[serde(default)]
    pub track: TrackId,
}

/// A cluster as stored in the top-K index.
///
/// The record carries everything query-time processing needs: the centroid
/// object (which the ground-truth CNN classifies), the cheap CNN's ranked
/// top-K classes for the cluster (which the inverted index is keyed by), the
/// member objects with their frames (which are returned to the user), and
/// the covered time range (for time-restricted queries).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterRecord {
    /// Unique key of the cluster.
    pub key: ClusterKey,
    /// The representative object; the only member the GT-CNN classifies at
    /// query time.
    pub centroid_object: ObjectId,
    /// Frame that contains the centroid object.
    pub centroid_frame: FrameId,
    /// The cheap ingest CNN's ranked classes for this cluster, most
    /// confident first, truncated at the ingest-time K.
    pub top_k_classes: Vec<ClassId>,
    /// All member objects and their frames (including the centroid).
    pub members: Vec<MemberRef>,
    /// Earliest timestamp covered by the cluster, seconds since stream
    /// start.
    pub start_secs: f64,
    /// Latest timestamp covered by the cluster, seconds since stream start.
    pub end_secs: f64,
}

impl ClusterRecord {
    /// Number of objects in the cluster.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members (should never happen for records
    /// produced by ingest).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The distinct frames covered by this cluster.
    pub fn frames(&self) -> Vec<FrameId> {
        let mut frames: Vec<FrameId> = self.members.iter().map(|m| m.frame).collect();
        frames.sort();
        frames.dedup();
        frames
    }

    /// Rank (1-based) of `class` within the stored top-K classes, if
    /// present.
    pub fn rank_of(&self, class: ClassId) -> Option<usize> {
        self.top_k_classes
            .iter()
            .position(|c| *c == class)
            .map(|p| p + 1)
    }

    /// Whether `class` appears within the first `kx` stored classes.
    pub fn matches_class(&self, class: ClassId, kx: usize) -> bool {
        self.top_k_classes.iter().take(kx).any(|c| *c == class)
    }

    /// Whether the cluster overlaps the closed time interval
    /// `[from_secs, to_secs]`.
    pub fn overlaps_time(&self, from_secs: f64, to_secs: f64) -> bool {
        self.start_secs <= to_secs && self.end_secs >= from_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ClusterRecord {
        ClusterRecord {
            key: ClusterKey::new(StreamId(1), 7),
            centroid_object: ObjectId(100),
            centroid_frame: FrameId(10),
            top_k_classes: vec![ClassId(0), ClassId(2), ClassId(5)],
            members: vec![
                MemberRef {
                    object: ObjectId(100),
                    frame: FrameId(10),
                    track: TrackId(1),
                },
                MemberRef {
                    object: ObjectId(101),
                    frame: FrameId(11),
                    track: TrackId(1),
                },
                MemberRef {
                    object: ObjectId(102),
                    frame: FrameId(11),
                    track: TrackId(2),
                },
            ],
            start_secs: 0.33,
            end_secs: 0.37,
        }
    }

    #[test]
    fn record_accessors() {
        let r = record();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.frames(), vec![FrameId(10), FrameId(11)]);
        assert_eq!(r.rank_of(ClassId(2)), Some(2));
        assert_eq!(r.rank_of(ClassId(9)), None);
    }

    #[test]
    fn matches_class_respects_kx() {
        let r = record();
        assert!(r.matches_class(ClassId(5), 3));
        assert!(!r.matches_class(ClassId(5), 2));
        assert!(r.matches_class(ClassId(0), 1));
        assert!(!r.matches_class(ClassId(9), 3));
    }

    #[test]
    fn time_overlap() {
        let r = record();
        assert!(r.overlaps_time(0.0, 1.0));
        assert!(r.overlaps_time(0.35, 0.36));
        assert!(!r.overlaps_time(1.0, 2.0));
        assert!(!r.overlaps_time(0.0, 0.2));
        // Boundary containment counts as overlap.
        assert!(r.overlaps_time(0.37, 0.5));
    }

    #[test]
    fn cluster_key_ordering() {
        let a = ClusterKey::new(StreamId(0), 5);
        let b = ClusterKey::new(StreamId(1), 0);
        assert!(a < b);
        assert_eq!(a, ClusterKey::new(StreamId(0), 5));
    }
}
