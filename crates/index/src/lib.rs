//! Top-K index substrate (the output of Focus's ingest-time processing).
//!
//! The paper stores, per video stream, a mapping
//!
//! ```text
//! object class → ⟨cluster ID⟩
//! cluster ID   → [centroid object, ⟨objects⟩ in cluster, ⟨frame IDs⟩ of objects]
//! ```
//!
//! in MongoDB (§5). This crate provides the equivalent embedded store: an
//! inverted index from class to cluster records with camera / time-range /
//! dynamic-Kx filtering at lookup time and a serde-based snapshot format for
//! persistence. GPU-time accounting in the paper excludes index I/O, so an
//! in-process store preserves the measured quantities while keeping the
//! system self-contained.
//!
//! Lookups come in two shapes: [`TopKIndex::lookup`] borrows the full
//! cluster records, and [`TopKIndex::lookup_centroids`] returns owned,
//! stable [`CentroidHandle`]s — the form the query-serving layer plans with
//! and keys its cross-query verdict cache by.
//!
//! For corpora too large (or too long-lived) for one monolithic snapshot,
//! the [`segment`] module provides a durable, time-partitioned store:
//! ingest seals immutable checksummed [`segment`] files under a crash-safe
//! [`manifest`], and time/camera-restricted lookups open only the segments
//! whose bounds intersect the filter (see `docs/storage.md` at the
//! workspace root). Segments persist in the binary columnar [`binseg`]
//! format by default (block-granular reads, per-block checksums), with
//! JSON kept as a per-segment migration/debug format.

#![deny(missing_docs)]

pub mod binseg;
pub mod cluster_store;
pub mod manifest;
pub mod persist;
pub mod query;
pub mod segment;
pub mod topk;
pub mod track;

pub use binseg::BinsegError;
pub use cluster_store::{ClusterKey, ClusterRecord, MemberRef};
pub use manifest::{Manifest, SegmentFormat, SegmentMeta};
pub use query::QueryFilter;
pub use segment::{
    GroupedLookup, LruOccupancy, OpenReport, SegmentAccess, SegmentError, SegmentLookup,
    SegmentStore,
};
pub use topk::{CentroidHandle, IndexStats, TopKIndex};
pub use track::{TrackKey, TrackSketch, TrackSketcher, TRACK_CELL_PX};
