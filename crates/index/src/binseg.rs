//! The binary columnar segment format (`seg-*.bin`).
//!
//! JSON segments pay their whole decode cost on every cold load — the
//! ~32× cold/warm cliff `BENCH_segments.json` measured. This format makes
//! cold reads proportional to what a query actually touches:
//!
//! ```text
//! ┌──────────┬───────────────┬────────────────┬──────────┬────────┬─────────┐
//! │ magic    │ record blocks │ postings blocks│ tracks   │ footer │ trailer │
//! │ "FSG2"   │ (≤32 records  │ (one per class,│ block    │        │ (fixed  │
//! │          │  each)        │  delta keys)   │ (v2 only)│        │  28 B)  │
//! └──────────┴───────────────┴────────────────┴──────────┴────────┴─────────┘
//! ```
//!
//! * **Record blocks** hold the cluster records sorted by [`ClusterKey`],
//!   chunked into groups of [`RECORDS_PER_BLOCK`]; keys are delta-encoded
//!   (LEB128 varints, restarting at every block so blocks decode
//!   independently) and floats are stored bit-exact.
//! * **Postings blocks** hold, per class, the sorted keys of every cluster
//!   whose ingest top-K contains that class — the on-disk mirror of
//!   [`TopKIndex`]'s inverted index.
//! * The **tracks block** (version 2) holds the per-track spatio-temporal
//!   [`TrackSketch`]es sorted by [`TrackKey`] — one checksummed block per
//!   segment, read only by trajectory-restricted query planning.
//! * The **footer** is the block index: per record block its key range,
//!   byte range, FNV-1a checksum and record count; per class its postings
//!   block's byte range and checksum; the tracks block's byte range and
//!   checksum; plus the segment's time bounds and stream list.
//! * The **trailer** locates and checksums the footer, so a reader seeks
//!   to the end, reads the footer, and then reads *only* the blocks a
//!   query needs — each one verified against its own checksum.
//!
//! A class+filter lookup therefore reads: trailer + footer (once,
//! cached), the class's postings block, and the record blocks whose key
//! ranges cover the candidate keys. Everything else stays on disk.
//!
//! Two versions coexist, distinguished by the magic (`FSG1` / `FSG2`).
//! Version 1 predates track sketches: its record blocks carry no member
//! track ids and it has no tracks block. Readers accept both (v1 members
//! decode with the default track id and an empty sketch set); [`encode`]
//! writes version 2, and [`encode_with_version`] can still produce v1
//! files so the store's format-migration path stays testable.
//!
//! [`encode`]/[`decode`] round-trip an entire [`TopKIndex`]
//! byte-identically under the canonical JSON representation
//! (`tests/segment_durability.rs` holds the property test); the encoding
//! itself is deterministic (records, postings and sketches are sorted), so
//! equal indexes produce equal files.

use std::collections::BTreeMap;

use focus_video::{ClassId, FrameId, ObjectId, StreamId, TrackId};

use crate::cluster_store::{ClusterKey, ClusterRecord, MemberRef};
use crate::manifest::fnv1a64;
use crate::topk::TopKIndex;
use crate::track::{TrackKey, TrackSketch};

/// Magic bytes opening a version-1 binary segment file (and closing its
/// trailer). The trailing digit is the format version.
pub const BINSEG_MAGIC: [u8; 4] = *b"FSG1";

/// Magic bytes of the current (version 2) format: members carry their
/// track id and the segment persists a tracks block of [`TrackSketch`]es.
pub const BINSEG_MAGIC_V2: [u8; 4] = *b"FSG2";

/// The binary segment format versions a reader accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BinsegVersion {
    /// `FSG1`: no member track ids, no tracks block.
    V1,
    /// `FSG2`: member track ids + a per-segment tracks block. The version
    /// [`encode`] writes.
    #[default]
    V2,
}

impl BinsegVersion {
    /// The magic bytes this version opens and closes files with.
    pub fn magic(self) -> [u8; 4] {
        match self {
            BinsegVersion::V1 => BINSEG_MAGIC,
            BinsegVersion::V2 => BINSEG_MAGIC_V2,
        }
    }

    /// The version a magic identifies, if any.
    pub fn from_magic(magic: &[u8]) -> Option<BinsegVersion> {
        if magic == BINSEG_MAGIC {
            Some(BinsegVersion::V1)
        } else if magic == BINSEG_MAGIC_V2 {
            Some(BinsegVersion::V2)
        } else {
            None
        }
    }
}

/// Records per record block — the unit of a partial read. Small enough
/// that a point lookup reads little, large enough that varint/delta
/// framing amortizes.
pub const RECORDS_PER_BLOCK: usize = 32;

/// Byte length of the fixed trailer: footer offset, footer length, footer
/// checksum (u64 little-endian each) + closing magic.
pub const TRAILER_LEN: usize = 8 + 8 + 8 + 4;

/// Decode errors for binary segments. Checksum failures carry both sums so
/// the store can surface them exactly like manifest-level corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinsegError {
    /// The bytes end before the structure they should hold.
    Truncated,
    /// The leading or trailing magic is wrong — not a binary segment.
    BadMagic,
    /// A structural invariant failed (named for diagnostics).
    Malformed(&'static str),
    /// A block's bytes do not match the checksum its footer recorded.
    ChecksumMismatch {
        /// Checksum recorded in the footer.
        expected: u64,
        /// Checksum of the bytes read.
        found: u64,
    },
}

impl std::fmt::Display for BinsegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinsegError::Truncated => write!(f, "binary segment truncated"),
            BinsegError::BadMagic => write!(f, "not a binary segment (bad magic)"),
            BinsegError::Malformed(what) => write!(f, "malformed binary segment: {what}"),
            BinsegError::ChecksumMismatch { expected, found } => write!(
                f,
                "binary segment block checksum mismatch: found {found:#018x}, footer says {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for BinsegError {}

/// Footer entry for one record block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordBlockMeta {
    /// Smallest cluster key in the block (blocks are sorted and disjoint).
    pub first_key: ClusterKey,
    /// Largest cluster key in the block.
    pub last_key: ClusterKey,
    /// Byte offset of the block within the segment file.
    pub offset: u64,
    /// Byte length of the block.
    pub len: u64,
    /// FNV-1a 64 checksum of the block's bytes.
    pub checksum: u64,
    /// Records stored in the block.
    pub count: usize,
}

/// Footer entry for one class's postings block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostingsBlockMeta {
    /// The class whose postings the block holds.
    pub class: ClassId,
    /// Byte offset of the block within the segment file.
    pub offset: u64,
    /// Byte length of the block.
    pub len: u64,
    /// FNV-1a 64 checksum of the block's bytes.
    pub checksum: u64,
    /// Keys stored in the block.
    pub count: usize,
}

/// Footer entry for the segment's tracks block (version 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracksBlockMeta {
    /// Byte offset of the block within the segment file.
    pub offset: u64,
    /// Byte length of the block.
    pub len: u64,
    /// FNV-1a 64 checksum of the block's bytes.
    pub checksum: u64,
    /// Sketches stored in the block.
    pub count: usize,
}

/// The decoded footer: the block index a reader navigates by, plus the
/// segment-level bounds (the same cover the manifest records).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SegmentFooter {
    /// The format version the file was written in (from its magic).
    pub version: BinsegVersion,
    /// Earliest `start_secs` of any record (`+inf` for an empty segment).
    pub t_start: f64,
    /// Latest `end_secs` of any record (`-inf` for an empty segment).
    pub t_end: f64,
    /// Total records across all record blocks.
    pub clusters: usize,
    /// The streams with at least one record, sorted.
    pub streams: Vec<StreamId>,
    /// Record blocks in key order.
    pub record_blocks: Vec<RecordBlockMeta>,
    /// Postings blocks in class order.
    pub postings: Vec<PostingsBlockMeta>,
    /// The tracks block, when the segment holds any sketches (always
    /// `None` for version-1 files).
    pub tracks: Option<TracksBlockMeta>,
}

impl SegmentFooter {
    /// The postings block for `class`, if the segment indexes it.
    pub fn postings_for(&self, class: ClassId) -> Option<&PostingsBlockMeta> {
        self.postings
            .binary_search_by_key(&class, |p| p.class)
            .ok()
            .map(|i| &self.postings[i])
    }

    /// Indices of the record blocks whose key range could contain any of
    /// `keys` (which must be sorted). Blocks are key-ordered and disjoint,
    /// so this is a linear merge over the two sorted sequences.
    pub fn blocks_covering(&self, keys: &[ClusterKey]) -> Vec<usize> {
        let mut wanted = Vec::new();
        let mut block = 0usize;
        for key in keys {
            while block < self.record_blocks.len() && self.record_blocks[block].last_key < *key {
                block += 1;
            }
            if block >= self.record_blocks.len() {
                break;
            }
            if self.record_blocks[block].first_key <= *key && wanted.last() != Some(&block) {
                wanted.push(block);
            }
        }
        wanted
    }
}

// ---------------------------------------------------------------------------
// Primitive encoders/decoders
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn varint(&mut self) -> Result<u64, BinsegError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self.bytes.get(self.pos).ok_or(BinsegError::Truncated)?;
            self.pos += 1;
            if shift >= 64 {
                return Err(BinsegError::Malformed("varint overflows u64"));
            }
            value |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    fn byte(&mut self) -> Result<u8, BinsegError> {
        let b = *self.bytes.get(self.pos).ok_or(BinsegError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn f64(&mut self) -> Result<f64, BinsegError> {
        let end = self.pos.checked_add(8).ok_or(BinsegError::Truncated)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(BinsegError::Truncated)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(slice);
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(buf)))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn narrow_u32(v: u64, what: &'static str) -> Result<u32, BinsegError> {
    u32::try_from(v).map_err(|_| BinsegError::Malformed(what))
}

fn narrow_u16(v: u64, what: &'static str) -> Result<u16, BinsegError> {
    u16::try_from(v).map_err(|_| BinsegError::Malformed(what))
}

fn narrow_usize(v: u64, what: &'static str) -> Result<usize, BinsegError> {
    usize::try_from(v).map_err(|_| BinsegError::Malformed(what))
}

/// Delta encoder for a sorted run of cluster keys. The first key is
/// absolute; later keys in the same stream store only `local - prev.local`
/// behind a same-stream tag, and a stream change restarts absolute.
struct KeyEncoder {
    prev: Option<ClusterKey>,
}

impl KeyEncoder {
    fn new() -> Self {
        Self { prev: None }
    }

    fn push(&mut self, out: &mut Vec<u8>, key: ClusterKey) {
        match self.prev {
            None => {
                put_varint(out, key.stream.0 as u64);
                put_varint(out, key.local);
            }
            Some(prev) if prev.stream == key.stream => {
                debug_assert!(key.local > prev.local, "keys must be strictly increasing");
                out.push(0);
                put_varint(out, key.local - prev.local);
            }
            Some(_) => {
                out.push(1);
                put_varint(out, key.stream.0 as u64);
                put_varint(out, key.local);
            }
        }
        self.prev = Some(key);
    }
}

struct KeyDecoder {
    prev: Option<ClusterKey>,
}

impl KeyDecoder {
    fn new() -> Self {
        Self { prev: None }
    }

    fn next(&mut self, r: &mut Reader<'_>) -> Result<ClusterKey, BinsegError> {
        let key = match self.prev {
            None => {
                let stream = narrow_u32(r.varint()?, "stream id overflows u32")?;
                ClusterKey::new(StreamId(stream), r.varint()?)
            }
            Some(prev) => match r.byte()? {
                0 => {
                    let delta = r.varint()?;
                    if delta == 0 {
                        return Err(BinsegError::Malformed("zero key delta"));
                    }
                    let local = prev
                        .local
                        .checked_add(delta)
                        .ok_or(BinsegError::Malformed("key delta overflows u64"))?;
                    ClusterKey::new(prev.stream, local)
                }
                1 => {
                    let stream = narrow_u32(r.varint()?, "stream id overflows u32")?;
                    ClusterKey::new(StreamId(stream), r.varint()?)
                }
                _ => return Err(BinsegError::Malformed("bad key tag")),
            },
        };
        self.prev = Some(key);
        Ok(key)
    }
}

// ---------------------------------------------------------------------------
// Blocks
// ---------------------------------------------------------------------------

fn encode_record_block(records: &[&ClusterRecord], version: BinsegVersion) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, records.len() as u64);
    let mut keys = KeyEncoder::new();
    for record in records {
        keys.push(&mut out, record.key);
        put_varint(&mut out, record.centroid_object.0);
        put_varint(&mut out, record.centroid_frame.0);
        put_varint(&mut out, record.top_k_classes.len() as u64);
        for class in &record.top_k_classes {
            put_varint(&mut out, class.0 as u64);
        }
        put_varint(&mut out, record.members.len() as u64);
        for member in &record.members {
            put_varint(&mut out, member.object.0);
            put_varint(&mut out, member.frame.0);
            if version == BinsegVersion::V2 {
                put_varint(&mut out, member.track.0);
            }
        }
        put_f64(&mut out, record.start_secs);
        put_f64(&mut out, record.end_secs);
    }
    out
}

/// Decodes one record block (the exact byte range the footer describes).
/// Version-1 blocks carry no member track ids; their members decode with
/// the default track.
pub fn decode_record_block(
    bytes: &[u8],
    version: BinsegVersion,
) -> Result<Vec<ClusterRecord>, BinsegError> {
    let mut r = Reader::new(bytes);
    let count = narrow_usize(r.varint()?, "record count overflows usize")?;
    let mut keys = KeyDecoder::new();
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let key = keys.next(&mut r)?;
        let centroid_object = ObjectId(r.varint()?);
        let centroid_frame = FrameId(r.varint()?);
        let classes = narrow_usize(r.varint()?, "class count overflows usize")?;
        let mut top_k_classes = Vec::with_capacity(classes);
        for _ in 0..classes {
            top_k_classes.push(ClassId(narrow_u16(r.varint()?, "class id overflows u16")?));
        }
        let members = narrow_usize(r.varint()?, "member count overflows usize")?;
        let mut member_refs = Vec::with_capacity(members);
        for _ in 0..members {
            member_refs.push(MemberRef {
                object: ObjectId(r.varint()?),
                frame: FrameId(r.varint()?),
                track: match version {
                    BinsegVersion::V1 => TrackId::default(),
                    BinsegVersion::V2 => TrackId(r.varint()?),
                },
            });
        }
        let start_secs = r.f64()?;
        let end_secs = r.f64()?;
        records.push(ClusterRecord {
            key,
            centroid_object,
            centroid_frame,
            top_k_classes,
            members: member_refs,
            start_secs,
            end_secs,
        });
    }
    if !r.done() {
        return Err(BinsegError::Malformed("trailing bytes in record block"));
    }
    Ok(records)
}

fn encode_postings_block(keys: &[ClusterKey]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, keys.len() as u64);
    let mut enc = KeyEncoder::new();
    for key in keys {
        enc.push(&mut out, *key);
    }
    out
}

/// Decodes one postings block into its sorted cluster keys.
pub fn decode_postings_block(bytes: &[u8]) -> Result<Vec<ClusterKey>, BinsegError> {
    let mut r = Reader::new(bytes);
    let count = narrow_usize(r.varint()?, "postings count overflows usize")?;
    let mut dec = KeyDecoder::new();
    let mut keys = Vec::with_capacity(count);
    for _ in 0..count {
        keys.push(dec.next(&mut r)?);
    }
    if !r.done() {
        return Err(BinsegError::Malformed("trailing bytes in postings block"));
    }
    Ok(keys)
}

fn encode_tracks_block(sketches: &[&TrackSketch]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, sketches.len() as u64);
    for sketch in sketches {
        put_varint(&mut out, sketch.key.stream.0 as u64);
        put_varint(&mut out, sketch.key.track.0);
        put_varint(&mut out, sketch.entry_cell as u64);
        put_varint(&mut out, sketch.exit_cell as u64);
        put_f64(&mut out, sketch.t_start);
        put_f64(&mut out, sketch.t_end);
        put_varint(&mut out, sketch.observations);
        put_varint(&mut out, sketch.speed_pairs);
        put_f64(&mut out, sketch.min_speed);
        put_f64(&mut out, sketch.max_speed);
        // Cells are sorted and strictly increasing: delta-encode them.
        put_varint(&mut out, sketch.cells.len() as u64);
        let mut prev = 0u64;
        for (i, cell) in sketch.cells.iter().enumerate() {
            let cell = *cell as u64;
            if i == 0 {
                put_varint(&mut out, cell);
            } else {
                put_varint(&mut out, cell - prev);
            }
            prev = cell;
        }
    }
    out
}

/// Decodes one tracks block into its sketches, sorted by track key.
pub fn decode_tracks_block(bytes: &[u8]) -> Result<Vec<TrackSketch>, BinsegError> {
    let mut r = Reader::new(bytes);
    let count = narrow_usize(r.varint()?, "sketch count overflows usize")?;
    let mut sketches = Vec::with_capacity(count);
    for _ in 0..count {
        let stream = StreamId(narrow_u32(r.varint()?, "stream id overflows u32")?);
        let track = TrackId(r.varint()?);
        let entry_cell = narrow_u32(r.varint()?, "entry cell overflows u32")?;
        let exit_cell = narrow_u32(r.varint()?, "exit cell overflows u32")?;
        let t_start = r.f64()?;
        let t_end = r.f64()?;
        let observations = r.varint()?;
        let speed_pairs = r.varint()?;
        let min_speed = r.f64()?;
        let max_speed = r.f64()?;
        let cell_count = narrow_usize(r.varint()?, "cell count overflows usize")?;
        let mut cells = Vec::with_capacity(cell_count);
        let mut prev = 0u64;
        for i in 0..cell_count {
            let delta = r.varint()?;
            let cell = if i == 0 {
                delta
            } else {
                if delta == 0 {
                    return Err(BinsegError::Malformed("zero cell delta"));
                }
                prev.checked_add(delta)
                    .ok_or(BinsegError::Malformed("cell delta overflows u64"))?
            };
            cells.push(narrow_u32(cell, "cell code overflows u32")?);
            prev = cell;
        }
        sketches.push(TrackSketch {
            key: TrackKey::new(stream, track),
            cells,
            entry_cell,
            exit_cell,
            t_start,
            t_end,
            observations,
            speed_pairs,
            min_speed,
            max_speed,
        });
    }
    if !r.done() {
        return Err(BinsegError::Malformed("trailing bytes in tracks block"));
    }
    Ok(sketches)
}

// ---------------------------------------------------------------------------
// Footer + trailer
// ---------------------------------------------------------------------------

fn encode_footer(footer: &SegmentFooter) -> Vec<u8> {
    let mut out = Vec::new();
    put_f64(&mut out, footer.t_start);
    put_f64(&mut out, footer.t_end);
    put_varint(&mut out, footer.clusters as u64);
    put_varint(&mut out, footer.streams.len() as u64);
    for stream in &footer.streams {
        put_varint(&mut out, stream.0 as u64);
    }
    put_varint(&mut out, footer.record_blocks.len() as u64);
    for block in &footer.record_blocks {
        put_varint(&mut out, block.first_key.stream.0 as u64);
        put_varint(&mut out, block.first_key.local);
        put_varint(&mut out, block.last_key.stream.0 as u64);
        put_varint(&mut out, block.last_key.local);
        put_varint(&mut out, block.offset);
        put_varint(&mut out, block.len);
        out.extend_from_slice(&block.checksum.to_le_bytes());
        put_varint(&mut out, block.count as u64);
    }
    put_varint(&mut out, footer.postings.len() as u64);
    for block in &footer.postings {
        put_varint(&mut out, block.class.0 as u64);
        put_varint(&mut out, block.offset);
        put_varint(&mut out, block.len);
        out.extend_from_slice(&block.checksum.to_le_bytes());
        put_varint(&mut out, block.count as u64);
    }
    if footer.version == BinsegVersion::V2 {
        match &footer.tracks {
            Some(block) => {
                out.push(1);
                put_varint(&mut out, block.offset);
                put_varint(&mut out, block.len);
                out.extend_from_slice(&block.checksum.to_le_bytes());
                put_varint(&mut out, block.count as u64);
            }
            None => out.push(0),
        }
    }
    out
}

/// Decodes a footer from the exact byte range the trailer describes.
/// `version` comes from the trailer's magic (see [`parse_trailer`]).
pub fn decode_footer(bytes: &[u8], version: BinsegVersion) -> Result<SegmentFooter, BinsegError> {
    let mut r = Reader::new(bytes);
    let t_start = r.f64()?;
    let t_end = r.f64()?;
    let clusters = narrow_usize(r.varint()?, "cluster count overflows usize")?;
    let stream_count = narrow_usize(r.varint()?, "stream count overflows usize")?;
    let mut streams = Vec::with_capacity(stream_count);
    for _ in 0..stream_count {
        streams.push(StreamId(narrow_u32(
            r.varint()?,
            "stream id overflows u32",
        )?));
    }
    let block_count = narrow_usize(r.varint()?, "record block count overflows usize")?;
    let mut record_blocks = Vec::with_capacity(block_count);
    for _ in 0..block_count {
        let first_key = ClusterKey::new(
            StreamId(narrow_u32(r.varint()?, "stream id overflows u32")?),
            r.varint()?,
        );
        let last_key = ClusterKey::new(
            StreamId(narrow_u32(r.varint()?, "stream id overflows u32")?),
            r.varint()?,
        );
        let offset = r.varint()?;
        let len = r.varint()?;
        let mut sum = [0u8; 8];
        for b in sum.iter_mut() {
            *b = r.byte()?;
        }
        let count = narrow_usize(r.varint()?, "record count overflows usize")?;
        record_blocks.push(RecordBlockMeta {
            first_key,
            last_key,
            offset,
            len,
            checksum: u64::from_le_bytes(sum),
            count,
        });
    }
    let postings_count = narrow_usize(r.varint()?, "postings block count overflows usize")?;
    let mut postings = Vec::with_capacity(postings_count);
    for _ in 0..postings_count {
        let class = ClassId(narrow_u16(r.varint()?, "class id overflows u16")?);
        let offset = r.varint()?;
        let len = r.varint()?;
        let mut sum = [0u8; 8];
        for b in sum.iter_mut() {
            *b = r.byte()?;
        }
        let count = narrow_usize(r.varint()?, "postings count overflows usize")?;
        postings.push(PostingsBlockMeta {
            class,
            offset,
            len,
            checksum: u64::from_le_bytes(sum),
            count,
        });
    }
    let tracks = if version == BinsegVersion::V2 && r.byte()? == 1 {
        let offset = r.varint()?;
        let len = r.varint()?;
        let mut sum = [0u8; 8];
        for b in sum.iter_mut() {
            *b = r.byte()?;
        }
        let count = narrow_usize(r.varint()?, "sketch count overflows usize")?;
        Some(TracksBlockMeta {
            offset,
            len,
            checksum: u64::from_le_bytes(sum),
            count,
        })
    } else {
        None
    };
    if !r.done() {
        return Err(BinsegError::Malformed("trailing bytes in footer"));
    }
    Ok(SegmentFooter {
        version,
        t_start,
        t_end,
        clusters,
        streams,
        record_blocks,
        postings,
        tracks,
    })
}

/// Where a file's footer lives, per its trailer:
/// `(offset, len, checksum, version)`. Both format versions are accepted;
/// the version (from the closing magic) tells the caller how to decode the
/// footer and record blocks.
///
/// `trailer` must be the file's final [`TRAILER_LEN`] bytes.
pub fn parse_trailer(trailer: &[u8]) -> Result<(u64, u64, u64, BinsegVersion), BinsegError> {
    if trailer.len() != TRAILER_LEN {
        return Err(BinsegError::Truncated);
    }
    let version = BinsegVersion::from_magic(&trailer[24..28]).ok_or(BinsegError::BadMagic)?;
    let word = |at: usize| {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&trailer[at..at + 8]);
        u64::from_le_bytes(buf)
    };
    Ok((word(0), word(8), word(16), version))
}

// ---------------------------------------------------------------------------
// Whole-segment encode/decode
// ---------------------------------------------------------------------------

/// Encodes an index into a complete binary segment file in the current
/// format version.
///
/// Deterministic: records are sorted by key, postings by class and
/// sketches by track key, so two equal indexes always produce identical
/// bytes (the property sharded ingest equivalence relies on).
pub fn encode(index: &TopKIndex) -> Vec<u8> {
    encode_with_version(index, BinsegVersion::V2)
}

/// Encodes an index as a specific format version. Version 1 drops member
/// track ids and the tracks block — it exists so the store's per-segment
/// format migration (v1 file in, v2 file out) stays testable end to end.
pub fn encode_with_version(index: &TopKIndex, version: BinsegVersion) -> Vec<u8> {
    let mut records: Vec<&ClusterRecord> = index.clusters().collect();
    records.sort_by_key(|r| r.key);

    let mut t_start = f64::INFINITY;
    let mut t_end = f64::NEG_INFINITY;
    let mut postings: BTreeMap<ClassId, Vec<ClusterKey>> = BTreeMap::new();
    for record in &records {
        t_start = t_start.min(record.start_secs);
        t_end = t_end.max(record.end_secs);
        for class in &record.top_k_classes {
            postings.entry(*class).or_default().push(record.key);
        }
    }

    let mut out = Vec::new();
    out.extend_from_slice(&version.magic());

    let mut record_blocks = Vec::new();
    for chunk in records.chunks(RECORDS_PER_BLOCK) {
        let bytes = encode_record_block(chunk, version);
        record_blocks.push(RecordBlockMeta {
            first_key: chunk[0].key,
            last_key: chunk[chunk.len() - 1].key,
            offset: out.len() as u64,
            len: bytes.len() as u64,
            checksum: fnv1a64(&bytes),
            count: chunk.len(),
        });
        out.extend_from_slice(&bytes);
    }

    let mut postings_blocks = Vec::new();
    for (class, keys) in &postings {
        let bytes = encode_postings_block(keys);
        postings_blocks.push(PostingsBlockMeta {
            class: *class,
            offset: out.len() as u64,
            len: bytes.len() as u64,
            checksum: fnv1a64(&bytes),
            count: keys.len(),
        });
        out.extend_from_slice(&bytes);
    }

    let mut tracks_meta = None;
    if version == BinsegVersion::V2 {
        let mut sketches: Vec<&TrackSketch> = index.sketches().collect();
        sketches.sort_by_key(|s| s.key);
        if !sketches.is_empty() {
            let bytes = encode_tracks_block(&sketches);
            tracks_meta = Some(TracksBlockMeta {
                offset: out.len() as u64,
                len: bytes.len() as u64,
                checksum: fnv1a64(&bytes),
                count: sketches.len(),
            });
            out.extend_from_slice(&bytes);
        }
    }

    let footer = SegmentFooter {
        version,
        t_start,
        t_end,
        clusters: records.len(),
        streams: index.streams(),
        record_blocks,
        postings: postings_blocks,
        tracks: tracks_meta,
    };
    let footer_bytes = encode_footer(&footer);
    let footer_offset = out.len() as u64;
    out.extend_from_slice(&footer_bytes);
    out.extend_from_slice(&footer_offset.to_le_bytes());
    out.extend_from_slice(&(footer_bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&footer_bytes).to_le_bytes());
    out.extend_from_slice(&version.magic());
    out
}

/// Whether `bytes` carry a binary segment magic (either version).
pub fn is_binseg(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && BinsegVersion::from_magic(&bytes[..4]).is_some()
}

/// Reads and verifies the footer out of a complete segment's bytes.
pub fn footer_of(bytes: &[u8]) -> Result<SegmentFooter, BinsegError> {
    if !is_binseg(bytes) {
        return Err(BinsegError::BadMagic);
    }
    if bytes.len() < BINSEG_MAGIC.len() + TRAILER_LEN {
        return Err(BinsegError::Truncated);
    }
    let (offset, len, checksum, version) = parse_trailer(&bytes[bytes.len() - TRAILER_LEN..])?;
    let offset = narrow_usize(offset, "footer offset overflows usize")?;
    let len = narrow_usize(len, "footer length overflows usize")?;
    let end = offset
        .checked_add(len)
        .filter(|end| *end <= bytes.len() - TRAILER_LEN)
        .ok_or(BinsegError::Truncated)?;
    let footer_bytes = &bytes[offset..end];
    let found = fnv1a64(footer_bytes);
    if found != checksum {
        return Err(BinsegError::ChecksumMismatch {
            expected: checksum,
            found,
        });
    }
    decode_footer(footer_bytes, version)
}

/// Verifies and extracts one block's byte range out of a complete
/// segment's bytes.
fn block_bytes(bytes: &[u8], offset: u64, len: u64, checksum: u64) -> Result<&[u8], BinsegError> {
    let offset = narrow_usize(offset, "block offset overflows usize")?;
    let len = narrow_usize(len, "block length overflows usize")?;
    let end = offset
        .checked_add(len)
        .filter(|end| *end <= bytes.len())
        .ok_or(BinsegError::Truncated)?;
    let block = &bytes[offset..end];
    let found = fnv1a64(block);
    if found != checksum {
        return Err(BinsegError::ChecksumMismatch {
            expected: checksum,
            found,
        });
    }
    Ok(block)
}

/// Decodes an entire binary segment back into an index, verifying every
/// block checksum along the way. The inverse of [`encode`].
pub fn decode(bytes: &[u8]) -> Result<TopKIndex, BinsegError> {
    let footer = footer_of(bytes)?;
    let mut index = TopKIndex::new();
    for meta in &footer.record_blocks {
        let block = block_bytes(bytes, meta.offset, meta.len, meta.checksum)?;
        let records = decode_record_block(block, footer.version)?;
        if records.len() != meta.count {
            return Err(BinsegError::Malformed("record block count mismatch"));
        }
        for record in records {
            index.insert(record);
        }
    }
    // Postings blocks are derived data (rebuilt by the inserts above), but
    // verify their integrity anyway so decode() vouches for every byte.
    for meta in &footer.postings {
        block_bytes(bytes, meta.offset, meta.len, meta.checksum)?;
    }
    if let Some(meta) = &footer.tracks {
        let block = block_bytes(bytes, meta.offset, meta.len, meta.checksum)?;
        let sketches = decode_tracks_block(block)?;
        if sketches.len() != meta.count {
            return Err(BinsegError::Malformed("tracks block count mismatch"));
        }
        for sketch in sketches {
            index.insert_sketch(sketch);
        }
    }
    if index.len() != footer.clusters {
        return Err(BinsegError::Malformed("footer cluster count mismatch"));
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist;

    fn record(stream: u32, local: u64, classes: &[u16], start: f64) -> ClusterRecord {
        ClusterRecord {
            key: ClusterKey::new(StreamId(stream), local),
            centroid_object: ObjectId(((stream as u64) << 32) | local),
            centroid_frame: FrameId(local.wrapping_mul(3)),
            top_k_classes: classes.iter().map(|c| ClassId(*c)).collect(),
            members: vec![
                MemberRef {
                    object: ObjectId(((stream as u64) << 32) | local),
                    frame: FrameId(local.wrapping_mul(3)),
                    track: TrackId(local % 5),
                },
                MemberRef {
                    object: ObjectId(((stream as u64) << 32) | local.wrapping_add(1000)),
                    frame: FrameId(local.wrapping_mul(3).wrapping_add(1)),
                    track: TrackId(local % 5),
                },
            ],
            start_secs: start,
            end_secs: start + 4.5,
        }
    }

    fn sample() -> TopKIndex {
        let mut index = TopKIndex::new();
        for local in 0..100u64 {
            index.insert(record(
                (local % 3) as u32,
                local,
                &[(local % 7) as u16, 900],
                local as f64,
            ));
        }
        for stream in 0..3u32 {
            for track in 0..5u64 {
                let mut sketch = TrackSketch::first(
                    TrackKey::new(StreamId(stream), TrackId(track)),
                    track as f64,
                    10.0 * track as f64,
                    20.0,
                );
                sketch.absorb(&TrackSketch::first(
                    TrackKey::new(StreamId(stream), TrackId(track)),
                    track as f64 + 2.0,
                    10.0 * track as f64 + 300.0,
                    180.0,
                ));
                index.insert_sketch(sketch);
            }
        }
        index
    }

    #[test]
    fn roundtrip_is_canonically_identical() {
        let index = sample();
        let bytes = encode(&index);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(
            persist::to_json(&decoded).unwrap(),
            persist::to_json(&index).unwrap()
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        // Same records inserted in different orders must produce identical
        // bytes — sharded-ingest equivalence depends on it.
        let a = sample();
        let mut b = TopKIndex::new();
        for r in {
            let mut rs: Vec<ClusterRecord> = a.clusters().cloned().collect();
            rs.reverse();
            rs
        } {
            b.insert(r);
        }
        let mut sketches: Vec<TrackSketch> = a.sketches().cloned().collect();
        sketches.sort_by_key(|s| s.key);
        sketches.reverse();
        for s in sketches {
            b.insert_sketch(s);
        }
        assert_eq!(encode(&a), encode(&b));
    }

    #[test]
    fn empty_index_roundtrips() {
        let bytes = encode(&TopKIndex::new());
        let decoded = decode(&bytes).unwrap();
        assert!(decoded.is_empty());
        let footer = footer_of(&bytes).unwrap();
        assert!(footer.record_blocks.is_empty());
        assert!(footer.postings.is_empty());
        assert_eq!(footer.clusters, 0);
    }

    #[test]
    fn footer_indexes_blocks_and_bounds() {
        let index = sample();
        let bytes = encode(&index);
        let footer = footer_of(&bytes).unwrap();
        assert_eq!(footer.clusters, 100);
        assert_eq!(
            footer.record_blocks.len(),
            100usize.div_ceil(RECORDS_PER_BLOCK)
        );
        assert_eq!(footer.streams, index.streams());
        assert_eq!(footer.t_start, 0.0);
        assert_eq!(footer.t_end, 99.0 + 4.5);
        // Record blocks are key-ordered and disjoint.
        for pair in footer.record_blocks.windows(2) {
            assert!(pair[0].last_key < pair[1].first_key);
        }
        // Every indexed class has a postings block, sorted by class.
        assert_eq!(footer.postings.len(), index.indexed_classes().len());
        for pair in footer.postings.windows(2) {
            assert!(pair[0].class < pair[1].class);
        }
        assert!(footer.postings_for(ClassId(900)).is_some());
        assert!(footer.postings_for(ClassId(901)).is_none());
    }

    #[test]
    fn postings_blocks_decode_to_sorted_keys() {
        let index = sample();
        let bytes = encode(&index);
        let footer = footer_of(&bytes).unwrap();
        let meta = footer.postings_for(ClassId(900)).unwrap();
        let block = block_bytes(&bytes, meta.offset, meta.len, meta.checksum).unwrap();
        let keys = decode_postings_block(block).unwrap();
        assert_eq!(keys.len(), 100);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn blocks_covering_maps_keys_to_block_indices() {
        let index = sample();
        let bytes = encode(&index);
        let footer = footer_of(&bytes).unwrap();
        let all: Vec<ClusterKey> = {
            let mut keys: Vec<ClusterKey> = index.clusters().map(|r| r.key).collect();
            keys.sort();
            keys
        };
        // All keys touch all blocks.
        assert_eq!(
            footer.blocks_covering(&all),
            (0..footer.record_blocks.len()).collect::<Vec<_>>()
        );
        // One key touches exactly the block that holds it.
        let one = footer.blocks_covering(&all[..1]);
        assert_eq!(one.len(), 1);
        assert!(footer.record_blocks[one[0]].first_key <= all[0]);
        assert!(all[0] <= footer.record_blocks[one[0]].last_key);
        // A key beyond every block touches nothing.
        let beyond = vec![ClusterKey::new(StreamId(u32::MAX), u64::MAX)];
        assert!(footer.blocks_covering(&beyond).is_empty());
    }

    #[test]
    fn v1_files_decode_without_tracks() {
        let index = sample();
        let v1 = encode_with_version(&index, BinsegVersion::V1);
        assert!(is_binseg(&v1));
        assert_eq!(&v1[..4], &BINSEG_MAGIC);
        let footer = footer_of(&v1).unwrap();
        assert_eq!(footer.version, BinsegVersion::V1);
        assert!(footer.tracks.is_none());
        let decoded = decode(&v1).unwrap();
        assert_eq!(decoded.len(), index.len());
        assert_eq!(decoded.sketch_count(), 0);
        // Members decode with the default track id.
        assert!(decoded
            .clusters()
            .all(|r| r.members.iter().all(|m| m.track == TrackId::default())));
        // Re-encoding the decoded v1 index as v2 is a valid migration.
        let migrated = encode(&decode(&v1).unwrap());
        assert_eq!(&migrated[..4], &BINSEG_MAGIC_V2);
        let refooter = footer_of(&migrated).unwrap();
        assert_eq!(refooter.version, BinsegVersion::V2);
        assert_eq!(refooter.clusters, index.len());
    }

    #[test]
    fn v2_roundtrips_sketches_through_the_tracks_block() {
        let index = sample();
        let bytes = encode(&index);
        assert_eq!(&bytes[..4], &BINSEG_MAGIC_V2);
        let footer = footer_of(&bytes).unwrap();
        let tracks = footer.tracks.expect("sample index has sketches");
        assert_eq!(tracks.count, 15);
        let block = block_bytes(&bytes, tracks.offset, tracks.len, tracks.checksum).unwrap();
        let sketches = decode_tracks_block(block).unwrap();
        assert_eq!(sketches.len(), 15);
        assert!(sketches.windows(2).all(|w| w[0].key < w[1].key));
        for sketch in &sketches {
            assert_eq!(index.sketch(sketch.key), Some(sketch));
        }
        // The full decode carries them back into the index.
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.sketch_count(), 15);
        assert_eq!(
            persist::to_json(&decoded).unwrap(),
            persist::to_json(&index).unwrap()
        );
    }

    #[test]
    fn bit_flips_fail_the_tracks_block_checksum() {
        let index = sample();
        let mut bytes = encode(&index);
        let footer = footer_of(&bytes).unwrap();
        let tracks = footer.tracks.unwrap();
        bytes[tracks.offset as usize + 3] ^= 0x01;
        match block_bytes(&bytes, tracks.offset, tracks.len, tracks.checksum) {
            Err(BinsegError::ChecksumMismatch { expected, found }) => {
                assert_eq!(expected, tracks.checksum);
                assert_ne!(found, expected);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        assert!(matches!(
            decode(&bytes),
            Err(BinsegError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bit_flips_fail_block_checksums() {
        let index = sample();
        let mut bytes = encode(&index);
        let footer = footer_of(&bytes).unwrap();
        let victim = footer.record_blocks[0];
        bytes[victim.offset as usize + 2] ^= 0x01;
        match block_bytes(&bytes, victim.offset, victim.len, victim.checksum) {
            Err(BinsegError::ChecksumMismatch { expected, found }) => {
                assert_eq!(expected, victim.checksum);
                assert_ne!(found, expected);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        assert!(matches!(
            decode(&bytes),
            Err(BinsegError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_and_bad_magic_are_detected() {
        let bytes = encode(&sample());
        assert_eq!(decode(&bytes[..10]).unwrap_err(), BinsegError::Truncated);
        assert_eq!(decode(b"nope").unwrap_err(), BinsegError::BadMagic);
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert_eq!(decode(&wrong).unwrap_err(), BinsegError::BadMagic);
        assert!(is_binseg(&bytes));
        assert!(!is_binseg(b"{\"version\":1}"));
    }

    #[test]
    fn extreme_key_gaps_roundtrip() {
        let mut index = TopKIndex::new();
        index.insert(record(0, 0, &[1], 0.0));
        index.insert(record(0, u64::MAX, &[1], 1.0));
        index.insert(record(u32::MAX, 7, &[1], 2.0));
        let decoded = decode(&encode(&index)).unwrap();
        assert_eq!(
            persist::to_json(&decoded).unwrap(),
            persist::to_json(&index).unwrap()
        );
    }

    #[test]
    fn errors_display() {
        for e in [
            BinsegError::Truncated,
            BinsegError::BadMagic,
            BinsegError::Malformed("x"),
            BinsegError::ChecksumMismatch {
                expected: 1,
                found: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
