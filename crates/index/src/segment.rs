//! Durable, time-partitioned index segments.
//!
//! A [`SegmentStore`] is the on-disk home of a top-K index that has grown
//! past what one monolithic snapshot should hold: ingest seals batches of
//! cluster records into immutable *segments* (each covering the tight time
//! range of its records, per stream), and queries open only the segments
//! whose bounds intersect their camera/time restriction — the rest are
//! pruned without touching disk.
//!
//! Layout of a store directory:
//!
//! ```text
//! store/
//!   MANIFEST.json      # versioned list of live segments (see `manifest`)
//!   seg-000000.json    # one immutable index snapshot per segment
//!   seg-000001.json
//!   ...
//! ```
//!
//! Durability protocol: a segment file is written atomically (temp +
//! rename), then the manifest is rewritten atomically to list it. The
//! manifest is the source of truth — on [`open`](SegmentStore::open),
//! unlisted segment files and stray temp files are quarantined/removed, and
//! listed segments whose bytes fail their manifest checksum are quarantined
//! instead of silently loaded. See [`crate::manifest`] for the crash
//! analysis.
//!
//! Reads go through a small LRU cache of decoded segments, so repeated
//! queries against a warm working set skip both disk and JSON decoding;
//! [`SegmentAccess`] reports per-call pruning and cache behaviour so
//! callers can account for storage cost (the runtime crate's `IoMeter`).

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use focus_video::ClassId;

use crate::cluster_store::ClusterRecord;
use crate::manifest::{fnv1a64, Manifest, SegmentMeta, MANIFEST_FILE};
use crate::persist::{self, write_atomic, PersistError};
use crate::query::QueryFilter;
use crate::topk::{CentroidHandle, TopKIndex};

/// Default capacity of the decoded-segment LRU cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 16;

/// Errors produced by the segment store.
#[derive(Debug)]
pub enum SegmentError {
    /// Reading or writing a snapshot/manifest failed (carries the path).
    Persist(PersistError),
    /// A segment file's bytes do not match the checksum recorded in the
    /// manifest (torn write or bit rot).
    Corrupt {
        /// The corrupt segment file.
        path: PathBuf,
        /// Checksum recorded in the manifest.
        expected: u64,
        /// Checksum of the bytes actually on disk.
        found: u64,
    },
    /// A segment id was requested that the manifest does not list.
    UnknownSegment {
        /// The requested id.
        id: u64,
    },
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Persist(e) => write!(f, "segment store: {e}"),
            SegmentError::Corrupt {
                path,
                expected,
                found,
            } => write!(
                f,
                "segment store: corrupt segment `{}`: checksum {found:#018x}, manifest says {expected:#018x}",
                path.display()
            ),
            SegmentError::UnknownSegment { id } => {
                write!(f, "segment store: unknown segment id {id}")
            }
        }
    }
}

impl std::error::Error for SegmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegmentError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for SegmentError {
    fn from(e: PersistError) -> Self {
        SegmentError::Persist(e)
    }
}

/// What [`SegmentStore::open`] had to repair: files that were present but
/// untrusted (quarantined by renaming to `<name>.quarantined`) and stray
/// temp files from interrupted writes (deleted).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Segment files moved aside instead of loaded: manifest-listed files
    /// whose checksum did not match (corrupt), plus complete-looking segment
    /// files the manifest never acknowledged (orphans from a crash between
    /// segment rename and manifest update).
    pub quarantined: Vec<String>,
    /// Manifest-listed segments whose file was missing entirely (dropped
    /// from the manifest; nothing on disk to quarantine).
    pub missing: Vec<String>,
    /// Leftover `*.tmp` files from interrupted atomic writes, deleted.
    pub removed_temp: Vec<String>,
}

impl OpenReport {
    /// Whether the store opened without finding anything to repair.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.missing.is_empty() && self.removed_temp.is_empty()
    }
}

/// Per-call account of what a pruned lookup touched: how many segments the
/// store holds, how many survived pruning, and how the opened ones were
/// served (cold disk load vs LRU hit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentAccess {
    /// Live segments in the store at lookup time.
    pub segments_total: usize,
    /// Segments whose bounds intersected the filter (the rest were pruned
    /// without being opened).
    pub segments_considered: usize,
    /// Considered segments that had to be read and decoded from disk.
    pub cold_loads: usize,
    /// Considered segments served from the decoded-segment LRU cache.
    pub cache_hits: usize,
    /// Bytes read from disk for the cold loads.
    pub bytes_read: u64,
}

impl SegmentAccess {
    /// Segments actually opened (cold or cached).
    pub fn segments_opened(&self) -> usize {
        self.cold_loads + self.cache_hits
    }

    /// Segments skipped by pruning.
    pub fn segments_pruned(&self) -> usize {
        self.segments_total - self.segments_considered
    }

    /// Accumulates another access report into this one.
    pub fn merge(&mut self, other: &SegmentAccess) {
        // `segments_total` is a store-level snapshot, not additive.
        self.segments_total = self.segments_total.max(other.segments_total);
        self.segments_considered += other.segments_considered;
        self.cold_loads += other.cold_loads;
        self.cache_hits += other.cache_hits;
        self.bytes_read += other.bytes_read;
    }
}

/// Occupancy snapshot of the decoded-segment LRU cache, as returned by
/// [`SegmentStore::cache_occupancy`] — what a serving layer folds into its
/// stats to see how much of the working set is resident.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LruOccupancy {
    /// Decoded segments currently resident.
    pub occupancy: usize,
    /// Maximum decoded segments the cache holds.
    pub capacity: usize,
}

impl LruOccupancy {
    /// Fraction of the cache in use (0.0 for an unbounded-but-empty cache).
    pub fn fill_fraction(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.occupancy as f64 / self.capacity as f64
        }
    }
}

/// The result of a pruned lookup: the matching records (sorted by cluster
/// key, exactly as [`TopKIndex::lookup`] on the merged index would return
/// them) plus the access account.
#[derive(Debug, Clone)]
pub struct SegmentLookup {
    /// Matching cluster records, sorted by key.
    pub records: Vec<ClusterRecord>,
    /// What the lookup touched.
    pub access: SegmentAccess,
}

/// A bounded LRU of decoded segments, keyed by segment id.
#[derive(Debug)]
struct SegmentCache {
    capacity: usize,
    /// Ids in recency order, least recent first.
    order: VecDeque<u64>,
    decoded: HashMap<u64, Arc<TopKIndex>>,
}

impl SegmentCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            order: VecDeque::new(),
            decoded: HashMap::new(),
        }
    }

    fn get(&mut self, id: u64) -> Option<Arc<TopKIndex>> {
        let index = self.decoded.get(&id)?;
        let index = Arc::clone(index);
        if let Some(pos) = self.order.iter().position(|x| *x == id) {
            self.order.remove(pos);
        }
        self.order.push_back(id);
        Some(index)
    }

    fn insert(&mut self, id: u64, index: Arc<TopKIndex>) {
        if self.decoded.insert(id, index).is_none() {
            self.order.push_back(id);
        }
        while self.decoded.len() > self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.decoded.remove(&evicted);
            }
        }
    }

    fn remove(&mut self, id: u64) {
        if self.decoded.remove(&id).is_some() {
            if let Some(pos) = self.order.iter().position(|x| *x == id) {
                self.order.remove(pos);
            }
        }
    }
}

/// A durable, time-partitioned index store (see the module docs for the
/// on-disk layout and durability protocol).
///
/// All mutations (`seal`, `compact`) take `&mut self` and serialize their
/// atomic writes; reads (`load`, `lookup`) take `&self` and share the LRU
/// cache behind a mutex, so a store can serve concurrent queries.
///
/// # Examples
///
/// ```
/// use focus_index::{ClusterKey, ClusterRecord, MemberRef, QueryFilter, SegmentStore, TopKIndex};
/// use focus_video::{ClassId, FrameId, ObjectId, StreamId};
///
/// let dir = std::env::temp_dir().join("focus_segment_doc_example");
/// let _ = std::fs::remove_dir_all(&dir);
/// let mut store = SegmentStore::create(&dir).unwrap();
///
/// // Seal two single-record segments covering different time windows.
/// for (local, start) in [(0u64, 0.0f64), (1, 100.0)] {
///     let mut seg = TopKIndex::new();
///     seg.insert(ClusterRecord {
///         key: ClusterKey::new(StreamId(0), local),
///         centroid_object: ObjectId(local),
///         centroid_frame: FrameId(local),
///         top_k_classes: vec![ClassId(7)],
///         members: vec![MemberRef { object: ObjectId(local), frame: FrameId(local) }],
///         start_secs: start,
///         end_secs: start + 10.0,
///     });
///     store.seal(&seg).unwrap();
/// }
///
/// // A time-restricted lookup opens only the intersecting segment.
/// let early = QueryFilter::any().with_time_range(0.0, 20.0);
/// let hit = store.lookup(ClassId(7), &early).unwrap();
/// assert_eq!(hit.records.len(), 1);
/// assert_eq!(hit.access.segments_considered, 1);
/// assert_eq!(hit.access.segments_pruned(), 1);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    manifest: Manifest,
    cache: Mutex<SegmentCache>,
}

// The query layer shares one store across its worker threads; keep the
// store's cross-thread shareability an explicit API guarantee.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SegmentStore>();
};

impl SegmentStore {
    /// Creates a fresh, empty store at `dir` (creating the directory if
    /// needed) and writes its initial manifest.
    ///
    /// Fails with an I/O error if `dir` already contains a manifest — use
    /// [`open`](Self::open) for an existing store.
    pub fn create(dir: impl Into<PathBuf>) -> Result<SegmentStore, SegmentError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| {
            SegmentError::Persist(PersistError::Io {
                path: dir.clone(),
                source,
            })
        })?;
        let manifest_path = dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            return Err(SegmentError::Persist(PersistError::Io {
                path: manifest_path,
                source: std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    "store already exists; use SegmentStore::open",
                ),
            }));
        }
        let manifest = Manifest::new();
        manifest.save(&manifest_path)?;
        Ok(SegmentStore {
            dir,
            manifest,
            cache: Mutex::new(SegmentCache::new(DEFAULT_CACHE_CAPACITY)),
        })
    }

    /// Opens an existing store, verifying it and repairing crash leftovers:
    /// stray `*.tmp` files are deleted, manifest-listed segments whose bytes
    /// fail their checksum are quarantined (renamed to `<name>.quarantined`
    /// and dropped from the manifest), and complete segment files the
    /// manifest never acknowledged are quarantined too. The returned
    /// [`OpenReport`] lists every repair.
    pub fn open(dir: impl Into<PathBuf>) -> Result<(SegmentStore, OpenReport), SegmentError> {
        let dir = dir.into();
        let manifest_path = dir.join(MANIFEST_FILE);
        let mut manifest = Manifest::load(&manifest_path)?;
        let mut report = OpenReport::default();

        // Verify every listed segment's bytes against its checksum.
        let listed_count = manifest.segments.len();
        let mut verified = Vec::with_capacity(listed_count);
        for meta in std::mem::take(&mut manifest.segments) {
            let path = dir.join(&meta.file);
            match fs::read(&path) {
                Ok(bytes) if fnv1a64(&bytes) == meta.checksum => verified.push(meta),
                Ok(_) => {
                    // Torn or rotted: move aside for post-mortem, never load.
                    let _ = fs::rename(&path, quarantine_path(&path));
                    report.quarantined.push(meta.file);
                }
                // Only a confirmed absence may delist a segment. Any other
                // read failure (permissions, fd exhaustion, transient I/O)
                // aborts the open: dropping a healthy segment from the
                // manifest over a transient error would be permanent.
                Err(source) if source.kind() == std::io::ErrorKind::NotFound => {
                    report.missing.push(meta.file)
                }
                Err(source) => {
                    return Err(SegmentError::Persist(PersistError::Io { path, source }))
                }
            }
        }
        let entries_dropped = verified.len() != listed_count;
        manifest.segments = verified;

        // Sweep the directory for crash leftovers: interrupted temp writes
        // and complete segments the manifest never acknowledged.
        let listed: HashMap<&str, ()> = manifest
            .segments
            .iter()
            .map(|m| (m.file.as_str(), ()))
            .collect();
        if let Ok(entries) = fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                let path = entry.path();
                if name.ends_with(".tmp") {
                    let _ = fs::remove_file(&path);
                    report.removed_temp.push(name);
                } else if name.starts_with("seg-")
                    && name.ends_with(".json")
                    && !listed.contains_key(name.as_str())
                {
                    let _ = fs::rename(&path, quarantine_path(&path));
                    report.quarantined.push(name);
                }
            }
        }

        if entries_dropped {
            manifest.save(&manifest_path)?;
        }
        Ok((
            SegmentStore {
                dir,
                manifest,
                cache: Mutex::new(SegmentCache::new(DEFAULT_CACHE_CAPACITY)),
            },
            report,
        ))
    }

    /// Returns the store with the decoded-segment LRU capacity set to
    /// `capacity` (minimum 1; the default is [`DEFAULT_CACHE_CAPACITY`]).
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        SegmentStore {
            cache: Mutex::new(SegmentCache::new(capacity)),
            ..self
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The live segments, in seal order.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.manifest.segments
    }

    /// Number of live segments.
    pub fn len(&self) -> usize {
        self.manifest.segments.len()
    }

    /// Whether the store holds no segments.
    pub fn is_empty(&self) -> bool {
        self.manifest.segments.is_empty()
    }

    /// Total cluster records across all live segments.
    pub fn total_clusters(&self) -> usize {
        self.manifest.segments.iter().map(|s| s.clusters).sum()
    }

    /// Occupancy of the decoded-segment LRU cache.
    pub fn cache_occupancy(&self) -> LruOccupancy {
        let cache = self.cache.lock().unwrap();
        LruOccupancy {
            occupancy: cache.decoded.len(),
            capacity: cache.capacity,
        }
    }

    /// Seals `index` as one new immutable segment: writes the segment file
    /// atomically, then commits it to the manifest. An empty index seals
    /// nothing and returns `Ok(None)`.
    ///
    /// The segment's time bounds are the tight cover of the records' time
    /// ranges and its stream list is exactly the records' streams, which is
    /// what makes later pruning sound (see [`SegmentMeta::admits_filter`]).
    pub fn seal(&mut self, index: &TopKIndex) -> Result<Option<SegmentMeta>, SegmentError> {
        if index.is_empty() {
            return Ok(None);
        }
        let mut t_start = f64::INFINITY;
        let mut t_end = f64::NEG_INFINITY;
        for record in index.clusters() {
            t_start = t_start.min(record.start_secs);
            t_end = t_end.max(record.end_secs);
        }
        let id = self.manifest.allocate_id();
        let file = format!("seg-{id:06}.json");
        let payload = persist::to_json(index)?;
        let meta = SegmentMeta {
            id,
            file: file.clone(),
            t_start,
            t_end,
            streams: index.streams(),
            clusters: index.len(),
            checksum: fnv1a64(payload.as_bytes()),
        };
        let path = self.dir.join(&file);
        write_atomic(&path, &payload)
            .map_err(|source| SegmentError::Persist(PersistError::Io { path, source }))?;
        self.manifest.segments.push(meta.clone());
        self.manifest.save(&self.dir.join(MANIFEST_FILE))?;
        Ok(Some(meta))
    }

    /// Loads segment `id`, serving it from the LRU cache when possible and
    /// verifying the manifest checksum on every cold load.
    pub fn load(&self, id: u64) -> Result<Arc<TopKIndex>, SegmentError> {
        let meta = self
            .manifest
            .segment(id)
            .ok_or(SegmentError::UnknownSegment { id })?;
        let (index, _, _) = self.load_counted(meta)?;
        Ok(index)
    }

    /// Loads a segment through the cache; returns the decoded index, whether
    /// the load was cold, and the bytes read (zero on a cache hit).
    fn load_counted(
        &self,
        meta: &SegmentMeta,
    ) -> Result<(Arc<TopKIndex>, bool, u64), SegmentError> {
        if let Some(index) = self.cache.lock().unwrap().get(meta.id) {
            return Ok((index, false, 0));
        }
        let path = self.dir.join(&meta.file);
        let bytes = fs::read(&path).map_err(|source| {
            SegmentError::Persist(PersistError::Io {
                path: path.clone(),
                source,
            })
        })?;
        let found = fnv1a64(&bytes);
        if found != meta.checksum {
            return Err(SegmentError::Corrupt {
                path,
                expected: meta.checksum,
                found,
            });
        }
        let json = String::from_utf8_lossy(&bytes);
        let index = Arc::new(persist::from_json(&json).map_err(|e| {
            SegmentError::Persist(match e {
                PersistError::Format { source, .. } => PersistError::Format {
                    path: Some(path.clone()),
                    source,
                },
                other => other,
            })
        })?);
        let len = bytes.len() as u64;
        self.cache
            .lock()
            .unwrap()
            .insert(meta.id, Arc::clone(&index));
        Ok((index, true, len))
    }

    /// The segments whose bounds intersect `filter` — the ones a query must
    /// open; everything else is pruned.
    pub fn segments_for(&self, filter: &QueryFilter) -> Vec<SegmentMeta> {
        self.manifest
            .segments
            .iter()
            .filter(|m| m.admits_filter(filter))
            .cloned()
            .collect()
    }

    /// Pruned lookup: opens only the segments intersecting `filter`, runs
    /// [`TopKIndex::lookup`] in each, and returns the union sorted by
    /// cluster key — byte-identical to looking `class` up in the merged
    /// in-memory index (segments are key-disjoint, so no deduplication
    /// across segments is ever needed).
    pub fn lookup(
        &self,
        class: ClassId,
        filter: &QueryFilter,
    ) -> Result<SegmentLookup, SegmentError> {
        let mut access = SegmentAccess {
            segments_total: self.manifest.segments.len(),
            ..SegmentAccess::default()
        };
        let mut records: Vec<ClusterRecord> = Vec::new();
        for meta in self
            .manifest
            .segments
            .iter()
            .filter(|m| m.admits_filter(filter))
        {
            access.segments_considered += 1;
            let (index, cold, bytes) = self.load_counted(meta)?;
            if cold {
                access.cold_loads += 1;
                access.bytes_read += bytes;
            } else {
                access.cache_hits += 1;
            }
            records.extend(index.lookup(class, filter).into_iter().cloned());
        }
        records.sort_by_key(|r| r.key);
        // Segments are key-disjoint by construction; a duplicate here means
        // a corrupt store, and silently dropping one record would mask it —
        // fail as loudly as merged_index() does.
        assert!(
            records.windows(2).all(|w| w[0].key != w[1].key),
            "segments must be key-disjoint"
        );
        Ok(SegmentLookup { records, access })
    }

    /// Like [`lookup`](Self::lookup), but returns stable
    /// [`CentroidHandle`]s — the shape the query-planning layer consumes.
    pub fn lookup_centroids(
        &self,
        class: ClassId,
        filter: &QueryFilter,
    ) -> Result<(Vec<CentroidHandle>, SegmentAccess), SegmentError> {
        let SegmentLookup { records, access } = self.lookup(class, filter)?;
        let handles = records
            .iter()
            .map(|record| CentroidHandle {
                cluster: record.key,
                centroid: record.centroid_object,
                centroid_frame: record.centroid_frame,
            })
            .collect();
        Ok((handles, access))
    }

    /// Merges every live segment into one in-memory index (manifest order).
    /// This is the reference the pruned query path is tested against, and
    /// the recovery path for callers that want the whole corpus in memory.
    pub fn merged_index(&self) -> Result<TopKIndex, SegmentError> {
        let mut merged = TopKIndex::new();
        for meta in &self.manifest.segments {
            let (index, _, _) = self.load_counted(meta)?;
            let replaced = merged.merge_from(&index);
            assert_eq!(replaced, 0, "segments must be key-disjoint");
        }
        Ok(merged)
    }

    /// Folds runs of adjacent small segments into larger ones: consecutive
    /// segments (in seal order) whose combined record count stays within
    /// `max_clusters` are merged into a single new segment. Query results
    /// are unchanged — the same records end up live, in fewer files.
    ///
    /// Crash-safe in the same way as sealing: each replacement segment file
    /// is written atomically before the manifest commits the swap, and the
    /// obsolete files are deleted only afterwards (a crash in between leaves
    /// orphans that the next [`open`](Self::open) quarantines).
    ///
    /// Returns the number of segments folded away (old segments removed
    /// minus replacements added).
    pub fn compact(&mut self, max_clusters: usize) -> Result<usize, SegmentError> {
        // Work on a copy: the live segment list must stay intact if any
        // write below fails (replacement files already written become
        // orphans that the next open() quarantines — never data loss).
        let old = self.manifest.segments.clone();
        let before = old.len();
        let mut new_segments: Vec<SegmentMeta> = Vec::with_capacity(before);
        let mut obsolete: Vec<SegmentMeta> = Vec::new();
        let mut run: Vec<SegmentMeta> = Vec::new();
        let mut run_clusters = 0usize;

        // Writes a run back: runs of one keep their segment untouched; runs
        // of two or more are merged into a freshly sealed replacement.
        let flush = |this: &mut Self,
                     run: &mut Vec<SegmentMeta>,
                     new_segments: &mut Vec<SegmentMeta>,
                     obsolete: &mut Vec<SegmentMeta>|
         -> Result<(), SegmentError> {
            if run.len() < 2 {
                new_segments.append(run);
                return Ok(());
            }
            let mut merged = TopKIndex::new();
            for meta in run.iter() {
                let (index, _, _) = this.load_counted(meta)?;
                let replaced = merged.merge_from(&index);
                assert_eq!(replaced, 0, "segments must be key-disjoint");
            }
            let id = this.manifest.allocate_id();
            let file = format!("seg-{id:06}.json");
            let payload = persist::to_json(&merged)?;
            let meta = SegmentMeta {
                id,
                file: file.clone(),
                t_start: run.iter().map(|m| m.t_start).fold(f64::INFINITY, f64::min),
                t_end: run
                    .iter()
                    .map(|m| m.t_end)
                    .fold(f64::NEG_INFINITY, f64::max),
                streams: merged.streams(),
                clusters: merged.len(),
                checksum: fnv1a64(payload.as_bytes()),
            };
            let path = this.dir.join(&file);
            write_atomic(&path, &payload)
                .map_err(|source| SegmentError::Persist(PersistError::Io { path, source }))?;
            this.cache.lock().unwrap().insert(id, Arc::new(merged));
            obsolete.append(run);
            new_segments.push(meta);
            Ok(())
        };

        for meta in old.iter().cloned() {
            if !run.is_empty() && run_clusters + meta.clusters > max_clusters {
                flush(self, &mut run, &mut new_segments, &mut obsolete)?;
                run_clusters = 0;
            }
            run_clusters += meta.clusters;
            run.push(meta);
        }
        flush(self, &mut run, &mut new_segments, &mut obsolete)?;

        if obsolete.is_empty() {
            return Ok(0);
        }
        // Commit: swap the list in memory, persist it, then retire the old
        // files. A failed save restores the old list so the in-memory store
        // keeps matching the manifest on disk.
        self.manifest.segments = new_segments;
        if let Err(e) = self.manifest.save(&self.dir.join(MANIFEST_FILE)) {
            self.manifest.segments = old;
            return Err(e.into());
        }
        let mut cache = self.cache.lock().unwrap();
        for meta in &obsolete {
            cache.remove(meta.id);
            let _ = fs::remove_file(self.dir.join(&meta.file));
        }
        drop(cache);
        Ok(before - self.manifest.segments.len())
    }
}

/// The quarantine name for an untrusted file: `<name>.quarantined` next to
/// the original.
fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".quarantined");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_store::{ClusterKey, MemberRef};
    use focus_video::{FrameId, ObjectId, StreamId};

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("focus_segment_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(stream: u32, local: u64, class: u16, start: f64) -> ClusterRecord {
        ClusterRecord {
            key: ClusterKey::new(StreamId(stream), local),
            centroid_object: ObjectId((stream as u64) << 32 | local),
            centroid_frame: FrameId(local),
            top_k_classes: vec![ClassId(class), ClassId(0)],
            members: vec![MemberRef {
                object: ObjectId((stream as u64) << 32 | local),
                frame: FrameId(local),
            }],
            start_secs: start,
            end_secs: start + 5.0,
        }
    }

    fn segment_of(records: &[ClusterRecord]) -> TopKIndex {
        let mut idx = TopKIndex::new();
        for r in records {
            idx.insert(r.clone());
        }
        idx
    }

    /// Seals three segments: stream 0 at [0,15], stream 0 at [100,115],
    /// stream 1 at [0,15].
    fn populated(dir: &Path) -> SegmentStore {
        let mut store = SegmentStore::create(dir).unwrap();
        store
            .seal(&segment_of(&[record(0, 0, 5, 0.0), record(0, 1, 5, 10.0)]))
            .unwrap();
        store
            .seal(&segment_of(&[
                record(0, 2, 5, 100.0),
                record(0, 3, 6, 110.0),
            ]))
            .unwrap();
        store
            .seal(&segment_of(&[record(1, 0, 5, 0.0), record(1, 1, 7, 10.0)]))
            .unwrap();
        store
    }

    #[test]
    fn seal_assigns_bounds_streams_and_checksums() {
        let dir = test_dir("seal_bounds");
        let mut store = SegmentStore::create(&dir).unwrap();
        let meta = store
            .seal(&segment_of(&[record(0, 0, 5, 2.0), record(0, 1, 5, 30.0)]))
            .unwrap()
            .unwrap();
        assert_eq!(meta.id, 0);
        assert_eq!(meta.t_start, 2.0);
        assert_eq!(meta.t_end, 35.0);
        assert_eq!(meta.streams, vec![StreamId(0)]);
        assert_eq!(meta.clusters, 2);
        let bytes = fs::read(dir.join(&meta.file)).unwrap();
        assert_eq!(fnv1a64(&bytes), meta.checksum);
        // Sealing an empty index is a no-op.
        assert!(store.seal(&TopKIndex::new()).unwrap().is_none());
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_to_clobber_an_existing_store() {
        let dir = test_dir("create_clobber");
        let _store = SegmentStore::create(&dir).unwrap();
        assert!(SegmentStore::create(&dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lookup_equals_merged_index_and_prunes() {
        let dir = test_dir("lookup_prune");
        let store = populated(&dir);
        let merged = store.merged_index().unwrap();

        for (filter, expect_considered) in [
            (QueryFilter::any(), 3),
            (QueryFilter::any().with_time_range(0.0, 20.0), 2),
            (QueryFilter::for_stream(StreamId(1)), 1),
            (
                QueryFilter::for_stream(StreamId(0)).with_time_range(90.0, 200.0),
                1,
            ),
        ] {
            let lookup = store.lookup(ClassId(5), &filter).unwrap();
            let expected: Vec<ClusterRecord> = merged
                .lookup(ClassId(5), &filter)
                .into_iter()
                .cloned()
                .collect();
            assert_eq!(lookup.records, expected, "filter {filter:?}");
            assert_eq!(
                lookup.access.segments_considered, expect_considered,
                "filter {filter:?}"
            );
            assert_eq!(lookup.access.segments_total, 3);
        }
        // A fully disjoint time range opens nothing.
        let none = store
            .lookup(
                ClassId(5),
                &QueryFilter::any().with_time_range(500.0, 600.0),
            )
            .unwrap();
        assert!(none.records.is_empty());
        assert_eq!(none.access.segments_opened(), 0);
        assert_eq!(none.access.segments_pruned(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_cache_serves_warm_lookups_without_reads() {
        let dir = test_dir("lru");
        let store = populated(&dir).with_cache_capacity(2);
        let cold = store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        assert_eq!(cold.access.cold_loads, 3);
        assert_eq!(cold.access.cache_hits, 0);
        assert!(cold.access.bytes_read > 0);
        // Capacity 2 holds the two most recent segments; a pruned lookup
        // touching only the last-loaded segment is served entirely warm.
        let last = QueryFilter::for_stream(StreamId(1));
        let warm = store.lookup(ClassId(5), &last).unwrap();
        assert_eq!(warm.access.segments_considered, 1);
        assert_eq!(warm.access.cache_hits, 1);
        assert_eq!(warm.access.cold_loads, 0);
        // A full sequential rescan of 3 segments thrashes a 2-entry LRU:
        // every access evicts the entry the next access needs.
        let rescan = store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        assert_eq!(rescan.access.cold_loads, 3);
        // A large-capacity store is fully warm on the second pass.
        let (store, _) = SegmentStore::open(&dir).unwrap();
        store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        let warm = store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        assert_eq!(warm.access.cache_hits, 3);
        assert_eq!(warm.access.cold_loads, 0);
        assert_eq!(warm.access.bytes_read, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_roundtrips_a_clean_store() {
        let dir = test_dir("open_clean");
        let store = populated(&dir);
        let expected = persist::to_json(&store.merged_index().unwrap()).unwrap();
        let (reopened, report) = SegmentStore::open(&dir).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(reopened.len(), 3);
        assert_eq!(
            persist::to_json(&reopened.merged_index().unwrap()).unwrap(),
            expected
        );
        assert_eq!(reopened.total_clusters(), 6);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segments_are_quarantined_on_open() {
        let dir = test_dir("quarantine");
        let store = populated(&dir);
        let victim = store.segments()[1].file.clone();
        // Flip one byte in the middle of the file.
        let path = dir.join(&victim);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        drop(store);

        let (reopened, report) = SegmentStore::open(&dir).unwrap();
        assert_eq!(report.quarantined, vec![victim.clone()]);
        assert_eq!(reopened.len(), 2);
        assert!(!dir.join(&victim).exists());
        assert!(dir.join(format!("{victim}.quarantined")).exists());
        // The surviving segments still load and answer.
        let lookup = reopened.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        assert_eq!(lookup.records.len(), 3);
        // A second open is clean: the repair was persisted to the manifest.
        let (_, report) = SegmentStore::open(&dir).unwrap();
        assert!(report.quarantined.is_empty(), "{report:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_after_open_is_detected_at_load_time() {
        let dir = test_dir("late_corrupt");
        let store = populated(&dir);
        let meta = store.segments()[0].clone();
        let path = dir.join(&meta.file);
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        match store.load(meta.id) {
            Err(SegmentError::Corrupt {
                expected, found, ..
            }) => {
                assert_eq!(expected, meta.checksum);
                assert_ne!(found, expected);
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
        assert!(matches!(
            store.load(999),
            Err(SegmentError::UnknownSegment { id: 999 })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_sweeps_temp_files_and_orphans() {
        let dir = test_dir("sweep");
        let store = populated(&dir);
        let expected = persist::to_json(&store.merged_index().unwrap()).unwrap();
        drop(store);
        // A crash mid-write leaves a temp file; a crash between segment
        // rename and manifest update leaves a complete but unlisted segment.
        fs::write(dir.join("seg-000099.json.tmp"), "{\"partial").unwrap();
        fs::write(
            dir.join("seg-000098.json"),
            "{\"version\":1,\"index\":{\"clusters\":[]}}",
        )
        .unwrap();
        let (reopened, report) = SegmentStore::open(&dir).unwrap();
        assert_eq!(report.removed_temp, vec!["seg-000099.json.tmp".to_string()]);
        assert_eq!(report.quarantined, vec!["seg-000098.json".to_string()]);
        assert!(!dir.join("seg-000099.json.tmp").exists());
        assert!(dir.join("seg-000098.json.quarantined").exists());
        // Every sealed segment survived untouched.
        assert_eq!(
            persist::to_json(&reopened.merged_index().unwrap()).unwrap(),
            expected
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_folds_small_adjacent_segments_without_changing_results() {
        let dir = test_dir("compact");
        let mut store = populated(&dir);
        let before = persist::to_json(&store.merged_index().unwrap()).unwrap();
        // Each segment holds 2 clusters: a budget of 4 folds the first two
        // and leaves the third alone.
        let folded = store.compact(4).unwrap();
        assert_eq!(folded, 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.segments()[0].clusters, 4);
        assert_eq!(store.segments()[0].t_start, 0.0);
        assert_eq!(store.segments()[0].t_end, 115.0);
        assert_eq!(
            persist::to_json(&store.merged_index().unwrap()).unwrap(),
            before
        );
        // Old files are gone; the store reopens cleanly and still matches.
        let (reopened, report) = SegmentStore::open(&dir).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(
            persist::to_json(&reopened.merged_index().unwrap()).unwrap(),
            before
        );
        // Compacting an already-compact store is a no-op.
        let mut reopened = reopened;
        assert_eq!(reopened.compact(4).unwrap(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_everything_into_one_segment() {
        let dir = test_dir("compact_all");
        let mut store = populated(&dir);
        let before = persist::to_json(&store.merged_index().unwrap()).unwrap();
        let folded = store.compact(usize::MAX).unwrap();
        assert_eq!(folded, 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.segments()[0].streams, vec![StreamId(0), StreamId(1)]);
        assert_eq!(
            persist::to_json(&store.merged_index().unwrap()).unwrap(),
            before
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_compaction_leaves_the_segment_list_intact() {
        let dir = test_dir("compact_fail");
        let mut store = populated(&dir);
        // Delete one segment file out from under the store: the fold's load
        // fails mid-compaction. The live segment list must survive — losing
        // it would delist every segment on the next manifest save.
        let victim = store.segments()[1].file.clone();
        fs::remove_file(dir.join(&victim)).unwrap();
        assert!(store.compact(usize::MAX).is_err());
        assert_eq!(store.len(), 3);
        // And it still matches the manifest on disk.
        let manifest = Manifest::load(&dir.join(MANIFEST_FILE)).unwrap();
        assert_eq!(manifest.segments, store.segments());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_occupancy_tracks_decoded_segments() {
        let dir = test_dir("occupancy");
        let store = populated(&dir).with_cache_capacity(2);
        let empty = store.cache_occupancy();
        assert_eq!(empty.occupancy, 0);
        assert_eq!(empty.capacity, 2);
        assert_eq!(empty.fill_fraction(), 0.0);
        store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        let full = store.cache_occupancy();
        assert_eq!(full.occupancy, 2, "3 segments thrash a 2-entry LRU");
        assert_eq!(full.fill_fraction(), 1.0);
        assert_eq!(LruOccupancy::default().fill_fraction(), 0.0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn access_report_arithmetic() {
        let mut a = SegmentAccess {
            segments_total: 5,
            segments_considered: 2,
            cold_loads: 1,
            cache_hits: 1,
            bytes_read: 100,
        };
        assert_eq!(a.segments_opened(), 2);
        assert_eq!(a.segments_pruned(), 3);
        a.merge(&SegmentAccess {
            segments_total: 5,
            segments_considered: 3,
            cold_loads: 2,
            cache_hits: 1,
            bytes_read: 50,
        });
        assert_eq!(a.segments_considered, 5);
        assert_eq!(a.cold_loads, 3);
        assert_eq!(a.bytes_read, 150);
        assert_eq!(a.segments_total, 5);
    }

    #[test]
    fn errors_display_their_context() {
        let errors: [SegmentError; 3] = [
            SegmentError::Persist(PersistError::VersionMismatch {
                path: None,
                found: 9,
                expected: 1,
            }),
            SegmentError::Corrupt {
                path: PathBuf::from("/s/seg-000001.json"),
                expected: 1,
                found: 2,
            },
            SegmentError::UnknownSegment { id: 7 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
