//! Durable, time-partitioned index segments.
//!
//! A [`SegmentStore`] is the on-disk home of a top-K index that has grown
//! past what one monolithic snapshot should hold: ingest seals batches of
//! cluster records into immutable *segments* (each covering the tight time
//! range of its records, per stream), and queries open only the segments
//! whose bounds intersect their camera/time restriction — the rest are
//! pruned without touching disk.
//!
//! Layout of a store directory:
//!
//! ```text
//! store/
//!   MANIFEST.json      # versioned list of live segments (see `manifest`)
//!   seg-000000.bin     # one immutable index snapshot per segment
//!   seg-000001.bin     # (binary columnar, see `binseg`)
//!   seg-000002.json    # legacy/debug JSON segments still serve
//!   ...
//! ```
//!
//! Segments are written in the binary columnar format of [`crate::binseg`]
//! by default; the manifest records each segment's format tag, so JSON
//! segments from older stores (or stores pinned to
//! [`SegmentFormat::Json`](crate::manifest::SegmentFormat) for debugging)
//! keep serving, and [`migrate_format`](SegmentStore::migrate_format)
//! rewrites them to binary one at a time without a stop-the-world step.
//!
//! Durability protocol: a segment file is written atomically (temp +
//! rename), then the manifest is rewritten atomically to list it. The
//! manifest is the source of truth — on [`open`](SegmentStore::open),
//! unlisted segment files and stray temp files are quarantined/removed, and
//! listed segments whose bytes fail their manifest checksum are quarantined
//! instead of silently loaded. See [`crate::manifest`] for the crash
//! analysis.
//!
//! Reads go through a two-tier cache: a decoded-block LRU (whole indexes,
//! footers, record blocks, postings blocks) above a raw-bytes LRU, so a
//! decoded eviction costs a re-decode rather than a disk read. Binary
//! lookups read and checksum-verify only the blocks a query needs — the
//! trailer/footer, one postings block, and the record blocks covering the
//! candidate keys; [`SegmentAccess`] reports per-call pruning, cache and
//! block behaviour so callers can account for storage cost (the runtime
//! crate's `IoMeter`).

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::{Read as _, Seek as _, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use focus_video::ClassId;

use crate::binseg::{self, BinsegError, SegmentFooter};
use crate::cluster_store::{ClusterKey, ClusterRecord};
use crate::manifest::{fnv1a64, Manifest, SegmentFormat, SegmentMeta, MANIFEST_FILE};
use crate::persist::{self, write_atomic_bytes, PersistError};
use crate::query::QueryFilter;
use crate::topk::{CentroidHandle, TopKIndex};
use crate::track::{TrackKey, TrackSketch};

/// Default capacity of the decoded-block LRU cache, in entries. An entry is
/// one decoded unit — a whole segment index, a footer, a record block or a
/// postings block — so block-granular binary reads get a much deeper cache
/// than the old whole-segment-only LRU at similar memory.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Default capacity of the raw-bytes LRU tier, in bytes.
pub const DEFAULT_RAW_CACHE_BYTES: u64 = 8 * 1024 * 1024;

/// How many recently-cold segment ids the cache remembers for
/// [`SegmentStore::prefetch_adjacent`].
const RECENT_COLD_CAP: usize = 32;

/// Errors produced by the segment store.
#[derive(Debug)]
pub enum SegmentError {
    /// Reading or writing a snapshot/manifest failed (carries the path).
    Persist(PersistError),
    /// A segment file's bytes (or one of its blocks) do not match the
    /// recorded checksum (torn write or bit rot).
    Corrupt {
        /// The corrupt segment file.
        path: PathBuf,
        /// Checksum recorded in the manifest (or the segment's footer, for
        /// block-level reads).
        expected: u64,
        /// Checksum of the bytes actually on disk.
        found: u64,
    },
    /// A binary segment file could not be parsed (bad magic, truncation, or
    /// a structural invariant failure).
    InvalidSegment {
        /// The unparsable segment file.
        path: PathBuf,
        /// What the binary decoder rejected.
        source: BinsegError,
    },
    /// A segment id was requested that the manifest does not list.
    UnknownSegment {
        /// The requested id.
        id: u64,
    },
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Persist(e) => write!(f, "segment store: {e}"),
            SegmentError::Corrupt {
                path,
                expected,
                found,
            } => write!(
                f,
                "segment store: corrupt segment `{}`: checksum {found:#018x}, expected {expected:#018x}",
                path.display()
            ),
            SegmentError::InvalidSegment { path, source } => write!(
                f,
                "segment store: invalid segment `{}`: {source}",
                path.display()
            ),
            SegmentError::UnknownSegment { id } => {
                write!(f, "segment store: unknown segment id {id}")
            }
        }
    }
}

impl std::error::Error for SegmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegmentError::Persist(e) => Some(e),
            SegmentError::InvalidSegment { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<PersistError> for SegmentError {
    fn from(e: PersistError) -> Self {
        SegmentError::Persist(e)
    }
}

/// What [`SegmentStore::open`] had to repair: files that were present but
/// untrusted (quarantined by renaming to `<name>.quarantined`) and stray
/// temp files from interrupted writes (deleted).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Segment files moved aside instead of loaded: manifest-listed files
    /// whose checksum did not match (corrupt), plus complete-looking segment
    /// files the manifest never acknowledged (orphans from a crash between
    /// segment rename and manifest update).
    pub quarantined: Vec<String>,
    /// Manifest-listed segments whose file was missing entirely (dropped
    /// from the manifest; nothing on disk to quarantine).
    pub missing: Vec<String>,
    /// Leftover `*.tmp` files from interrupted atomic writes, deleted.
    pub removed_temp: Vec<String>,
}

impl OpenReport {
    /// Whether the store opened without finding anything to repair.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.missing.is_empty() && self.removed_temp.is_empty()
    }
}

/// Per-call account of what a pruned lookup touched: how many segments the
/// store holds, how many survived pruning, how the opened ones were served
/// (cold disk load vs cache), and at block granularity how many block
/// fetches went to disk vs either cache tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentAccess {
    /// Live segments in the store at lookup time.
    pub segments_total: usize,
    /// Segments whose bounds intersected the filter (the rest were pruned
    /// without being opened).
    pub segments_considered: usize,
    /// Considered segments that needed at least one disk read.
    pub cold_loads: usize,
    /// Considered segments served entirely from the cache tiers.
    pub cache_hits: usize,
    /// Bytes read from disk for the cold loads.
    pub bytes_read: u64,
    /// Block fetches that went to disk (a whole-file JSON read counts as
    /// one block).
    pub blocks_read: usize,
    /// Block fetches served by re-decoding bytes from the raw tier.
    pub block_raw_hits: usize,
    /// Block fetches served from the decoded tier.
    pub block_hits: usize,
}

impl SegmentAccess {
    /// Segments actually opened (cold or cached).
    pub fn segments_opened(&self) -> usize {
        self.cold_loads + self.cache_hits
    }

    /// Segments skipped by pruning.
    pub fn segments_pruned(&self) -> usize {
        self.segments_total - self.segments_considered
    }

    /// Accumulates another access report into this one.
    pub fn merge(&mut self, other: &SegmentAccess) {
        // `segments_total` is a store-level snapshot, not additive.
        self.segments_total = self.segments_total.max(other.segments_total);
        self.segments_considered += other.segments_considered;
        self.cold_loads += other.cold_loads;
        self.cache_hits += other.cache_hits;
        self.bytes_read += other.bytes_read;
        self.blocks_read += other.blocks_read;
        self.block_raw_hits += other.block_raw_hits;
        self.block_hits += other.block_hits;
    }
}

/// Occupancy and hit-rate snapshot of the two cache tiers, as returned by
/// [`SegmentStore::cache_occupancy`] — what a serving layer folds into its
/// stats to see how much of the working set is resident and where cold
/// reads actually land.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LruOccupancy {
    /// Decoded entries currently resident (whole indexes, footers, record
    /// and postings blocks).
    pub occupancy: usize,
    /// Maximum decoded entries the cache holds.
    pub capacity: usize,
    /// Bytes currently resident in the raw tier.
    #[serde(default)]
    pub raw_occupancy_bytes: u64,
    /// Byte capacity of the raw tier (0 disables it).
    #[serde(default)]
    pub raw_capacity_bytes: u64,
    /// Entries currently resident in the raw tier.
    #[serde(default)]
    pub raw_entries: usize,
    /// Cumulative fetches served from the decoded tier.
    #[serde(default)]
    pub decoded_hits: u64,
    /// Cumulative fetches served by re-decoding raw-tier bytes.
    #[serde(default)]
    pub raw_hits: u64,
    /// Cumulative fetches that went to disk.
    #[serde(default)]
    pub disk_reads: u64,
}

impl LruOccupancy {
    /// Fraction of the decoded tier in use (0.0 for an unbounded-but-empty
    /// cache).
    pub fn fill_fraction(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.occupancy as f64 / self.capacity as f64
        }
    }

    /// Fraction of the raw tier's byte budget in use.
    pub fn raw_fill_fraction(&self) -> f64 {
        if self.raw_capacity_bytes == 0 {
            0.0
        } else {
            self.raw_occupancy_bytes as f64 / self.raw_capacity_bytes as f64
        }
    }

    /// Fraction of all fetches served from the decoded tier (0.0 before any
    /// fetch).
    pub fn decoded_hit_rate(&self) -> f64 {
        let total = self.decoded_hits + self.raw_hits + self.disk_reads;
        if total == 0 {
            0.0
        } else {
            self.decoded_hits as f64 / total as f64
        }
    }

    /// Fraction of decoded-tier misses rescued by the raw tier (0.0 before
    /// any miss).
    pub fn raw_hit_rate(&self) -> f64 {
        let misses = self.raw_hits + self.disk_reads;
        if misses == 0 {
            0.0
        } else {
            self.raw_hits as f64 / misses as f64
        }
    }
}

/// The result of a pruned lookup: the matching records (sorted by cluster
/// key, exactly as [`TopKIndex::lookup`] on the merged index would return
/// them) plus the access account.
#[derive(Debug, Clone)]
pub struct SegmentLookup {
    /// Matching cluster records, sorted by key.
    pub records: Vec<ClusterRecord>,
    /// What the lookup touched.
    pub access: SegmentAccess,
}

/// The result of a pruned lookup kept grouped by contributing segment:
/// one `(segment id, records)` entry per segment that matched the filter
/// and contributed at least one record, in manifest (seal) order.
/// Flattening the groups and sorting by cluster key reproduces
/// [`SegmentLookup::records`] exactly — segments are key-disjoint, so the
/// groups partition the result set. This is the shape the anytime query
/// planner consumes: each group is one sampling chunk.
#[derive(Debug, Clone)]
pub struct GroupedLookup {
    /// Per-segment record groups, manifest order, empty groups omitted.
    pub groups: Vec<(u64, Vec<ClusterRecord>)>,
    /// What the lookup touched (summed across all opened segments).
    pub access: SegmentAccess,
}

/// What a cache entry holds for one segment: the whole decoded index, its
/// footer, one record block, or one class's postings block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BlockKey {
    Whole,
    Footer,
    Records(u32),
    Postings(u16),
    Tracks,
}

type CacheKey = (u64, BlockKey);

/// A decoded unit in the top cache tier.
#[derive(Debug, Clone)]
enum DecodedEntry {
    Whole(Arc<TopKIndex>),
    Footer(Arc<SegmentFooter>),
    Records(Arc<Vec<ClusterRecord>>),
    Postings(Arc<Vec<ClusterKey>>),
    Tracks(Arc<Vec<TrackSketch>>),
}

/// The two-tier cache: a decoded-block LRU (entry-capped) above a raw-bytes
/// LRU (byte-capped). A decoded miss that hits the raw tier costs a
/// re-decode instead of a disk read; only a miss in both goes to disk.
#[derive(Debug)]
struct TieredCache {
    decoded_capacity: usize,
    decoded_order: VecDeque<CacheKey>,
    decoded: HashMap<CacheKey, DecodedEntry>,
    raw_capacity: u64,
    raw_used: u64,
    raw_order: VecDeque<CacheKey>,
    raw: HashMap<CacheKey, Arc<Vec<u8>>>,
    decoded_hits: u64,
    raw_hits: u64,
    disk_reads: u64,
    /// Segment ids that recently went to disk on the query path, feeding
    /// adjacency prefetch. Deduplicated, capped, drained by
    /// [`SegmentStore::prefetch_adjacent`].
    recent_cold: VecDeque<u64>,
}

impl TieredCache {
    fn new(decoded_capacity: usize, raw_capacity: u64) -> Self {
        Self {
            decoded_capacity: decoded_capacity.max(1),
            decoded_order: VecDeque::new(),
            decoded: HashMap::new(),
            raw_capacity,
            raw_used: 0,
            raw_order: VecDeque::new(),
            raw: HashMap::new(),
            decoded_hits: 0,
            raw_hits: 0,
            disk_reads: 0,
            recent_cold: VecDeque::new(),
        }
    }

    fn touch(order: &mut VecDeque<CacheKey>, key: CacheKey) {
        if let Some(pos) = order.iter().position(|x| *x == key) {
            order.remove(pos);
        }
        order.push_back(key);
    }

    fn decoded_get(&mut self, key: CacheKey) -> Option<DecodedEntry> {
        let entry = self.decoded.get(&key)?.clone();
        Self::touch(&mut self.decoded_order, key);
        self.decoded_hits += 1;
        Some(entry)
    }

    fn decoded_contains(&self, key: CacheKey) -> bool {
        self.decoded.contains_key(&key)
    }

    fn decoded_insert(&mut self, key: CacheKey, entry: DecodedEntry) {
        if self.decoded.insert(key, entry).is_none() {
            self.decoded_order.push_back(key);
        } else {
            Self::touch(&mut self.decoded_order, key);
        }
        while self.decoded.len() > self.decoded_capacity {
            if let Some(evicted) = self.decoded_order.pop_front() {
                self.decoded.remove(&evicted);
            }
        }
    }

    fn raw_get(&mut self, key: CacheKey) -> Option<Arc<Vec<u8>>> {
        let bytes = Arc::clone(self.raw.get(&key)?);
        Self::touch(&mut self.raw_order, key);
        self.raw_hits += 1;
        Some(bytes)
    }

    fn raw_insert(&mut self, key: CacheKey, bytes: Arc<Vec<u8>>) {
        let len = bytes.len() as u64;
        // An entry bigger than the whole tier would evict everything for
        // nothing; skip it (and everything, when the tier is disabled).
        if len > self.raw_capacity {
            return;
        }
        if let Some(old) = self.raw.insert(key, bytes) {
            self.raw_used -= old.len() as u64;
            Self::touch(&mut self.raw_order, key);
        } else {
            self.raw_order.push_back(key);
        }
        self.raw_used += len;
        while self.raw_used > self.raw_capacity {
            if let Some(evicted) = self.raw_order.pop_front() {
                if let Some(old) = self.raw.remove(&evicted) {
                    self.raw_used -= old.len() as u64;
                }
            }
        }
    }

    /// Drops every entry (both tiers) belonging to segment `id`.
    fn remove_segment(&mut self, id: u64) {
        self.decoded_order.retain(|k| k.0 != id);
        self.decoded.retain(|k, _| k.0 != id);
        self.raw_order.retain(|k| k.0 != id);
        let raw_used = &mut self.raw_used;
        self.raw.retain(|k, v| {
            if k.0 == id {
                *raw_used -= v.len() as u64;
                false
            } else {
                true
            }
        });
        self.recent_cold.retain(|x| *x != id);
    }

    /// Drops segment `id`'s raw-tier bytes only (its decoded entries stay
    /// valid — used when migration rewrites the file under a new format).
    fn remove_raw_segment(&mut self, id: u64) {
        self.raw_order.retain(|k| k.0 != id);
        let raw_used = &mut self.raw_used;
        self.raw.retain(|k, v| {
            if k.0 == id {
                *raw_used -= v.len() as u64;
                false
            } else {
                true
            }
        });
    }

    fn note_cold(&mut self, id: u64) {
        if self.recent_cold.contains(&id) {
            return;
        }
        if self.recent_cold.len() >= RECENT_COLD_CAP {
            self.recent_cold.pop_front();
        }
        self.recent_cold.push_back(id);
    }

    fn take_recent_cold(&mut self) -> Vec<u64> {
        self.recent_cold.drain(..).collect()
    }

    fn occupancy(&self) -> LruOccupancy {
        LruOccupancy {
            occupancy: self.decoded.len(),
            capacity: self.decoded_capacity,
            raw_occupancy_bytes: self.raw_used,
            raw_capacity_bytes: self.raw_capacity,
            raw_entries: self.raw.len(),
            decoded_hits: self.decoded_hits,
            raw_hits: self.raw_hits,
            disk_reads: self.disk_reads,
        }
    }
}

/// How a whole-segment load was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadServed {
    /// Straight from the decoded tier.
    Decoded,
    /// Re-decoded from raw-tier bytes (no disk).
    Raw,
    /// Read from disk.
    Disk,
}

/// A lazily opened read handle on one segment file. A block-granular
/// lookup may read several ranges of the same file; opening it once and
/// seeking keeps the cold path at one `open` syscall per segment instead
/// of one per block.
struct SegmentFile<'a> {
    path: &'a Path,
    file: Option<fs::File>,
}

impl<'a> SegmentFile<'a> {
    fn new(path: &'a Path) -> Self {
        Self { path, file: None }
    }

    fn io_err(&self, source: std::io::Error) -> SegmentError {
        SegmentError::Persist(PersistError::Io {
            path: self.path.to_path_buf(),
            source,
        })
    }

    /// The open descriptor, opening the file on first use.
    fn open(&mut self) -> Result<&mut fs::File, SegmentError> {
        if self.file.is_none() {
            let file = fs::File::open(self.path).map_err(|e| self.io_err(e))?;
            self.file = Some(file);
        }
        Ok(self.file.as_mut().expect("just opened"))
    }

    /// Total length of the file in bytes.
    fn len(&mut self) -> Result<u64, SegmentError> {
        let metadata = self.open()?.metadata();
        metadata.map(|m| m.len()).map_err(|e| self.io_err(e))
    }

    /// Reads `len` bytes at `offset`.
    fn read_range(&mut self, offset: u64, len: usize) -> Result<Vec<u8>, SegmentError> {
        let file = self.open()?;
        if let Err(source) = file.seek(SeekFrom::Start(offset)) {
            return Err(self.io_err(source));
        }
        let mut buf = vec![0u8; len];
        match file.read_exact(&mut buf) {
            Ok(()) => Ok(buf),
            Err(source) => Err(self.io_err(source)),
        }
    }
}

/// A durable, time-partitioned index store (see the module docs for the
/// on-disk layout and durability protocol).
///
/// All mutations (`seal`, `compact`, `migrate_format`) take `&mut self` and
/// serialize their atomic writes; reads (`load`, `lookup`,
/// `prefetch_adjacent`) take `&self` and share the tiered cache behind a
/// mutex, so a store can serve concurrent queries.
///
/// # Examples
///
/// ```
/// use focus_index::{ClusterKey, ClusterRecord, MemberRef, QueryFilter, SegmentStore, TopKIndex};
/// use focus_video::{ClassId, FrameId, ObjectId, StreamId, TrackId};
///
/// let dir = std::env::temp_dir().join("focus_segment_doc_example");
/// let _ = std::fs::remove_dir_all(&dir);
/// let mut store = SegmentStore::create(&dir).unwrap();
///
/// // Seal two single-record segments covering different time windows.
/// for (local, start) in [(0u64, 0.0f64), (1, 100.0)] {
///     let mut seg = TopKIndex::new();
///     seg.insert(ClusterRecord {
///         key: ClusterKey::new(StreamId(0), local),
///         centroid_object: ObjectId(local),
///         centroid_frame: FrameId(local),
///         top_k_classes: vec![ClassId(7)],
///         members: vec![MemberRef { object: ObjectId(local), frame: FrameId(local), track: TrackId(0) }],
///         start_secs: start,
///         end_secs: start + 10.0,
///     });
///     store.seal(&seg).unwrap();
/// }
///
/// // A time-restricted lookup opens only the intersecting segment.
/// let early = QueryFilter::any().with_time_range(0.0, 20.0);
/// let hit = store.lookup(ClassId(7), &early).unwrap();
/// assert_eq!(hit.records.len(), 1);
/// assert_eq!(hit.access.segments_considered, 1);
/// assert_eq!(hit.access.segments_pruned(), 1);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    manifest: Manifest,
    seal_format: SegmentFormat,
    cache: Mutex<TieredCache>,
}

// The query layer shares one store across its worker threads; keep the
// store's cross-thread shareability an explicit API guarantee.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SegmentStore>();
};

impl SegmentStore {
    /// Creates a fresh, empty store at `dir` (creating the directory if
    /// needed) and writes its initial manifest. New segments seal in the
    /// binary format unless [`with_seal_format`](Self::with_seal_format)
    /// pins JSON.
    ///
    /// Fails with an I/O error if `dir` already contains a manifest — use
    /// [`open`](Self::open) for an existing store.
    pub fn create(dir: impl Into<PathBuf>) -> Result<SegmentStore, SegmentError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| {
            SegmentError::Persist(PersistError::Io {
                path: dir.clone(),
                source,
            })
        })?;
        let manifest_path = dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            return Err(SegmentError::Persist(PersistError::Io {
                path: manifest_path,
                source: std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    "store already exists; use SegmentStore::open",
                ),
            }));
        }
        let manifest = Manifest::new();
        manifest.save(&manifest_path)?;
        Ok(SegmentStore {
            dir,
            manifest,
            seal_format: SegmentFormat::Binary,
            cache: Mutex::new(TieredCache::new(
                DEFAULT_CACHE_CAPACITY,
                DEFAULT_RAW_CACHE_BYTES,
            )),
        })
    }

    /// Opens an existing store, verifying it and repairing crash leftovers:
    /// stray `*.tmp` files are deleted, manifest-listed segments whose bytes
    /// fail their checksum are quarantined (renamed to `<name>.quarantined`
    /// and dropped from the manifest), and complete segment files the
    /// manifest never acknowledged are quarantined too. The returned
    /// [`OpenReport`] lists every repair.
    pub fn open(dir: impl Into<PathBuf>) -> Result<(SegmentStore, OpenReport), SegmentError> {
        let dir = dir.into();
        let manifest_path = dir.join(MANIFEST_FILE);
        let mut manifest = Manifest::load(&manifest_path)?;
        let mut report = OpenReport::default();

        // Verify every listed segment's bytes against its checksum.
        let listed_count = manifest.segments.len();
        let mut verified = Vec::with_capacity(listed_count);
        for meta in std::mem::take(&mut manifest.segments) {
            let path = dir.join(&meta.file);
            match fs::read(&path) {
                Ok(bytes) if fnv1a64(&bytes) == meta.checksum => verified.push(meta),
                Ok(_) => {
                    // Torn or rotted: move aside for post-mortem, never load.
                    let _ = fs::rename(&path, quarantine_path(&path));
                    report.quarantined.push(meta.file);
                }
                // Only a confirmed absence may delist a segment. Any other
                // read failure (permissions, fd exhaustion, transient I/O)
                // aborts the open: dropping a healthy segment from the
                // manifest over a transient error would be permanent.
                Err(source) if source.kind() == std::io::ErrorKind::NotFound => {
                    report.missing.push(meta.file)
                }
                Err(source) => {
                    return Err(SegmentError::Persist(PersistError::Io { path, source }))
                }
            }
        }
        let entries_dropped = verified.len() != listed_count;
        manifest.segments = verified;

        // Sweep the directory for crash leftovers: interrupted temp writes
        // and complete segments (either format) the manifest never
        // acknowledged.
        let listed: HashMap<&str, ()> = manifest
            .segments
            .iter()
            .map(|m| (m.file.as_str(), ()))
            .collect();
        if let Ok(entries) = fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                let path = entry.path();
                if name.ends_with(".tmp") {
                    let _ = fs::remove_file(&path);
                    report.removed_temp.push(name);
                } else if name.starts_with("seg-")
                    && (name.ends_with(".json") || name.ends_with(".bin"))
                    && !listed.contains_key(name.as_str())
                {
                    let _ = fs::rename(&path, quarantine_path(&path));
                    report.quarantined.push(name);
                }
            }
        }

        if entries_dropped {
            manifest.save(&manifest_path)?;
        }
        Ok((
            SegmentStore {
                dir,
                manifest,
                seal_format: SegmentFormat::Binary,
                cache: Mutex::new(TieredCache::new(
                    DEFAULT_CACHE_CAPACITY,
                    DEFAULT_RAW_CACHE_BYTES,
                )),
            },
            report,
        ))
    }

    /// Returns the store with the decoded-block LRU capacity set to
    /// `capacity` entries (minimum 1; the default is
    /// [`DEFAULT_CACHE_CAPACITY`]).
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        let raw_capacity = self.cache.lock().unwrap().raw_capacity;
        SegmentStore {
            cache: Mutex::new(TieredCache::new(capacity, raw_capacity)),
            ..self
        }
    }

    /// Returns the store with the raw-bytes tier capped at `bytes` (0
    /// disables the tier; the default is [`DEFAULT_RAW_CACHE_BYTES`]).
    pub fn with_raw_capacity(self, bytes: u64) -> Self {
        let decoded_capacity = self.cache.lock().unwrap().decoded_capacity;
        SegmentStore {
            cache: Mutex::new(TieredCache::new(decoded_capacity, bytes)),
            ..self
        }
    }

    /// Returns the store sealing new segments in `format` (the default is
    /// [`SegmentFormat::Binary`]; pin [`SegmentFormat::Json`] for the
    /// debug/migration reader).
    pub fn with_seal_format(mut self, format: SegmentFormat) -> Self {
        self.seal_format = format;
        self
    }

    /// The format new segments seal in.
    pub fn seal_format(&self) -> SegmentFormat {
        self.seal_format
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The live segments, in seal order.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.manifest.segments
    }

    /// Number of live segments.
    pub fn len(&self) -> usize {
        self.manifest.segments.len()
    }

    /// Whether the store holds no segments.
    pub fn is_empty(&self) -> bool {
        self.manifest.segments.is_empty()
    }

    /// Total cluster records across all live segments.
    pub fn total_clusters(&self) -> usize {
        self.manifest.segments.iter().map(|s| s.clusters).sum()
    }

    /// Occupancy and hit rates of both cache tiers.
    pub fn cache_occupancy(&self) -> LruOccupancy {
        self.cache.lock().unwrap().occupancy()
    }

    /// Serializes `index` in `format`.
    fn encode_payload(index: &TopKIndex, format: SegmentFormat) -> Result<Vec<u8>, SegmentError> {
        Ok(match format {
            SegmentFormat::Json => persist::to_json(index)?.into_bytes(),
            SegmentFormat::Binary => binseg::encode(index),
        })
    }

    /// Decodes a whole segment's bytes per its manifest format tag.
    fn decode_segment(&self, meta: &SegmentMeta, bytes: &[u8]) -> Result<TopKIndex, SegmentError> {
        match meta.format {
            SegmentFormat::Json => {
                let json = String::from_utf8_lossy(bytes);
                persist::from_json(&json).map_err(|e| {
                    SegmentError::Persist(match e {
                        PersistError::Format { source, .. } => PersistError::Format {
                            path: Some(self.dir.join(&meta.file)),
                            source,
                        },
                        other => other,
                    })
                })
            }
            SegmentFormat::Binary => {
                binseg::decode(bytes).map_err(|source| SegmentError::InvalidSegment {
                    path: self.dir.join(&meta.file),
                    source,
                })
            }
        }
    }

    /// Seals `index` as one new immutable segment: writes the segment file
    /// atomically, then commits it to the manifest. An empty index seals
    /// nothing and returns `Ok(None)`.
    ///
    /// The segment's time bounds are the tight cover of the records' time
    /// ranges and its stream list is exactly the records' streams, which is
    /// what makes later pruning sound (see [`SegmentMeta::admits_filter`]).
    pub fn seal(&mut self, index: &TopKIndex) -> Result<Option<SegmentMeta>, SegmentError> {
        if index.is_empty() {
            return Ok(None);
        }
        let mut t_start = f64::INFINITY;
        let mut t_end = f64::NEG_INFINITY;
        for record in index.clusters() {
            t_start = t_start.min(record.start_secs);
            t_end = t_end.max(record.end_secs);
        }
        let id = self.manifest.allocate_id();
        let format = self.seal_format;
        let file = format.file_name(id);
        let payload = Self::encode_payload(index, format)?;
        let meta = SegmentMeta {
            id,
            file: file.clone(),
            t_start,
            t_end,
            streams: index.streams(),
            clusters: index.len(),
            checksum: fnv1a64(&payload),
            format,
        };
        let path = self.dir.join(&file);
        write_atomic_bytes(&path, &payload)
            .map_err(|source| SegmentError::Persist(PersistError::Io { path, source }))?;
        self.manifest.segments.push(meta.clone());
        self.manifest.save(&self.dir.join(MANIFEST_FILE))?;
        Ok(Some(meta))
    }

    /// Loads segment `id`, serving it from the cache tiers when possible
    /// and verifying the manifest checksum on every cold load.
    pub fn load(&self, id: u64) -> Result<Arc<TopKIndex>, SegmentError> {
        let meta = self
            .manifest
            .segment(id)
            .ok_or(SegmentError::UnknownSegment { id })?;
        let (index, _, _) = self.load_counted(meta, true)?;
        Ok(index)
    }

    /// Loads a whole segment through the cache tiers; returns the decoded
    /// index, how it was served, and the bytes read (zero off-disk).
    fn load_counted(
        &self,
        meta: &SegmentMeta,
        note_cold: bool,
    ) -> Result<(Arc<TopKIndex>, LoadServed, u64), SegmentError> {
        let key = (meta.id, BlockKey::Whole);
        let raw = {
            let mut cache = self.cache.lock().unwrap();
            if let Some(DecodedEntry::Whole(index)) = cache.decoded_get(key) {
                return Ok((index, LoadServed::Decoded, 0));
            }
            cache.raw_get(key)
        };
        if let Some(bytes) = raw {
            let index = Arc::new(self.decode_segment(meta, &bytes)?);
            self.cache
                .lock()
                .unwrap()
                .decoded_insert(key, DecodedEntry::Whole(Arc::clone(&index)));
            return Ok((index, LoadServed::Raw, 0));
        }
        let path = self.dir.join(&meta.file);
        let bytes = fs::read(&path).map_err(|source| {
            SegmentError::Persist(PersistError::Io {
                path: path.clone(),
                source,
            })
        })?;
        let found = fnv1a64(&bytes);
        if found != meta.checksum {
            return Err(SegmentError::Corrupt {
                path,
                expected: meta.checksum,
                found,
            });
        }
        let index = Arc::new(self.decode_segment(meta, &bytes)?);
        let len = bytes.len() as u64;
        let mut cache = self.cache.lock().unwrap();
        cache.disk_reads += 1;
        if note_cold {
            cache.note_cold(meta.id);
        }
        cache.raw_insert(key, Arc::new(bytes));
        cache.decoded_insert(key, DecodedEntry::Whole(Arc::clone(&index)));
        Ok((index, LoadServed::Disk, len))
    }

    /// The footer of a binary segment: from the decoded tier when resident,
    /// otherwise a trailer + footer range read (never the whole file).
    fn binary_footer(
        &self,
        meta: &SegmentMeta,
        file: &mut SegmentFile<'_>,
        access: &mut SegmentAccess,
        touched_disk: &mut bool,
    ) -> Result<Arc<SegmentFooter>, SegmentError> {
        let key = (meta.id, BlockKey::Footer);
        if let Some(DecodedEntry::Footer(footer)) = self.cache.lock().unwrap().decoded_get(key) {
            access.block_hits += 1;
            return Ok(footer);
        }
        let invalid = |source| SegmentError::InvalidSegment {
            path: file.path.to_path_buf(),
            source,
        };
        let file_len = file.len()?;
        if (file_len as usize) < binseg::BINSEG_MAGIC.len() + binseg::TRAILER_LEN {
            return Err(invalid(BinsegError::Truncated));
        }
        let trailer_offset = file_len - binseg::TRAILER_LEN as u64;
        let trailer = file.read_range(trailer_offset, binseg::TRAILER_LEN)?;
        let (offset, len, checksum, version) = binseg::parse_trailer(&trailer).map_err(invalid)?;
        if offset
            .checked_add(len)
            .is_none_or(|end| end > trailer_offset)
        {
            return Err(invalid(BinsegError::Truncated));
        }
        let footer_bytes = file.read_range(offset, len as usize)?;
        let found = fnv1a64(&footer_bytes);
        if found != checksum {
            return Err(SegmentError::Corrupt {
                path: file.path.to_path_buf(),
                expected: checksum,
                found,
            });
        }
        let footer = Arc::new(binseg::decode_footer(&footer_bytes, version).map_err(invalid)?);
        access.blocks_read += 1;
        access.bytes_read += binseg::TRAILER_LEN as u64 + len;
        *touched_disk = true;
        let mut cache = self.cache.lock().unwrap();
        cache.disk_reads += 1;
        cache.decoded_insert(key, DecodedEntry::Footer(Arc::clone(&footer)));
        Ok(footer)
    }

    /// One verified block of a binary segment, through both cache tiers.
    /// `decode` turns verified raw bytes into the decoded entry; `extract`
    /// pulls the typed payload back out of a cached entry.
    #[allow(clippy::too_many_arguments)]
    fn binary_block<T>(
        &self,
        meta: &SegmentMeta,
        file: &mut SegmentFile<'_>,
        key: BlockKey,
        offset: u64,
        len: u64,
        checksum: u64,
        access: &mut SegmentAccess,
        touched_disk: &mut bool,
        decode: impl Fn(&[u8]) -> Result<T, BinsegError>,
        wrap: impl Fn(Arc<T>) -> DecodedEntry,
        extract: impl Fn(DecodedEntry) -> Option<Arc<T>>,
    ) -> Result<Arc<T>, SegmentError> {
        let cache_key = (meta.id, key);
        let raw = {
            let mut cache = self.cache.lock().unwrap();
            if let Some(entry) = cache.decoded_get(cache_key) {
                if let Some(value) = extract(entry) {
                    access.block_hits += 1;
                    return Ok(value);
                }
            }
            cache.raw_get(cache_key)
        };
        let invalid = |source| SegmentError::InvalidSegment {
            path: file.path.to_path_buf(),
            source,
        };
        if let Some(bytes) = raw {
            let value = Arc::new(decode(&bytes).map_err(invalid)?);
            access.block_raw_hits += 1;
            self.cache
                .lock()
                .unwrap()
                .decoded_insert(cache_key, wrap(Arc::clone(&value)));
            return Ok(value);
        }
        let bytes = file.read_range(offset, len as usize)?;
        let found = fnv1a64(&bytes);
        if found != checksum {
            return Err(SegmentError::Corrupt {
                path: file.path.to_path_buf(),
                expected: checksum,
                found,
            });
        }
        let value = Arc::new(decode(&bytes).map_err(invalid)?);
        access.blocks_read += 1;
        access.bytes_read += len;
        *touched_disk = true;
        let mut cache = self.cache.lock().unwrap();
        cache.disk_reads += 1;
        cache.note_cold(meta.id);
        cache.raw_insert(cache_key, Arc::new(bytes));
        cache.decoded_insert(cache_key, wrap(Arc::clone(&value)));
        Ok(value)
    }

    /// Block-granular lookup in one binary segment: trailer/footer, the
    /// class's postings block, then only the record blocks covering the
    /// candidate keys — each read verified against its footer checksum.
    fn lookup_binary(
        &self,
        meta: &SegmentMeta,
        class: ClassId,
        filter: &QueryFilter,
        access: &mut SegmentAccess,
        out: &mut Vec<ClusterRecord>,
    ) -> Result<(), SegmentError> {
        let mut touched_disk = false;
        // One descriptor serves every cold block of this lookup: the cache
        // tiers absorb repeats, so re-opening the file per block would only
        // add syscalls to the cold path.
        let path = self.dir.join(&meta.file);
        let mut file = SegmentFile::new(&path);
        let footer = self.binary_footer(meta, &mut file, access, &mut touched_disk)?;
        if let Some(pmeta) = footer.postings_for(class).copied() {
            let keys = self.binary_block(
                meta,
                &mut file,
                BlockKey::Postings(class.0),
                pmeta.offset,
                pmeta.len,
                pmeta.checksum,
                access,
                &mut touched_disk,
                binseg::decode_postings_block,
                DecodedEntry::Postings,
                |entry| match entry {
                    DecodedEntry::Postings(keys) => Some(keys),
                    _ => None,
                },
            )?;
            // A stream restriction narrows the candidate keys before any
            // record block is chosen — fewer blocks read, fewer bytes.
            let narrowed: Vec<ClusterKey>;
            let candidates: &[ClusterKey] = match &filter.streams {
                Some(streams) => {
                    narrowed = keys
                        .iter()
                        .copied()
                        .filter(|k| streams.contains(&k.stream))
                        .collect();
                    &narrowed
                }
                None => &keys,
            };
            for block_idx in footer.blocks_covering(candidates) {
                let bmeta = footer.record_blocks[block_idx];
                let records = self.binary_block(
                    meta,
                    &mut file,
                    BlockKey::Records(block_idx as u32),
                    bmeta.offset,
                    bmeta.len,
                    bmeta.checksum,
                    access,
                    &mut touched_disk,
                    |block| binseg::decode_record_block(block, footer.version),
                    DecodedEntry::Records,
                    |entry| match entry {
                        DecodedEntry::Records(records) => Some(records),
                        _ => None,
                    },
                )?;
                for record in records.iter() {
                    if candidates.binary_search(&record.key).is_err() {
                        continue;
                    }
                    if let Some(kx) = filter.kx {
                        if !record.matches_class(class, kx) {
                            continue;
                        }
                    }
                    if filter.admits(record) {
                        out.push(record.clone());
                    }
                }
            }
        }
        if touched_disk {
            access.cold_loads += 1;
        } else {
            access.cache_hits += 1;
        }
        Ok(())
    }

    /// The segments whose bounds intersect `filter` — the ones a query must
    /// open; everything else is pruned.
    pub fn segments_for(&self, filter: &QueryFilter) -> Vec<SegmentMeta> {
        self.manifest
            .segments
            .iter()
            .filter(|m| m.admits_filter(filter))
            .cloned()
            .collect()
    }

    /// Pruned lookup: opens only the segments intersecting `filter`, runs
    /// [`TopKIndex::lookup`] in each (reading only the needed blocks of
    /// binary segments), and returns the union sorted by cluster key —
    /// byte-identical to looking `class` up in the merged in-memory index
    /// (segments are key-disjoint, so no deduplication across segments is
    /// ever needed).
    pub fn lookup(
        &self,
        class: ClassId,
        filter: &QueryFilter,
    ) -> Result<SegmentLookup, SegmentError> {
        let GroupedLookup { groups, access } = self.lookup_grouped(class, filter)?;
        let mut records: Vec<ClusterRecord> = groups
            .into_iter()
            .flat_map(|(_, records)| records)
            .collect();
        records.sort_by_key(|r| r.key);
        // Segments are key-disjoint by construction; a duplicate here means
        // a corrupt store, and silently dropping one record would mask it —
        // fail as loudly as merged_index() does.
        assert!(
            records.windows(2).all(|w| w[0].key != w[1].key),
            "segments must be key-disjoint"
        );
        Ok(SegmentLookup { records, access })
    }

    /// The same pruned lookup as [`lookup`](Self::lookup), but keeping each
    /// contributing segment's records as a separate group (manifest order,
    /// empty groups dropped) instead of flattening into one sorted run.
    /// The anytime query planner samples these groups as chunks.
    pub fn lookup_grouped(
        &self,
        class: ClassId,
        filter: &QueryFilter,
    ) -> Result<GroupedLookup, SegmentError> {
        let mut access = SegmentAccess {
            segments_total: self.manifest.segments.len(),
            ..SegmentAccess::default()
        };
        let mut groups: Vec<(u64, Vec<ClusterRecord>)> = Vec::new();
        for meta in self
            .manifest
            .segments
            .iter()
            .filter(|m| m.admits_filter(filter))
        {
            access.segments_considered += 1;
            let mut records: Vec<ClusterRecord> = Vec::new();
            // Whichever the format, a resident whole index is the fastest
            // path: no block navigation at all.
            if let Some(DecodedEntry::Whole(index)) = self
                .cache
                .lock()
                .unwrap()
                .decoded_get((meta.id, BlockKey::Whole))
            {
                access.cache_hits += 1;
                access.block_hits += 1;
                records.extend(index.lookup(class, filter).into_iter().cloned());
                if !records.is_empty() {
                    groups.push((meta.id, records));
                }
                continue;
            }
            match meta.format {
                SegmentFormat::Json => {
                    let (index, served, bytes) = self.load_counted(meta, true)?;
                    match served {
                        LoadServed::Disk => {
                            access.cold_loads += 1;
                            access.blocks_read += 1;
                            access.bytes_read += bytes;
                        }
                        LoadServed::Raw => {
                            access.cache_hits += 1;
                            access.block_raw_hits += 1;
                        }
                        LoadServed::Decoded => {
                            access.cache_hits += 1;
                            access.block_hits += 1;
                        }
                    }
                    records.extend(index.lookup(class, filter).into_iter().cloned());
                }
                SegmentFormat::Binary => {
                    self.lookup_binary(meta, class, filter, &mut access, &mut records)?
                }
            }
            if !records.is_empty() {
                groups.push((meta.id, records));
            }
        }
        Ok(GroupedLookup { groups, access })
    }

    /// Like [`lookup`](Self::lookup), but returns stable
    /// [`CentroidHandle`]s — the shape the query-planning layer consumes.
    pub fn lookup_centroids(
        &self,
        class: ClassId,
        filter: &QueryFilter,
    ) -> Result<(Vec<CentroidHandle>, SegmentAccess), SegmentError> {
        let SegmentLookup { records, access } = self.lookup(class, filter)?;
        let handles = records
            .iter()
            .map(|record| CentroidHandle {
                cluster: record.key,
                centroid: record.centroid_object,
                centroid_frame: record.centroid_frame,
            })
            .collect();
        Ok((handles, access))
    }

    /// All track sketches reachable under `filter`'s *stream* restriction,
    /// absorb-merged per track across segments.
    ///
    /// Only stream pruning applies: a sketch summarises a track's whole
    /// life, so a time-restricted query must still see the complete path —
    /// pruning by the filter's time range would truncate sketches at
    /// segment boundaries and turn the conservative track planner unsound.
    /// JSON segments load whole (their sketches ride in the snapshot);
    /// binary segments read only the trailer/footer and the tracks block,
    /// each verified against its checksum — a flipped bit inside the tracks
    /// block surfaces as [`SegmentError::Corrupt`] exactly like record and
    /// postings blocks.
    pub fn sketches(
        &self,
        filter: &QueryFilter,
    ) -> Result<(HashMap<TrackKey, TrackSketch>, SegmentAccess), SegmentError> {
        let mut access = SegmentAccess {
            segments_total: self.manifest.segments.len(),
            ..SegmentAccess::default()
        };
        let mut merged: HashMap<TrackKey, TrackSketch> = HashMap::new();
        let absorb = |merged: &mut HashMap<TrackKey, TrackSketch>, sketch: &TrackSketch| {
            if let Some(streams) = &filter.streams {
                if !streams.contains(&sketch.key.stream) {
                    return;
                }
            }
            match merged.get_mut(&sketch.key) {
                Some(existing) => existing.absorb(sketch),
                None => {
                    merged.insert(sketch.key, sketch.clone());
                }
            }
        };
        for meta in self
            .manifest
            .segments
            .iter()
            .filter(|m| match &filter.streams {
                Some(streams) => m.streams.iter().any(|s| streams.contains(s)),
                None => true,
            })
        {
            access.segments_considered += 1;
            // A resident whole index is the fastest path for either format.
            if let Some(DecodedEntry::Whole(index)) = self
                .cache
                .lock()
                .unwrap()
                .decoded_get((meta.id, BlockKey::Whole))
            {
                access.cache_hits += 1;
                access.block_hits += 1;
                for sketch in index.sketches() {
                    absorb(&mut merged, sketch);
                }
                continue;
            }
            match meta.format {
                SegmentFormat::Json => {
                    let (index, served, bytes) = self.load_counted(meta, true)?;
                    match served {
                        LoadServed::Disk => {
                            access.cold_loads += 1;
                            access.blocks_read += 1;
                            access.bytes_read += bytes;
                        }
                        LoadServed::Raw => {
                            access.cache_hits += 1;
                            access.block_raw_hits += 1;
                        }
                        LoadServed::Decoded => {
                            access.cache_hits += 1;
                            access.block_hits += 1;
                        }
                    }
                    for sketch in index.sketches() {
                        absorb(&mut merged, sketch);
                    }
                }
                SegmentFormat::Binary => {
                    let mut touched_disk = false;
                    let path = self.dir.join(&meta.file);
                    let mut file = SegmentFile::new(&path);
                    let footer =
                        self.binary_footer(meta, &mut file, &mut access, &mut touched_disk)?;
                    if let Some(tmeta) = footer.tracks {
                        let sketches = self.binary_block(
                            meta,
                            &mut file,
                            BlockKey::Tracks,
                            tmeta.offset,
                            tmeta.len,
                            tmeta.checksum,
                            &mut access,
                            &mut touched_disk,
                            binseg::decode_tracks_block,
                            DecodedEntry::Tracks,
                            |entry| match entry {
                                DecodedEntry::Tracks(sketches) => Some(sketches),
                                _ => None,
                            },
                        )?;
                        for sketch in sketches.iter() {
                            absorb(&mut merged, sketch);
                        }
                    }
                    if touched_disk {
                        access.cold_loads += 1;
                    } else {
                        access.cache_hits += 1;
                    }
                }
            }
        }
        Ok((merged, access))
    }

    /// Merges every live segment into one in-memory index (manifest order).
    /// This is the reference the pruned query path is tested against, and
    /// the recovery path for callers that want the whole corpus in memory.
    pub fn merged_index(&self) -> Result<TopKIndex, SegmentError> {
        let mut merged = TopKIndex::new();
        for meta in &self.manifest.segments {
            let (index, _, _) = self.load_counted(meta, false)?;
            let replaced = merged.merge_from(&index);
            assert_eq!(replaced, 0, "segments must be key-disjoint");
        }
        Ok(merged)
    }

    /// Folds runs of adjacent small segments into larger ones: consecutive
    /// segments (in seal order) whose combined record count stays within
    /// `max_clusters` are merged into a single new segment (sealed in the
    /// store's current seal format). Query results are unchanged — the same
    /// records end up live, in fewer files.
    ///
    /// Crash-safe in the same way as sealing: each replacement segment file
    /// is written atomically before the manifest commits the swap, and the
    /// obsolete files are deleted only afterwards (a crash in between leaves
    /// orphans that the next [`open`](Self::open) quarantines).
    ///
    /// Returns the number of segments folded away (old segments removed
    /// minus replacements added).
    pub fn compact(&mut self, max_clusters: usize) -> Result<usize, SegmentError> {
        // Work on a copy: the live segment list must stay intact if any
        // write below fails (replacement files already written become
        // orphans that the next open() quarantines — never data loss).
        let old = self.manifest.segments.clone();
        let before = old.len();
        let mut new_segments: Vec<SegmentMeta> = Vec::with_capacity(before);
        let mut obsolete: Vec<SegmentMeta> = Vec::new();
        let mut run: Vec<SegmentMeta> = Vec::new();
        let mut run_clusters = 0usize;

        // Writes a run back: runs of one keep their segment untouched; runs
        // of two or more are merged into a freshly sealed replacement.
        let flush = |this: &mut Self,
                     run: &mut Vec<SegmentMeta>,
                     new_segments: &mut Vec<SegmentMeta>,
                     obsolete: &mut Vec<SegmentMeta>|
         -> Result<(), SegmentError> {
            if run.len() < 2 {
                new_segments.append(run);
                return Ok(());
            }
            let mut merged = TopKIndex::new();
            for meta in run.iter() {
                let (index, _, _) = this.load_counted(meta, false)?;
                let replaced = merged.merge_from(&index);
                assert_eq!(replaced, 0, "segments must be key-disjoint");
            }
            let id = this.manifest.allocate_id();
            let format = this.seal_format;
            let file = format.file_name(id);
            let payload = Self::encode_payload(&merged, format)?;
            let meta = SegmentMeta {
                id,
                file: file.clone(),
                t_start: run.iter().map(|m| m.t_start).fold(f64::INFINITY, f64::min),
                t_end: run
                    .iter()
                    .map(|m| m.t_end)
                    .fold(f64::NEG_INFINITY, f64::max),
                streams: merged.streams(),
                clusters: merged.len(),
                checksum: fnv1a64(&payload),
                format,
            };
            let path = this.dir.join(&file);
            write_atomic_bytes(&path, &payload)
                .map_err(|source| SegmentError::Persist(PersistError::Io { path, source }))?;
            this.cache
                .lock()
                .unwrap()
                .decoded_insert((id, BlockKey::Whole), DecodedEntry::Whole(Arc::new(merged)));
            obsolete.append(run);
            new_segments.push(meta);
            Ok(())
        };

        for meta in old.iter().cloned() {
            if !run.is_empty() && run_clusters + meta.clusters > max_clusters {
                flush(self, &mut run, &mut new_segments, &mut obsolete)?;
                run_clusters = 0;
            }
            run_clusters += meta.clusters;
            run.push(meta);
        }
        flush(self, &mut run, &mut new_segments, &mut obsolete)?;

        if obsolete.is_empty() {
            return Ok(0);
        }
        // Commit: swap the list in memory, persist it, then retire the old
        // files. A failed save restores the old list so the in-memory store
        // keeps matching the manifest on disk.
        self.manifest.segments = new_segments;
        if let Err(e) = self.manifest.save(&self.dir.join(MANIFEST_FILE)) {
            self.manifest.segments = old;
            return Err(e.into());
        }
        let mut cache = self.cache.lock().unwrap();
        for meta in &obsolete {
            cache.remove_segment(meta.id);
            let _ = fs::remove_file(self.dir.join(&meta.file));
        }
        drop(cache);
        Ok(before - self.manifest.segments.len())
    }

    /// Rewrites up to `budget` JSON segments into the binary format, one
    /// crash-safe step each: the binary file is written atomically first
    /// (its name differs only by extension, so the JSON original is never
    /// clobbered), then the manifest entry swaps file/checksum/format in one
    /// atomic save, and only then is the JSON file deleted. A crash at any
    /// point leaves either the old entry serving the old file or the new
    /// entry serving the new file — a leftover file of the other format is
    /// an unlisted orphan the next [`open`](Self::open) quarantines.
    ///
    /// Mixed-format stores serve correctly throughout: every read
    /// dispatches on the manifest's per-segment format tag.
    ///
    /// Returns how many segments were migrated.
    pub fn migrate_format(&mut self, budget: usize) -> Result<usize, SegmentError> {
        let mut migrated = 0usize;
        for pos in 0..self.manifest.segments.len() {
            if migrated >= budget {
                break;
            }
            if self.manifest.segments[pos].format != SegmentFormat::Json {
                continue;
            }
            let old_meta = self.manifest.segments[pos].clone();
            let (index, _, _) = self.load_counted(&old_meta, false)?;
            let payload = binseg::encode(&index);
            let file = SegmentFormat::Binary.file_name(old_meta.id);
            let path = self.dir.join(&file);
            write_atomic_bytes(&path, &payload)
                .map_err(|source| SegmentError::Persist(PersistError::Io { path, source }))?;
            let new_meta = SegmentMeta {
                file,
                checksum: fnv1a64(&payload),
                format: SegmentFormat::Binary,
                ..old_meta.clone()
            };
            self.manifest.segments[pos] = new_meta;
            if let Err(e) = self.manifest.save(&self.dir.join(MANIFEST_FILE)) {
                // Keep the in-memory list matching the manifest on disk; the
                // already-written binary file is an orphan open() quarantines.
                self.manifest.segments[pos] = old_meta;
                return Err(e.into());
            }
            let _ = fs::remove_file(self.dir.join(&old_meta.file));
            // The raw tier holds the old JSON bytes; the decoded whole index
            // is format-independent and stays.
            self.cache.lock().unwrap().remove_raw_segment(old_meta.id);
            migrated += 1;
        }
        Ok(migrated)
    }

    /// Warms up to `budget` segments that are manifest-adjacent to segments
    /// recently served cold on the query path — the background prefetch
    /// `FocusService::maintain()` drives between queries. Segments already
    /// resident in the decoded tier are skipped, and prefetch loads are
    /// never fed back into the recently-cold set (no cascading).
    ///
    /// Returns how many segments were actually warmed.
    pub fn prefetch_adjacent(&self, budget: usize) -> Result<usize, SegmentError> {
        if budget == 0 || self.manifest.segments.is_empty() {
            return Ok(0);
        }
        let cold = self.cache.lock().unwrap().take_recent_cold();
        if cold.is_empty() {
            return Ok(0);
        }
        let mut targets: Vec<u64> = Vec::new();
        for id in cold {
            if let Some(pos) = self.manifest.segments.iter().position(|m| m.id == id) {
                if pos > 0 {
                    targets.push(self.manifest.segments[pos - 1].id);
                }
                if pos + 1 < self.manifest.segments.len() {
                    targets.push(self.manifest.segments[pos + 1].id);
                }
            }
        }
        targets.sort_unstable();
        targets.dedup();
        let mut warmed = 0usize;
        for id in targets {
            if warmed >= budget {
                break;
            }
            let Some(meta) = self.manifest.segment(id) else {
                continue;
            };
            if self
                .cache
                .lock()
                .unwrap()
                .decoded_contains((id, BlockKey::Whole))
            {
                continue;
            }
            let (_, served, _) = self.load_counted(meta, false)?;
            if served != LoadServed::Decoded {
                warmed += 1;
            }
        }
        Ok(warmed)
    }
}

/// The quarantine name for an untrusted file: `<name>.quarantined` next to
/// the original.
fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".quarantined");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_store::{ClusterKey, MemberRef};
    use focus_video::{FrameId, ObjectId, StreamId, TrackId};

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("focus_segment_{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn record(stream: u32, local: u64, class: u16, start: f64) -> ClusterRecord {
        ClusterRecord {
            key: ClusterKey::new(StreamId(stream), local),
            centroid_object: ObjectId((stream as u64) << 32 | local),
            centroid_frame: FrameId(local),
            top_k_classes: vec![ClassId(class), ClassId(0)],
            members: vec![MemberRef {
                object: ObjectId((stream as u64) << 32 | local),
                frame: FrameId(local),
                track: TrackId(local % 4),
            }],
            start_secs: start,
            end_secs: start + 5.0,
        }
    }

    fn segment_of(records: &[ClusterRecord]) -> TopKIndex {
        let mut idx = TopKIndex::new();
        for r in records {
            idx.insert(r.clone());
        }
        idx
    }

    fn seal_populated(store: &mut SegmentStore) {
        store
            .seal(&segment_of(&[record(0, 0, 5, 0.0), record(0, 1, 5, 10.0)]))
            .unwrap();
        store
            .seal(&segment_of(&[
                record(0, 2, 5, 100.0),
                record(0, 3, 6, 110.0),
            ]))
            .unwrap();
        store
            .seal(&segment_of(&[record(1, 0, 5, 0.0), record(1, 1, 7, 10.0)]))
            .unwrap();
    }

    /// Seals three binary segments: stream 0 at [0,15], stream 0 at
    /// [100,115], stream 1 at [0,15].
    fn populated(dir: &Path) -> SegmentStore {
        let mut store = SegmentStore::create(dir).unwrap();
        seal_populated(&mut store);
        store
    }

    /// The same three segments, pinned to the JSON format.
    fn populated_json(dir: &Path) -> SegmentStore {
        let mut store = SegmentStore::create(dir)
            .unwrap()
            .with_seal_format(SegmentFormat::Json);
        seal_populated(&mut store);
        store
    }

    #[test]
    fn seal_assigns_bounds_streams_and_checksums() {
        let dir = test_dir("seal_bounds");
        let mut store = SegmentStore::create(&dir).unwrap();
        let meta = store
            .seal(&segment_of(&[record(0, 0, 5, 2.0), record(0, 1, 5, 30.0)]))
            .unwrap()
            .unwrap();
        assert_eq!(meta.id, 0);
        assert_eq!(meta.file, "seg-000000.bin");
        assert_eq!(meta.format, SegmentFormat::Binary);
        assert_eq!(meta.t_start, 2.0);
        assert_eq!(meta.t_end, 35.0);
        assert_eq!(meta.streams, vec![StreamId(0)]);
        assert_eq!(meta.clusters, 2);
        let bytes = fs::read(dir.join(&meta.file)).unwrap();
        assert_eq!(fnv1a64(&bytes), meta.checksum);
        assert!(crate::binseg::is_binseg(&bytes));
        // Sealing an empty index is a no-op.
        assert!(store.seal(&TopKIndex::new()).unwrap().is_none());
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seal_format_can_pin_json() {
        let dir = test_dir("seal_json");
        let mut store = SegmentStore::create(&dir)
            .unwrap()
            .with_seal_format(SegmentFormat::Json);
        assert_eq!(store.seal_format(), SegmentFormat::Json);
        let meta = store
            .seal(&segment_of(&[record(0, 0, 5, 0.0)]))
            .unwrap()
            .unwrap();
        assert_eq!(meta.file, "seg-000000.json");
        assert_eq!(meta.format, SegmentFormat::Json);
        let bytes = fs::read(dir.join(&meta.file)).unwrap();
        assert!(!crate::binseg::is_binseg(&bytes));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_to_clobber_an_existing_store() {
        let dir = test_dir("create_clobber");
        let _store = SegmentStore::create(&dir).unwrap();
        assert!(SegmentStore::create(&dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lookup_equals_merged_index_and_prunes() {
        let dir = test_dir("lookup_prune");
        let store = populated(&dir);
        let merged = store.merged_index().unwrap();

        for (filter, expect_considered) in [
            (QueryFilter::any(), 3),
            (QueryFilter::any().with_time_range(0.0, 20.0), 2),
            (QueryFilter::for_stream(StreamId(1)), 1),
            (
                QueryFilter::for_stream(StreamId(0)).with_time_range(90.0, 200.0),
                1,
            ),
        ] {
            let lookup = store.lookup(ClassId(5), &filter).unwrap();
            let expected: Vec<ClusterRecord> = merged
                .lookup(ClassId(5), &filter)
                .into_iter()
                .cloned()
                .collect();
            assert_eq!(lookup.records, expected, "filter {filter:?}");
            assert_eq!(
                lookup.access.segments_considered, expect_considered,
                "filter {filter:?}"
            );
            assert_eq!(lookup.access.segments_total, 3);
        }
        // A fully disjoint time range opens nothing.
        let none = store
            .lookup(
                ClassId(5),
                &QueryFilter::any().with_time_range(500.0, 600.0),
            )
            .unwrap();
        assert!(none.records.is_empty());
        assert_eq!(none.access.segments_opened(), 0);
        assert_eq!(none.access.segments_pruned(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_and_json_stores_answer_identically() {
        let bin_dir = test_dir("parity_bin");
        let json_dir = test_dir("parity_json");
        let bin = populated(&bin_dir);
        let json = populated_json(&json_dir);
        // Same logical contents, canonically identical.
        assert_eq!(
            persist::to_json(&bin.merged_index().unwrap()).unwrap(),
            persist::to_json(&json.merged_index().unwrap()).unwrap()
        );
        for class in [5u16, 6, 7, 0, 99] {
            for filter in [
                QueryFilter::any(),
                QueryFilter::any().with_time_range(0.0, 20.0),
                QueryFilter::for_stream(StreamId(1)),
                QueryFilter::any().with_kx(1),
            ] {
                let b = bin.lookup(ClassId(class), &filter).unwrap();
                let j = json.lookup(ClassId(class), &filter).unwrap();
                assert_eq!(b.records, j.records, "class {class} filter {filter:?}");
            }
        }
        fs::remove_dir_all(&bin_dir).ok();
        fs::remove_dir_all(&json_dir).ok();
    }

    #[test]
    fn binary_cold_lookup_reads_only_needed_blocks() {
        let dir = test_dir("block_reads");
        let mut store = SegmentStore::create(&dir).unwrap();
        // One big segment: 256 records, classes spread 0..8, so one class's
        // postings + covering record blocks are a fraction of the file.
        let mut idx = TopKIndex::new();
        for local in 0..256u64 {
            idx.insert(record(0, local, (local % 8) as u16 + 1, local as f64));
        }
        let meta = store.seal(&idx).unwrap().unwrap();
        let file_len = fs::metadata(dir.join(&meta.file)).unwrap().len();

        // Cold class-filtered lookup reads footer + 1 postings block + the
        // record blocks covering that class's keys — not the whole file.
        let lookup = store.lookup(ClassId(3), &QueryFilter::any()).unwrap();
        assert_eq!(lookup.records.len(), 32);
        assert_eq!(lookup.access.cold_loads, 1);
        assert!(lookup.access.blocks_read >= 2, "{:?}", lookup.access);
        assert!(
            lookup.access.bytes_read < file_len,
            "block reads ({}) must undercut the whole file ({file_len})",
            lookup.access.bytes_read
        );
        // The same lookup again is all decoded-tier hits.
        let warm = store.lookup(ClassId(3), &QueryFilter::any()).unwrap();
        assert_eq!(warm.access.cache_hits, 1);
        assert_eq!(warm.access.blocks_read, 0);
        assert_eq!(warm.access.bytes_read, 0);
        assert!(warm.access.block_hits > 0);
        assert_eq!(warm.records, lookup.records);
        // An unindexed class reads only the footer.
        let store = SegmentStore::open(&dir).unwrap().0;
        let none = store.lookup(ClassId(99), &QueryFilter::any()).unwrap();
        assert!(none.records.is_empty());
        assert_eq!(none.access.blocks_read, 1, "{:?}", none.access);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_cache_serves_warm_lookups_without_reads() {
        let dir = test_dir("lru");
        // JSON store with the raw tier disabled: the original whole-segment
        // LRU semantics.
        let store = populated_json(&dir)
            .with_cache_capacity(2)
            .with_raw_capacity(0);
        let cold = store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        assert_eq!(cold.access.cold_loads, 3);
        assert_eq!(cold.access.cache_hits, 0);
        assert!(cold.access.bytes_read > 0);
        // Capacity 2 holds the two most recent segments; a pruned lookup
        // touching only the last-loaded segment is served entirely warm.
        let last = QueryFilter::for_stream(StreamId(1));
        let warm = store.lookup(ClassId(5), &last).unwrap();
        assert_eq!(warm.access.segments_considered, 1);
        assert_eq!(warm.access.cache_hits, 1);
        assert_eq!(warm.access.cold_loads, 0);
        // A full sequential rescan of 3 segments thrashes a 2-entry LRU:
        // every access evicts the entry the next access needs.
        let rescan = store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        assert_eq!(rescan.access.cold_loads, 3);
        // A large-capacity store is fully warm on the second pass.
        let (store, _) = SegmentStore::open(&dir).unwrap();
        store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        let warm = store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        assert_eq!(warm.access.cache_hits, 3);
        assert_eq!(warm.access.cold_loads, 0);
        assert_eq!(warm.access.bytes_read, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn raw_tier_rescues_decoded_evictions_without_disk() {
        let dir = test_dir("raw_tier");
        // Decoded tier too small for the working set, raw tier roomy: the
        // rescan that used to thrash to disk is served by re-decoding.
        let store = populated_json(&dir).with_cache_capacity(2);
        let cold = store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        assert_eq!(cold.access.cold_loads, 3);
        let rescan = store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        assert_eq!(rescan.access.cold_loads, 0);
        assert_eq!(rescan.access.cache_hits, 3);
        assert_eq!(rescan.access.block_raw_hits, 3);
        assert_eq!(rescan.access.bytes_read, 0);
        assert_eq!(rescan.records, cold.records);
        let occ = store.cache_occupancy();
        assert_eq!(occ.raw_entries, 3);
        assert!(occ.raw_occupancy_bytes > 0);
        assert_eq!(occ.disk_reads, 3);
        assert_eq!(occ.raw_hits, 3);
        assert!(occ.raw_hit_rate() > 0.0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_roundtrips_a_clean_store() {
        let dir = test_dir("open_clean");
        let store = populated(&dir);
        let expected = persist::to_json(&store.merged_index().unwrap()).unwrap();
        let (reopened, report) = SegmentStore::open(&dir).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(reopened.len(), 3);
        assert_eq!(
            persist::to_json(&reopened.merged_index().unwrap()).unwrap(),
            expected
        );
        assert_eq!(reopened.total_clusters(), 6);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segments_are_quarantined_on_open() {
        let dir = test_dir("quarantine");
        let store = populated(&dir);
        let victim = store.segments()[1].file.clone();
        // Flip one byte in the middle of the file.
        let path = dir.join(&victim);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        drop(store);

        let (reopened, report) = SegmentStore::open(&dir).unwrap();
        assert_eq!(report.quarantined, vec![victim.clone()]);
        assert_eq!(reopened.len(), 2);
        assert!(!dir.join(&victim).exists());
        assert!(dir.join(format!("{victim}.quarantined")).exists());
        // The surviving segments still load and answer.
        let lookup = reopened.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        assert_eq!(lookup.records.len(), 3);
        // A second open is clean: the repair was persisted to the manifest.
        let (_, report) = SegmentStore::open(&dir).unwrap();
        assert!(report.quarantined.is_empty(), "{report:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_after_open_is_detected_at_load_time() {
        let dir = test_dir("late_corrupt");
        let store = populated(&dir);
        let meta = store.segments()[0].clone();
        let path = dir.join(&meta.file);
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        match store.load(meta.id) {
            Err(SegmentError::Corrupt {
                expected, found, ..
            }) => {
                assert_eq!(expected, meta.checksum);
                assert_ne!(found, expected);
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
        assert!(matches!(
            store.load(999),
            Err(SegmentError::UnknownSegment { id: 999 })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn block_corruption_is_detected_at_lookup_time() {
        let dir = test_dir("block_corrupt");
        let store = populated(&dir);
        // Corrupt a byte early in the file — inside a record or postings
        // block, leaving the trailer/footer intact — after open-time
        // verification already passed.
        let meta = store.segments()[0].clone();
        let path = dir.join(&meta.file);
        let mut bytes = fs::read(&path).unwrap();
        bytes[6] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        match store.lookup(ClassId(5), &QueryFilter::any()) {
            Err(SegmentError::Corrupt {
                expected, found, ..
            }) => assert_ne!(expected, found),
            other => panic!("expected block corruption error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    /// One-record index with a two-observation sketch for `track` on
    /// `stream`, windowed at `start`.
    fn sketched_index(stream: u32, local: u64, start: f64, track: u64) -> TopKIndex {
        let mut idx = segment_of(&[record(stream, local, 5, start)]);
        let key = TrackKey {
            stream: StreamId(stream),
            track: TrackId(track),
        };
        let mut sketch = TrackSketch::first(key, start, 40.0, 40.0);
        sketch.absorb(&TrackSketch::first(key, start + 2.0, 200.0, 40.0));
        idx.insert_sketch(sketch);
        idx
    }

    #[test]
    fn sketches_merge_across_segments_and_ignore_time_pruning() {
        let dir = test_dir("sketches_store");
        let mut store = SegmentStore::create(&dir).unwrap();
        // The same track appears in two segments (key-disjoint records);
        // a third segment covers another stream.
        store.seal(&sketched_index(0, 0, 0.0, 7)).unwrap();
        store.seal(&sketched_index(0, 1, 100.0, 7)).unwrap();
        store.seal(&sketched_index(1, 2, 0.0, 3)).unwrap();

        let (all, access) = store.sketches(&QueryFilter::any()).unwrap();
        assert_eq!(access.segments_considered, 3);
        assert_eq!(all.len(), 2);
        let merged = &all[&TrackKey {
            stream: StreamId(0),
            track: TrackId(7),
        }];
        assert_eq!(merged.observations, 4);
        assert_eq!(merged.t_start, 0.0);
        assert_eq!(merged.t_end, 102.0);

        // A time restriction does not truncate sketches: the merged sketch
        // is identical to the unrestricted one.
        let (timed, timed_access) = store
            .sketches(&QueryFilter::any().with_time_range(0.0, 10.0))
            .unwrap();
        assert_eq!(timed_access.segments_considered, 3);
        assert_eq!(timed[&merged.key], *merged);

        // A stream restriction prunes segments and sketches.
        let (scoped, scoped_access) = store
            .sketches(&QueryFilter::for_stream(StreamId(1)))
            .unwrap();
        assert_eq!(scoped_access.segments_considered, 1);
        assert_eq!(scoped.len(), 1);
        assert!(scoped.contains_key(&TrackKey {
            stream: StreamId(1),
            track: TrackId(3),
        }));

        // JSON segments answer identically: sketches ride the snapshot.
        let json_dir = test_dir("sketches_store_json");
        let mut json_store = SegmentStore::create(&json_dir)
            .unwrap()
            .with_seal_format(SegmentFormat::Json);
        json_store.seal(&sketched_index(0, 0, 0.0, 7)).unwrap();
        json_store.seal(&sketched_index(0, 1, 100.0, 7)).unwrap();
        json_store.seal(&sketched_index(1, 2, 0.0, 3)).unwrap();
        let (from_json, _) = json_store.sketches(&QueryFilter::any()).unwrap();
        assert_eq!(from_json, all);

        fs::remove_dir_all(&dir).ok();
        fs::remove_dir_all(&json_dir).ok();
    }

    #[test]
    fn sketch_block_corruption_fails_checksum_and_quarantines_on_open() {
        let dir = test_dir("sketch_corrupt");
        let mut store = SegmentStore::create(&dir).unwrap();
        store.seal(&sketched_index(0, 0, 0.0, 1)).unwrap();
        let meta = store.segments()[0].clone();
        let path = dir.join(&meta.file);
        // Flip one byte inside the tracks block (located via the trailer
        // and footer), leaving every other block intact.
        let mut bytes = fs::read(&path).unwrap();
        let trailer = bytes[bytes.len() - binseg::TRAILER_LEN..].to_vec();
        let (foff, flen, _, version) = binseg::parse_trailer(&trailer).unwrap();
        let footer =
            binseg::decode_footer(&bytes[foff as usize..(foff + flen) as usize], version).unwrap();
        let tmeta = footer
            .tracks
            .expect("sealed segment carries a tracks block");
        bytes[tmeta.offset as usize + 2] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        // Lookup-time: the tracks block fails its footer checksum, exactly
        // like record/postings block corruption.
        match store.sketches(&QueryFilter::any()) {
            Err(SegmentError::Corrupt {
                expected, found, ..
            }) => assert_ne!(expected, found),
            other => panic!("expected tracks-block corruption, got {other:?}"),
        }
        // The damage is confined: record lookups in the same segment still
        // serve (their blocks verify).
        let lookup = store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        assert_eq!(lookup.records.len(), 1);
        drop(store);

        // Open-time: the whole-file checksum quarantines the segment via
        // the same OpenReport machinery as any other corruption.
        let (reopened, report) = SegmentStore::open(&dir).unwrap();
        assert_eq!(report.quarantined, vec![meta.file.clone()]);
        assert_eq!(reopened.len(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_sweeps_temp_files_and_orphans() {
        let dir = test_dir("sweep");
        let store = populated(&dir);
        let expected = persist::to_json(&store.merged_index().unwrap()).unwrap();
        drop(store);
        // A crash mid-write leaves a temp file; a crash between segment
        // rename and manifest update leaves a complete but unlisted segment
        // — of either format.
        fs::write(dir.join("seg-000099.json.tmp"), "{\"partial").unwrap();
        fs::write(
            dir.join("seg-000098.json"),
            "{\"version\":1,\"index\":{\"clusters\":[]}}",
        )
        .unwrap();
        fs::write(
            dir.join("seg-000097.bin"),
            crate::binseg::encode(&TopKIndex::new()),
        )
        .unwrap();
        let (reopened, report) = SegmentStore::open(&dir).unwrap();
        assert_eq!(report.removed_temp, vec!["seg-000099.json.tmp".to_string()]);
        let mut quarantined = report.quarantined.clone();
        quarantined.sort();
        assert_eq!(
            quarantined,
            vec!["seg-000097.bin".to_string(), "seg-000098.json".to_string()]
        );
        assert!(!dir.join("seg-000099.json.tmp").exists());
        assert!(dir.join("seg-000098.json.quarantined").exists());
        assert!(dir.join("seg-000097.bin.quarantined").exists());
        // Every sealed segment survived untouched.
        assert_eq!(
            persist::to_json(&reopened.merged_index().unwrap()).unwrap(),
            expected
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_folds_small_adjacent_segments_without_changing_results() {
        let dir = test_dir("compact");
        let mut store = populated(&dir);
        let before = persist::to_json(&store.merged_index().unwrap()).unwrap();
        // Each segment holds 2 clusters: a budget of 4 folds the first two
        // and leaves the third alone.
        let folded = store.compact(4).unwrap();
        assert_eq!(folded, 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.segments()[0].clusters, 4);
        assert_eq!(store.segments()[0].t_start, 0.0);
        assert_eq!(store.segments()[0].t_end, 115.0);
        assert_eq!(
            persist::to_json(&store.merged_index().unwrap()).unwrap(),
            before
        );
        // Old files are gone; the store reopens cleanly and still matches.
        let (reopened, report) = SegmentStore::open(&dir).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(
            persist::to_json(&reopened.merged_index().unwrap()).unwrap(),
            before
        );
        // Compacting an already-compact store is a no-op.
        let mut reopened = reopened;
        assert_eq!(reopened.compact(4).unwrap(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_everything_into_one_segment() {
        let dir = test_dir("compact_all");
        let mut store = populated(&dir);
        let before = persist::to_json(&store.merged_index().unwrap()).unwrap();
        let folded = store.compact(usize::MAX).unwrap();
        assert_eq!(folded, 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.segments()[0].streams, vec![StreamId(0), StreamId(1)]);
        assert_eq!(
            persist::to_json(&store.merged_index().unwrap()).unwrap(),
            before
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_compaction_leaves_the_segment_list_intact() {
        let dir = test_dir("compact_fail");
        let mut store = populated(&dir);
        // Delete one segment file out from under the store: the fold's load
        // fails mid-compaction. The live segment list must survive — losing
        // it would delist every segment on the next manifest save.
        let victim = store.segments()[1].file.clone();
        fs::remove_file(dir.join(&victim)).unwrap();
        assert!(store.compact(usize::MAX).is_err());
        assert_eq!(store.len(), 3);
        // And it still matches the manifest on disk.
        let manifest = Manifest::load(&dir.join(MANIFEST_FILE)).unwrap();
        assert_eq!(manifest.segments, store.segments());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn migrate_format_rewrites_json_segments_one_at_a_time() {
        let dir = test_dir("migrate");
        let mut store = populated_json(&dir);
        let before = persist::to_json(&store.merged_index().unwrap()).unwrap();
        let old_files: Vec<String> = store.segments().iter().map(|m| m.file.clone()).collect();

        // Budget 1 migrates exactly one segment, leaving a mixed store.
        assert_eq!(store.migrate_format(1).unwrap(), 1);
        assert_eq!(store.segments()[0].format, SegmentFormat::Binary);
        assert_eq!(store.segments()[1].format, SegmentFormat::Json);
        assert!(!dir.join(&old_files[0]).exists());
        assert!(dir.join(&store.segments()[0].file).exists());
        // The mixed-format store answers identically.
        assert_eq!(
            persist::to_json(&store.merged_index().unwrap()).unwrap(),
            before
        );
        let lookup = store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        assert_eq!(lookup.records.len(), 4);
        // And reopens cleanly mid-migration.
        let (mut reopened, report) = SegmentStore::open(&dir).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(
            persist::to_json(&reopened.merged_index().unwrap()).unwrap(),
            before
        );

        // A large budget finishes the job; another call is a no-op.
        assert_eq!(reopened.migrate_format(usize::MAX).unwrap(), 2);
        assert!(reopened
            .segments()
            .iter()
            .all(|m| m.format == SegmentFormat::Binary));
        assert_eq!(reopened.migrate_format(usize::MAX).unwrap(), 0);
        assert_eq!(
            persist::to_json(&reopened.merged_index().unwrap()).unwrap(),
            before
        );
        for file in &old_files {
            assert!(!dir.join(file).exists(), "JSON original {file} must go");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prefetch_warms_manifest_adjacent_segments() {
        let dir = test_dir("prefetch");
        let store = populated(&dir);
        // Nothing recently cold: prefetch is a no-op.
        assert_eq!(store.prefetch_adjacent(8).unwrap(), 0);
        // A pruned cold lookup touches only the middle segment...
        let mid = QueryFilter::for_stream(StreamId(0)).with_time_range(90.0, 200.0);
        let cold = store.lookup(ClassId(5), &mid).unwrap();
        assert_eq!(cold.access.cold_loads, 1);
        // ...so prefetch warms its two manifest neighbours.
        assert_eq!(store.prefetch_adjacent(8).unwrap(), 2);
        let warm = store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        assert_eq!(warm.access.cold_loads, 0);
        assert_eq!(warm.access.cache_hits, 3);
        // The recently-cold set was drained; prefetch loads did not refill
        // it (no cascade).
        assert_eq!(store.prefetch_adjacent(8).unwrap(), 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_occupancy_tracks_both_tiers() {
        let dir = test_dir("occupancy");
        let store = populated_json(&dir).with_cache_capacity(2);
        let empty = store.cache_occupancy();
        assert_eq!(empty.occupancy, 0);
        assert_eq!(empty.capacity, 2);
        assert_eq!(empty.fill_fraction(), 0.0);
        assert_eq!(empty.decoded_hit_rate(), 0.0);
        assert_eq!(empty.raw_hit_rate(), 0.0);
        store.lookup(ClassId(5), &QueryFilter::any()).unwrap();
        let full = store.cache_occupancy();
        assert_eq!(full.occupancy, 2, "3 segments thrash a 2-entry LRU");
        assert_eq!(full.fill_fraction(), 1.0);
        assert_eq!(full.disk_reads, 3);
        assert_eq!(full.raw_entries, 3);
        assert!(full.raw_occupancy_bytes > 0);
        assert!(full.raw_fill_fraction() > 0.0);
        assert_eq!(full.raw_capacity_bytes, DEFAULT_RAW_CACHE_BYTES);
        assert_eq!(LruOccupancy::default().fill_fraction(), 0.0);
        assert_eq!(LruOccupancy::default().raw_fill_fraction(), 0.0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn access_report_arithmetic() {
        let mut a = SegmentAccess {
            segments_total: 5,
            segments_considered: 2,
            cold_loads: 1,
            cache_hits: 1,
            bytes_read: 100,
            blocks_read: 2,
            block_raw_hits: 1,
            block_hits: 3,
        };
        assert_eq!(a.segments_opened(), 2);
        assert_eq!(a.segments_pruned(), 3);
        a.merge(&SegmentAccess {
            segments_total: 5,
            segments_considered: 3,
            cold_loads: 2,
            cache_hits: 1,
            bytes_read: 50,
            blocks_read: 4,
            block_raw_hits: 2,
            block_hits: 1,
        });
        assert_eq!(a.segments_considered, 5);
        assert_eq!(a.cold_loads, 3);
        assert_eq!(a.bytes_read, 150);
        assert_eq!(a.segments_total, 5);
        assert_eq!(a.blocks_read, 6);
        assert_eq!(a.block_raw_hits, 3);
        assert_eq!(a.block_hits, 4);
    }

    #[test]
    fn errors_display_their_context() {
        let errors: [SegmentError; 4] = [
            SegmentError::Persist(PersistError::VersionMismatch {
                path: None,
                found: 9,
                expected: 1,
            }),
            SegmentError::Corrupt {
                path: PathBuf::from("/s/seg-000001.json"),
                expected: 1,
                found: 2,
            },
            SegmentError::InvalidSegment {
                path: PathBuf::from("/s/seg-000002.bin"),
                source: BinsegError::BadMagic,
            },
            SegmentError::UnknownSegment { id: 7 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
