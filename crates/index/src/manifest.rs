//! The crash-safe manifest of a segment store.
//!
//! A [`Manifest`] is the single source of truth for which segment files of
//! a [`SegmentStore`](crate::segment::SegmentStore) directory are live: a
//! segment exists exactly when the manifest lists it. Because both segment
//! files and the manifest are written atomically (temp file + rename, see
//! [`crate::persist::write_atomic`]) and always in the order *segment file
//! first, manifest second*, a crash at any point leaves the store
//! recoverable:
//!
//! * crash mid-segment-write → a stray `*.tmp` file, removed on open;
//! * crash after the segment rename but before the manifest update → a
//!   complete but unlisted segment file, quarantined on open (its data is
//!   also still in the live in-memory index of whoever was sealing, so
//!   nothing acknowledged is lost);
//! * crash mid-manifest-write → the previous manifest survives intact.
//!
//! Every listed segment carries an FNV-1a checksum of its file bytes, so a
//! torn or bit-rotted segment is detected and quarantined on open instead of
//! being silently loaded.

use std::collections::HashSet;
use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use focus_video::StreamId;

use crate::persist::{write_atomic, PersistError};
use crate::query::QueryFilter;

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// File name of the manifest inside a segment store directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// FNV-1a 64-bit hash of `bytes` — the checksum stored per segment in the
/// manifest and verified on every cold segment load.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// How a segment's file is encoded on disk.
///
/// The manifest records the format per segment, so a store can hold a mix
/// — the state [`SegmentStore::migrate_format`](crate::segment::SegmentStore::migrate_format)
/// moves through while rewriting JSON segments as binary. Manifests written
/// before the tag existed deserialize as [`Json`](SegmentFormat::Json)
/// (the only format that existed then).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SegmentFormat {
    /// A versioned JSON index snapshot (`seg-*.json`, see
    /// [`crate::persist`]) — the debug/migration format: human-readable,
    /// but decoded whole on every cold load.
    #[default]
    Json,
    /// The binary columnar format (`seg-*.bin`, see [`crate::binseg`]):
    /// checksummed blocks behind a footer index, read per-block.
    Binary,
}

impl SegmentFormat {
    /// The segment file name for segment `id` in this format.
    pub fn file_name(&self, id: u64) -> String {
        match self {
            SegmentFormat::Json => format!("seg-{id:06}.json"),
            SegmentFormat::Binary => format!("seg-{id:06}.bin"),
        }
    }
}

/// One sealed, immutable segment as listed in the manifest: where it lives,
/// what it covers, and how to verify it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// Store-unique segment id (monotonic; never reused, even across
    /// compactions).
    pub id: u64,
    /// File name of the segment inside the store directory.
    pub file: String,
    /// Earliest timestamp covered by any record in the segment, seconds
    /// since stream start.
    pub t_start: f64,
    /// Latest timestamp covered by any record in the segment, seconds since
    /// stream start. Together with `t_start` this is the tight closed cover
    /// of the contained records' time ranges, which is what makes segment
    /// pruning safe: a record can only be admitted by a time filter its
    /// segment's bounds also overlap.
    pub t_end: f64,
    /// The streams with at least one record in the segment, sorted.
    pub streams: Vec<StreamId>,
    /// Number of cluster records stored in the segment.
    pub clusters: usize,
    /// FNV-1a 64-bit checksum of the segment file's bytes.
    pub checksum: u64,
    /// On-disk encoding of the segment file. Absent in pre-format-tag
    /// manifests, which could only hold JSON segments.
    #[serde(default)]
    pub format: SegmentFormat,
}

impl SegmentMeta {
    /// Whether the segment's time cover overlaps the closed interval
    /// `[from_secs, to_secs]` (the same overlap rule records use, see
    /// [`crate::cluster_store::ClusterRecord::overlaps_time`]).
    pub fn overlaps_time(&self, from_secs: f64, to_secs: f64) -> bool {
        self.t_start <= to_secs && self.t_end >= from_secs
    }

    /// Whether any record in this segment could be admitted by `filter`'s
    /// stream and time restrictions. Segments for which this is `false` are
    /// pruned from a query without being opened.
    ///
    /// This is a conservative (sound) test: it may admit a segment none of
    /// whose records survive the per-record filter, but it never prunes a
    /// segment containing an admissible record — `t_start`/`t_end` cover
    /// every record's time range and `streams` lists every record's stream.
    pub fn admits_filter(&self, filter: &QueryFilter) -> bool {
        if let Some(streams) = &filter.streams {
            if !self.streams.iter().any(|s| streams.contains(s)) {
                return false;
            }
        }
        if let Some((from, to)) = filter.time_range {
            if !self.overlaps_time(from, to) {
                return false;
            }
        }
        true
    }
}

/// The versioned list of live segments in a store directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Manifest {
    /// Manifest format version.
    pub version: u32,
    /// The next segment id to allocate (ids are never reused).
    pub next_segment_id: u64,
    /// The live segments, in seal order. Per-stream, seal order is time
    /// order, which keeps compaction's "adjacent segments" meaningful.
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// An empty manifest at the current version.
    pub fn new() -> Self {
        Self {
            version: MANIFEST_VERSION,
            next_segment_id: 0,
            segments: Vec::new(),
        }
    }

    /// Allocates the next segment id.
    pub fn allocate_id(&mut self) -> u64 {
        let id = self.next_segment_id;
        self.next_segment_id += 1;
        id
    }

    /// The manifest entry for segment `id`, if it is live.
    pub fn segment(&self, id: u64) -> Option<&SegmentMeta> {
        self.segments.iter().find(|s| s.id == id)
    }

    /// The distinct streams covered by any live segment, sorted.
    pub fn streams(&self) -> Vec<StreamId> {
        let set: HashSet<StreamId> = self
            .segments
            .iter()
            .flat_map(|s| s.streams.iter().copied())
            .collect();
        let mut streams: Vec<StreamId> = set.into_iter().collect();
        streams.sort();
        streams
    }

    /// Loads a manifest from `path`, verifying the format version.
    pub fn load(path: &Path) -> Result<Manifest, PersistError> {
        let json = fs::read_to_string(path).map_err(|source| PersistError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let manifest: Manifest =
            serde_json::from_str(&json).map_err(|source| PersistError::Format {
                path: Some(path.to_path_buf()),
                source,
            })?;
        if manifest.version != MANIFEST_VERSION {
            return Err(PersistError::VersionMismatch {
                path: Some(path.to_path_buf()),
                found: manifest.version,
                expected: MANIFEST_VERSION,
            });
        }
        Ok(manifest)
    }

    /// Writes the manifest to `path` atomically (temp file + rename): a
    /// crash mid-write leaves the previous manifest intact.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        let json = serde_json::to_string(self)?;
        write_atomic(path, &json).map_err(|source| PersistError::Io {
            path: path.to_path_buf(),
            source,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64, t_start: f64, t_end: f64, streams: &[u32]) -> SegmentMeta {
        SegmentMeta {
            id,
            file: format!("seg-{id:06}.json"),
            t_start,
            t_end,
            streams: streams.iter().map(|s| StreamId(*s)).collect(),
            clusters: 3,
            checksum: 42,
            format: SegmentFormat::Json,
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // Sensitive to single-bit flips.
        assert_ne!(fnv1a64(b"foobar"), fnv1a64(b"fooba r"));
    }

    #[test]
    fn admits_filter_prunes_by_time_and_stream() {
        let m = meta(0, 10.0, 20.0, &[1, 2]);
        assert!(m.admits_filter(&QueryFilter::any()));
        assert!(m.admits_filter(&QueryFilter::any().with_time_range(15.0, 30.0)));
        assert!(m.admits_filter(&QueryFilter::any().with_time_range(20.0, 30.0)));
        assert!(!m.admits_filter(&QueryFilter::any().with_time_range(20.1, 30.0)));
        assert!(!m.admits_filter(&QueryFilter::any().with_time_range(0.0, 9.9)));
        assert!(m.admits_filter(&QueryFilter::for_stream(StreamId(2))));
        assert!(!m.admits_filter(&QueryFilter::for_stream(StreamId(3))));
        // Both restrictions must pass.
        let f = QueryFilter::for_stream(StreamId(1)).with_time_range(0.0, 5.0);
        assert!(!m.admits_filter(&f));
        // `kx` never affects pruning (it is a per-record rank test).
        assert!(m.admits_filter(&QueryFilter::any().with_kx(1)));
    }

    #[test]
    fn manifest_roundtrip_and_id_allocation() {
        let dir = std::env::temp_dir().join("focus_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let mut m = Manifest::new();
        assert_eq!(m.allocate_id(), 0);
        assert_eq!(m.allocate_id(), 1);
        m.segments.push(meta(0, 0.0, 10.0, &[0]));
        m.segments.push(meta(1, 10.0, 20.0, &[1]));
        m.save(&path).unwrap();
        let restored = Manifest::load(&path).unwrap();
        assert_eq!(restored, m);
        assert_eq!(restored.streams(), vec![StreamId(0), StreamId(1)]);
        assert_eq!(restored.segment(1).unwrap().file, "seg-000001.json");
        assert!(restored.segment(9).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn format_tag_defaults_to_json_for_old_manifests() {
        // A manifest written before the format tag existed has no `format`
        // field; it must deserialize as Json (the only format back then).
        let mut m = Manifest::new();
        m.segments.push(meta(0, 0.0, 1.0, &[0]));
        let json = serde_json::to_string(&m).unwrap();
        let stripped = json.replace(",\"format\":\"Json\"", "");
        assert_ne!(json, stripped, "format tag must be serialized");
        let restored: Manifest = serde_json::from_str(&stripped).unwrap();
        assert_eq!(restored.segments[0].format, SegmentFormat::Json);
        // And the tag round-trips when present.
        let mut bin = meta(1, 0.0, 1.0, &[0]);
        bin.format = SegmentFormat::Binary;
        bin.file = SegmentFormat::Binary.file_name(1);
        m.segments.push(bin);
        let restored: Manifest = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(restored.segments[1].format, SegmentFormat::Binary);
        assert_eq!(restored.segments[1].file, "seg-000001.bin");
        assert_eq!(SegmentFormat::Json.file_name(7), "seg-000007.json");
        assert_eq!(SegmentFormat::default(), SegmentFormat::Json);
    }

    #[test]
    fn manifest_version_mismatch_is_detected() {
        let dir = std::env::temp_dir().join("focus_manifest_version_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let m = Manifest::new();
        m.save(&path).unwrap();
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"version\":1", "\"version\":7");
        std::fs::write(&path, tampered).unwrap();
        match Manifest::load(&path) {
            Err(PersistError::VersionMismatch {
                found, expected, ..
            }) => {
                assert_eq!(found, 7);
                assert_eq!(expected, MANIFEST_VERSION);
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
